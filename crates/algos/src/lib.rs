//! # imagen-algos
//!
//! The evaluation workloads of the [ImaGen] paper: the seven
//! image-processing pipelines of Tbl. 3 ([`Algorithm`]), the synthetic
//! pipelines of the Sec. 8.2 scalability sweep
//! ([`synthetic_pipeline`]), and deterministic test frames
//! ([`sample_pattern`]).
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352
//!
//! # Examples
//!
//! ```
//! use imagen_algos::Algorithm;
//!
//! let dag = Algorithm::UnsharpM.build();
//! assert_eq!(dag.num_stages(), 5);
//! assert_eq!(dag.multi_consumer_stages().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod programs;
mod synthetic;

pub use programs::Algorithm;
pub use synthetic::{noise_bits, sample_pattern, synthetic_pipeline, TestPattern};
