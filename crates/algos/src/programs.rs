//! The seven evaluation pipelines of the paper's Tbl. 3, authored in the
//! ImaGen DSL.
//!
//! Stage counts and multiple-consumer (MC) stage counts match the table
//! exactly (verified by tests):
//!
//! | Algorithm  | Stages | MC stages | Notes |
//! |------------|--------|-----------|-------|
//! | Canny-s    | 9      | 0         | single-consumer chain |
//! | Canny-m    | 10     | 1         | blurred image feeds both Sobel passes |
//! | Harris-s   | 7      | 0         | chain-approximated corner response |
//! | Harris-m   | 7      | 1         | blur feeds Ix² and Iy² |
//! | Unsharp-m  | 5      | 1         | input feeds blur chain and sharpen |
//! | Xcorr-m    | 3      | 1         | 18-row tall template correlation |
//! | Denoise-m  | 5      | 2         | input and blur both fan out |
//!
//! Kernels are integer-arithmetic versions of the classic algorithms
//! (shifts instead of floating-point scales); the *memory structure* —
//! windows, fan-out, stage count — is what the evaluation measures, and
//! that matches the paper's workloads.

/// One of the paper's evaluation algorithms (Tbl. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Canny edge detection, single-consumer variant (9 stages).
    CannyS,
    /// Canny edge detection, multiple-consumer variant (10 stages, 1 MC).
    CannyM,
    /// Harris corner detection, single-consumer variant (7 stages).
    HarrisS,
    /// Harris corner detection, multiple-consumer variant (7 stages, 1 MC).
    HarrisM,
    /// Unsharp masking (5 stages, 1 MC).
    UnsharpM,
    /// Cross correlation with an 18-row template (3 stages, 1 MC).
    XcorrM,
    /// Image denoising (5 stages, 2 MC).
    DenoiseM,
}

impl Algorithm {
    /// All seven algorithms in the paper's table order.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::CannyS,
            Algorithm::CannyM,
            Algorithm::HarrisS,
            Algorithm::HarrisM,
            Algorithm::UnsharpM,
            Algorithm::XcorrM,
            Algorithm::DenoiseM,
        ]
    }

    /// The paper's name for the algorithm (e.g. `Canny-m`).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::CannyS => "Canny-s",
            Algorithm::CannyM => "Canny-m",
            Algorithm::HarrisS => "Harris-s",
            Algorithm::HarrisM => "Harris-m",
            Algorithm::UnsharpM => "Unsharp-m",
            Algorithm::XcorrM => "Xcorr-m",
            Algorithm::DenoiseM => "Denoise-m",
        }
    }

    /// Expected stage count (Tbl. 3).
    pub fn expected_stages(&self) -> usize {
        match self {
            Algorithm::CannyS => 9,
            Algorithm::CannyM => 10,
            Algorithm::HarrisS => 7,
            Algorithm::HarrisM => 7,
            Algorithm::UnsharpM => 5,
            Algorithm::XcorrM => 3,
            Algorithm::DenoiseM => 5,
        }
    }

    /// Expected multiple-consumer stage count (Tbl. 3).
    pub fn expected_multi_consumer(&self) -> usize {
        match self {
            Algorithm::CannyS | Algorithm::HarrisS => 0,
            Algorithm::CannyM | Algorithm::HarrisM | Algorithm::UnsharpM | Algorithm::XcorrM => 1,
            Algorithm::DenoiseM => 2,
        }
    }

    /// DSL source of the pipeline.
    pub fn dsl_source(&self) -> &'static str {
        match self {
            Algorithm::CannyS => CANNY_S,
            Algorithm::CannyM => CANNY_M,
            Algorithm::HarrisS => HARRIS_S,
            Algorithm::HarrisM => HARRIS_M,
            Algorithm::UnsharpM => UNSHARP_M,
            Algorithm::XcorrM => XCORR_M,
            Algorithm::DenoiseM => DENOISE_M,
        }
    }

    /// Compiles the pipeline to a validated DAG.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in sources (tested).
    pub fn build(&self) -> imagen_ir::Dag {
        imagen_dsl::compile(self.name(), self.dsl_source())
            .expect("built-in algorithm sources compile")
    }
}

const CANNY_S: &str = "
// Canny edge detection, single-consumer chain (paper Tbl. 3: 9 stages).
input raw;
blur_h = im(x,y) (raw(x-1,y) + 2*raw(x,y) + raw(x+1,y)) >> 2 end
blur_v = im(x,y) (blur_h(x,y-1) + 2*blur_h(x,y) + blur_h(x,y+1)) >> 2 end
// Gradient magnitude |Gx| + |Gy| fused into one 3x3 stage.
gmag = im(x,y)
    abs(blur_v(x+1,y-1) + 2*blur_v(x+1,y) + blur_v(x+1,y+1)
      - blur_v(x-1,y-1) - 2*blur_v(x-1,y) - blur_v(x-1,y+1))
  + abs(blur_v(x-1,y+1) + 2*blur_v(x,y+1) + blur_v(x+1,y+1)
      - blur_v(x-1,y-1) - 2*blur_v(x,y-1) - blur_v(x+1,y-1))
end
nms = im(x,y) select(
    gmag(x,y) >= max(max(gmag(x-1,y), gmag(x+1,y)),
                     max(gmag(x,y-1), gmag(x,y+1))),
    gmag(x,y), 0) end
thresh = im(x,y) select(nms(x,y) > 48, 2, select(nms(x,y) > 24, 1, 0)) end
hyst1 = im(x,y) select(thresh(x,y) == 2, 2,
    select(thresh(x,y) == 1,
        select(max(max(thresh(x-1,y-1), thresh(x+1,y-1)),
                   max(thresh(x-1,y+1), thresh(x+1,y+1))) == 2, 2, 0),
        0)) end
hyst2 = im(x,y) select(hyst1(x,y) == 2, 2,
    select(hyst1(x,y) == 1,
        select(max(max(hyst1(x-1,y), hyst1(x+1,y)),
                   max(hyst1(x,y-1), hyst1(x,y+1))) == 2, 2, 0),
        0)) end
output edges = im(x,y) select(hyst2(x,y) == 2, 255, 0) end
";

const CANNY_M: &str = "
// Canny edge detection with separate Sobel passes: blur_v feeds both gx
// and gy (the single multiple-consumer stage; paper Tbl. 3: 10 stages).
input raw;
blur_h = im(x,y) (raw(x-1,y) + 2*raw(x,y) + raw(x+1,y)) >> 2 end
blur_v = im(x,y) (blur_h(x,y-1) + 2*blur_h(x,y) + blur_h(x,y+1)) >> 2 end
gx = im(x,y)
    blur_v(x+1,y-1) + 2*blur_v(x+1,y) + blur_v(x+1,y+1)
  - blur_v(x-1,y-1) - 2*blur_v(x-1,y) - blur_v(x-1,y+1) end
gy = im(x,y)
    blur_v(x-1,y+1) + 2*blur_v(x,y+1) + blur_v(x+1,y+1)
  - blur_v(x-1,y-1) - 2*blur_v(x,y-1) - blur_v(x+1,y-1) end
mag = im(x,y) abs(gx(x,y)) + abs(gy(x,y)) end
nms = im(x,y) select(
    mag(x,y) >= max(max(mag(x-1,y), mag(x+1,y)),
                    max(mag(x,y-1), mag(x,y+1))),
    mag(x,y), 0) end
thresh = im(x,y) select(nms(x,y) > 48, 2, select(nms(x,y) > 24, 1, 0)) end
hyst = im(x,y) select(thresh(x,y) == 2, 2,
    select(thresh(x,y) == 1,
        select(max(max(thresh(x-1,y-1), thresh(x+1,y-1)),
                   max(thresh(x-1,y+1), thresh(x+1,y+1))) == 2, 2, 0),
        0)) end
output edges = im(x,y) select(hyst(x,y) == 2, 255, 0) end
";

const HARRIS_S: &str = "
// Harris corner detection, chain-approximated single-consumer variant
// (paper Tbl. 3: 7 stages).
input raw;
blur = im(x,y) (raw(x-1,y-1) + 2*raw(x,y-1) + raw(x+1,y-1)
              + 2*raw(x-1,y) + 4*raw(x,y)   + 2*raw(x+1,y)
              + raw(x-1,y+1) + 2*raw(x,y+1) + raw(x+1,y+1)) >> 4 end
grad2 = im(x,y)
    (blur(x+1,y) - blur(x-1,y)) * (blur(x+1,y) - blur(x-1,y))
  + (blur(x,y+1) - blur(x,y-1)) * (blur(x,y+1) - blur(x,y-1)) end
ssum = im(x,y) (grad2(x-1,y-1) + grad2(x,y-1) + grad2(x+1,y-1)
              + grad2(x-1,y)   + grad2(x,y)   + grad2(x+1,y)
              + grad2(x-1,y+1) + grad2(x,y+1) + grad2(x+1,y+1)) >> 3 end
corner = im(x,y) 8*ssum(x,y) - ssum(x-1,y-1) - ssum(x,y-1) - ssum(x+1,y-1)
                - ssum(x-1,y) - ssum(x+1,y)
                - ssum(x-1,y+1) - ssum(x,y+1) - ssum(x+1,y+1) end
score = im(x,y) clamp(corner(x,y) >> 4, 0, 255) end
output corners = im(x,y) select(score(x,y) > 32, score(x,y), 0) end
";

const HARRIS_M: &str = "
// Harris corner detection with separate Ix^2 / Iy^2 paths: blur is the
// single multiple-consumer stage (paper Tbl. 3: 7 stages).
input raw;
blur = im(x,y) (raw(x-1,y-1) + 2*raw(x,y-1) + raw(x+1,y-1)
              + 2*raw(x-1,y) + 4*raw(x,y)   + 2*raw(x+1,y)
              + raw(x-1,y+1) + 2*raw(x,y+1) + raw(x+1,y+1)) >> 4 end
ix2 = im(x,y) (blur(x+1,y) - blur(x-1,y)) * (blur(x+1,y) - blur(x-1,y)) end
iy2 = im(x,y) (blur(x,y+1) - blur(x,y-1)) * (blur(x,y+1) - blur(x,y-1)) end
sxx = im(x,y) (ix2(x-1,y-1) + ix2(x,y-1) + ix2(x+1,y-1)
             + ix2(x-1,y)   + ix2(x,y)   + ix2(x+1,y)
             + ix2(x-1,y+1) + ix2(x,y+1) + ix2(x+1,y+1)) >> 3 end
syy = im(x,y) (iy2(x-1,y-1) + iy2(x,y-1) + iy2(x+1,y-1)
             + iy2(x-1,y)   + iy2(x,y)   + iy2(x+1,y)
             + iy2(x-1,y+1) + iy2(x,y+1) + iy2(x+1,y+1)) >> 3 end
output resp = im(x,y)
    (sxx(x,y) * syy(x,y)) >> 8
  - (((sxx(x,y) + syy(x,y)) * (sxx(x,y) + syy(x,y))) >> 12) end
";

const UNSHARP_M: &str = "
// Unsharp masking: the input feeds both the blur chain and the sharpen
// stage (the paper's motivating multiple-consumer case; Tbl. 3: 5 stages).
input raw;
blur_h = im(x,y) (raw(x-2,y) + 4*raw(x-1,y) + 6*raw(x,y)
                + 4*raw(x+1,y) + raw(x+2,y)) >> 4 end
blur_v = im(x,y) (blur_h(x,y-2) + 4*blur_h(x,y-1) + 6*blur_h(x,y)
                + 4*blur_h(x,y+1) + blur_h(x,y+2)) >> 4 end
sharp = im(x,y) raw(x,y) + (raw(x,y) - blur_v(x,y)) end
output sharpened = im(x,y) clamp(sharp(x,y), 0, 255) end
";

const XCORR_M: &str = "
// Normalized cross correlation against a fixed 18-row vertical template;
// the input feeds both the correlator and the normalizer (Tbl. 3: 3
// stages, with the 18x1 stencil the paper calls out in Sec. 8.3).
input sig;
corr = im(x,y)
      1*sig(x,y)    + 2*sig(x,y+1)  + 3*sig(x,y+2)  + 4*sig(x,y+3)
    + 5*sig(x,y+4)  + 6*sig(x,y+5)  + 7*sig(x,y+6)  + 8*sig(x,y+7)
    + 9*sig(x,y+8)  + 9*sig(x,y+9)  + 8*sig(x,y+10) + 7*sig(x,y+11)
    + 6*sig(x,y+12) + 5*sig(x,y+13) + 4*sig(x,y+14) + 3*sig(x,y+15)
    + 2*sig(x,y+16) + 1*sig(x,y+17) end
output match = im(x,y)
    (corr(x,y) << 4) / (1 + sig(x,y)    + sig(x,y+1)  + sig(x,y+2)
                          + sig(x,y+3)  + sig(x,y+4)  + sig(x,y+5)
                          + sig(x,y+6)  + sig(x,y+7)  + sig(x,y+8)
                          + sig(x,y+9)  + sig(x,y+10) + sig(x,y+11)
                          + sig(x,y+12) + sig(x,y+13) + sig(x,y+14)
                          + sig(x,y+15) + sig(x,y+16) + sig(x,y+17)) end
";

const DENOISE_M: &str = "
// Edge-preserving denoise (SODA's denoise2D shape): both the input and
// the blurred image fan out to two consumers (Tbl. 3: 5 stages, 2 MC).
input raw;
blur = im(x,y) (raw(x-1,y-1) + raw(x,y-1) + raw(x+1,y-1)
              + raw(x-1,y)   + raw(x,y)   + raw(x+1,y)
              + raw(x-1,y+1) + raw(x,y+1) + raw(x+1,y+1)) / 9 end
diff = im(x,y) abs(raw(x,y) - blur(x,y)) end
wsum = im(x,y) diff(x-1,y-1) + diff(x,y-1) + diff(x+1,y-1)
             + diff(x-1,y)   + diff(x,y)   + diff(x+1,y)
             + diff(x-1,y+1) + diff(x,y+1) + diff(x+1,y+1) end
output denoised = im(x,y) select(wsum(x,y) > 96, blur(x,y), raw(x,y)) end
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_stage_counts() {
        for alg in Algorithm::all() {
            let dag = alg.build();
            assert_eq!(
                dag.num_stages(),
                alg.expected_stages(),
                "{} stage count",
                alg.name()
            );
            assert_eq!(
                dag.multi_consumer_stages().len(),
                alg.expected_multi_consumer(),
                "{} MC stage count",
                alg.name()
            );
            dag.validate().unwrap();
        }
    }

    #[test]
    fn xcorr_has_tall_stencil() {
        let dag = Algorithm::XcorrM.build();
        let max_h = dag.edges().map(|(_, e)| e.window().height).max().unwrap();
        assert_eq!(max_h, 18, "the paper's 18x1 window");
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Algorithm::all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "Canny-s",
                "Canny-m",
                "Harris-s",
                "Harris-m",
                "Unsharp-m",
                "Xcorr-m",
                "Denoise-m"
            ]
        );
    }

    #[test]
    fn sources_round_trip_through_printer() {
        // `to_dsl` → `compile` must reproduce the *identical* pipeline —
        // not just the same shape — for every Tbl. 3 program: equal
        // structural fingerprints mean equal cache keys, equal schedules
        // and byte-equal RTL for any geometry and memory spec.
        for alg in Algorithm::all() {
            let dag = alg.build();
            let printed = imagen_dsl::to_dsl(&dag);
            let dag2 = imagen_dsl::compile(alg.name(), &printed)
                .unwrap_or_else(|e| panic!("{} reprint failed: {e}", alg.name()));
            assert_eq!(dag.num_stages(), dag2.num_stages());
            assert_eq!(dag.num_edges(), dag2.num_edges());
            assert_eq!(
                dag.fingerprint(),
                dag2.fingerprint(),
                "{}: printed program is not the same pipeline",
                alg.name()
            );
            // And printing is a fixpoint: a second round trip prints the
            // same text.
            assert_eq!(printed, imagen_dsl::to_dsl(&dag2), "{}", alg.name());
        }
    }

    #[test]
    fn denoise_fanout_structure() {
        let dag = Algorithm::DenoiseM.build();
        let mc = dag.multi_consumer_stages();
        let names: Vec<&str> = mc.iter().map(|&s| dag.stage(s).name()).collect();
        assert_eq!(names, vec!["raw", "blur"]);
        assert_eq!(dag.consumers_of(mc[0]).len(), 3, "raw feeds 3 stages");
    }
}
