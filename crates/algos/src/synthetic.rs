//! Synthetic pipelines and test patterns.
//!
//! The paper's scalability experiment (Sec. 8.2) sweeps pipelines from 9
//! to 60 stages with a third of the stages having multiple consumers;
//! [`synthetic_pipeline`] reproduces those inputs deterministically.
//! [`sample_pattern`] provides deterministic synthetic frames for the
//! simulator (DESIGN.md §5 — memory behaviour is data-independent, so
//! synthetic frames exercise the same paths as camera captures).

use imagen_ir::{Dag, Expr, StageId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a synthetic pipeline with `stages` total stages (including the
/// input), roughly one third of which have multiple consumers, matching
/// the Sec. 8.2 scalability sweep.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `stages < 2`.
pub fn synthetic_pipeline(stages: usize, seed: u64) -> Dag {
    assert!(stages >= 2, "a pipeline needs an input and an output");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dag = Dag::new(format!("synthetic-{stages}-{seed}"));
    let mut ids: Vec<StageId> = vec![dag.add_input("in")];

    for i in 1..stages {
        // Every third stage reads two upstream producers, making the
        // younger of them a multiple-consumer stage over time.
        let primary = ids[i - 1];
        let secondary = if i % 3 == 0 && i >= 2 {
            Some(ids[rng.gen_range(0..i.saturating_sub(1))])
        } else {
            None
        };
        let h = *[1i32, 3, 3, 5].get(rng.gen_range(0..4)).unwrap_or(&3);
        let kernel = match secondary {
            None => window_sum(0, h),
            Some(_) => Expr::bin(imagen_ir::BinOp::Add, window_sum(0, h), window_sum(1, 3)),
        };
        let producers: Vec<StageId> = match secondary {
            None => vec![primary],
            Some(s) => vec![primary, s],
        };
        let id = dag
            .add_stage(format!("s{i}"), &producers, kernel)
            .expect("synthetic stages are well-formed");
        ids.push(id);
    }
    // Make the final stage the output; mark any dangling stages as outputs
    // too so validation passes (they model taps observed off-chip).
    let last = *ids.last().expect("non-empty");
    dag.mark_output(last);
    for &id in &ids {
        let has_consumer = dag.consumer_edges(id).next().is_some();
        if !has_consumer {
            dag.mark_output(id);
        }
    }
    dag
}

fn window_sum(slot: usize, h: i32) -> Expr {
    let half = h / 2;
    Expr::sum((-half..=half).flat_map(move |dy| (-1..=1).map(move |dx| Expr::tap(slot, dx, dy))))
}

/// Deterministic synthetic test patterns for simulator inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TestPattern {
    /// Diagonal gradient.
    Gradient,
    /// Checkerboard with the given tile size.
    Checker(u32),
    /// Pseudo-random noise (hash-based, stateless).
    Noise,
    /// Horizontal bars plus impulse outliers (exercises edge/denoise
    /// kernels).
    Bars,
}

/// Samples a test pattern at `(x, y)`; deterministic in `seed`.
pub fn sample_pattern(pattern: TestPattern, seed: u64, x: u32, y: u32) -> i64 {
    match pattern {
        TestPattern::Gradient => ((x + 2 * y) % 256) as i64,
        TestPattern::Checker(t) => {
            let t = t.max(1);
            if ((x / t) + (y / t)).is_multiple_of(2) {
                220
            } else {
                30
            }
        }
        TestPattern::Noise => noise_bits(seed, x, y, 8),
        TestPattern::Bars => {
            let base = if (y / 8).is_multiple_of(2) { 200 } else { 40 };
            let spike = sample_pattern(TestPattern::Noise, seed ^ 0xABCD, x, y);
            if spike > 250 {
                255
            } else {
                base
            }
        }
    }
}

/// Stateless `bits`-bit pseudo-random sample at `(x, y)`: the SplitMix64
/// hash behind [`TestPattern::Noise`] (which is this at 8 bits) with a
/// configurable pixel width. The one deterministic-noise convention
/// shared by the simulator inputs and the `imagen sim`/`energy` CLI
/// frames.
pub fn noise_bits(seed: u64, x: u32, y: u32, bits: u32) -> i64 {
    let mut z = seed
        .wrapping_add((x as u64) << 32)
        .wrapping_add(y as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let z = z ^ (z >> 31);
    let mask = if bits >= 63 {
        i64::MAX as u64
    } else {
        (1u64 << bits) - 1
    };
    (z & mask) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_bits_is_the_noise_pattern_at_8_bits() {
        for (x, y) in [(0, 0), (3, 7), (100, 41)] {
            assert_eq!(
                noise_bits(42, x, y, 8),
                sample_pattern(TestPattern::Noise, 42, x, y)
            );
            assert!(noise_bits(42, x, y, 4) < 16);
        }
    }

    #[test]
    fn synthetic_sizes_and_mc_fraction() {
        for &n in &[9usize, 24, 60] {
            let dag = synthetic_pipeline(n, 7);
            assert_eq!(dag.num_stages(), n);
            dag.validate().unwrap();
            let mc = dag.multi_consumer_stages().len();
            // Roughly a third of stages fan out (paper Sec. 8.2); allow a
            // generous band since the graph is random.
            assert!(
                mc >= n / 6 && mc <= n / 2 + 1,
                "{n} stages -> {mc} MC stages"
            );
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = synthetic_pipeline(15, 3);
        let b = synthetic_pipeline(15, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = synthetic_pipeline(15, 4);
        // Different seeds: very likely different edge structure; compare
        // edge producers as a cheap fingerprint.
        let fp = |d: &Dag| {
            d.edges()
                .map(|(_, e)| (e.producer().index(), e.consumer().index()))
                .collect::<Vec<_>>()
        };
        assert_eq!(fp(&a), fp(&b));
        let _ = c;
    }

    #[test]
    fn patterns_deterministic_and_bounded() {
        for &p in &[
            TestPattern::Gradient,
            TestPattern::Checker(4),
            TestPattern::Noise,
            TestPattern::Bars,
        ] {
            for (x, y) in [(0, 0), (13, 7), (479, 319)] {
                let a = sample_pattern(p, 42, x, y);
                let b = sample_pattern(p, 42, x, y);
                assert_eq!(a, b);
                assert!((0..=255).contains(&a), "{p:?} out of range: {a}");
            }
        }
        // Seeds matter for noise.
        assert_ne!(
            (0..64)
                .map(|i| sample_pattern(TestPattern::Noise, 1, i, 0))
                .collect::<Vec<_>>(),
            (0..64)
                .map(|i| sample_pattern(TestPattern::Noise, 2, i, 0))
                .collect::<Vec<_>>()
        );
    }
}
