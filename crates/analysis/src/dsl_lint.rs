//! DSL lints: pre-lowering checks over the AST.
//!
//! These run on the [`Program`] rather than the lowered DAG because the
//! lowerer *rejects* several of the shapes linted here (dead stages, for
//! one), and because only the AST still carries source positions and the
//! constant structure the `W0105` fold check needs.

use crate::width::MAX_TAP_REACH;
use crate::{codes, Diagnostic, Locus, Severity};
use imagen_dsl::{AstExpr, Item, Pos, Program};
use std::collections::{HashMap, HashSet};

fn src(pos: Pos) -> Locus {
    Locus::Source {
        line: pos.line,
        col: pos.col,
    }
}

/// Runs every DSL lint over a parsed program.
pub(crate) fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Which names each stage taps, in item order.
    let mut tapped: HashSet<&str> = HashSet::new();
    let mut taps_of: HashMap<&str, Vec<&str>> = HashMap::new();
    for item in &program.items {
        if let Item::Stage { name, body, .. } = item {
            let entry = taps_of.entry(name.as_str()).or_default();
            body.for_each_tap(&mut |stage, _, _| {
                tapped.insert(stage);
                entry.push(stage);
            });
        }
    }

    // Backward reachability from the output stages over tap edges.
    let mut live: HashSet<&str> = HashSet::new();
    let mut work: Vec<&str> = Vec::new();
    for item in &program.items {
        if let Item::Stage {
            name, output: true, ..
        } = item
        {
            if live.insert(name.as_str()) {
                work.push(name.as_str());
            }
        }
    }
    while let Some(n) = work.pop() {
        for &p in taps_of.get(n).into_iter().flatten() {
            if live.insert(p) {
                work.push(p);
            }
        }
    }

    // Unused / unreachable items, in source order.
    for item in &program.items {
        match item {
            Item::Input { name, pos } => {
                if !tapped.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            codes::UNUSED_INPUT,
                            Severity::Warning,
                            format!("input `{name}` is never read"),
                        )
                        .at(src(*pos)),
                    );
                }
            }
            Item::Stage {
                name,
                output: false,
                pos,
                ..
            } => {
                if !tapped.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            codes::UNUSED_STAGE,
                            Severity::Warning,
                            format!("stage `{name}` is never used"),
                        )
                        .at(src(*pos)),
                    );
                } else if !live.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            codes::NO_PATH_TO_SINK,
                            Severity::Warning,
                            format!("stage `{name}` has no path to any output"),
                        )
                        .at(src(*pos)),
                    );
                }
            }
            Item::Stage { .. } => {}
        }
    }

    // Suspicious tap reach, in tap order.
    for item in &program.items {
        if let Item::Stage { body, .. } = item {
            walk_taps(body, &mut |stage, dx, dy, pos| {
                if dx.abs() > MAX_TAP_REACH || dy.abs() > MAX_TAP_REACH {
                    diags.push(
                        Diagnostic::new(
                            codes::TAP_REACH,
                            Severity::Warning,
                            format!(
                                "tap into `{stage}` at offset ({dx:+}, {dy:+}) exceeds the \
                                 expected stencil reach of {MAX_TAP_REACH}"
                            ),
                        )
                        .at(src(pos)),
                    );
                }
            });
        }
    }

    // Constant-foldable subexpressions: maximal non-literal const subtrees.
    for item in &program.items {
        if let Item::Stage { name, body, .. } = item {
            maximal_const(body, &mut |value| {
                diags.push(
                    Diagnostic::new(
                        codes::CONST_FOLD,
                        Severity::Warning,
                        format!("subexpression in stage `{name}` always evaluates to {value}"),
                    )
                    .at(Locus::Stage(name.clone())),
                );
            });
        }
    }

    diags
}

/// Visits taps with their source positions.
fn walk_taps(e: &AstExpr, f: &mut impl FnMut(&str, i32, i32, Pos)) {
    match e {
        AstExpr::Number(_) => {}
        AstExpr::Tap {
            stage, dx, dy, pos, ..
        } => f(stage, *dx, *dy, *pos),
        AstExpr::Neg(a) => walk_taps(a, f),
        AstExpr::Call { args, .. } => {
            for a in args {
                walk_taps(a, f);
            }
        }
        AstExpr::Bin { lhs, rhs, .. } => {
            walk_taps(lhs, f);
            walk_taps(rhs, f);
        }
    }
}

/// Reports each *maximal* constant-foldable subtree that is not already a
/// bare literal, without descending into it (one diagnostic per fold
/// opportunity, not one per node).
fn maximal_const(e: &AstExpr, emit: &mut impl FnMut(i64)) {
    if matches!(e, AstExpr::Number(_)) {
        return;
    }
    if let Some(v) = e.const_value() {
        emit(v);
        return;
    }
    match e {
        AstExpr::Number(_) | AstExpr::Tap { .. } => {}
        AstExpr::Neg(a) => maximal_const(a, emit),
        AstExpr::Call { args, .. } => {
            for a in args {
                maximal_const(a, emit);
            }
        }
        AstExpr::Bin { lhs, rhs, .. } => {
            maximal_const(lhs, emit);
            maximal_const(rhs, emit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_dsl::parse_program;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_program(&parse_program(src).unwrap())
    }

    #[test]
    fn clean_program_is_quiet() {
        let d = lint("input a; output b = im(x,y) a(x-1,y) + a(x+1,y) end");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_stage_and_input() {
        let d = lint(
            "input a; input ghost;\n\
             dead = im(x,y) a(x,y) + 1 end\n\
             output o = im(x,y) a(x,y) end",
        );
        let got: Vec<_> = d.iter().map(|x| x.code).collect();
        assert_eq!(got, vec![codes::UNUSED_INPUT, codes::UNUSED_STAGE]);
        assert!(d[0].message.contains("ghost"));
        assert!(d[1].message.contains("dead"));
    }

    #[test]
    fn no_path_to_sink_is_distinct_from_unused() {
        // `b` is read (by `c`), but `c` itself is dead, so `b` never
        // reaches an output.
        let d = lint(
            "input a;\n\
             b = im(x,y) a(x,y) end\n\
             c = im(x,y) b(x,y) * 2 end\n\
             output o = im(x,y) a(x,y) end",
        );
        let got: Vec<_> = d.iter().map(|x| x.code).collect();
        assert_eq!(got, vec![codes::NO_PATH_TO_SINK, codes::UNUSED_STAGE]);
        assert!(d[0].message.contains('b'));
        assert!(d[1].message.contains('c'));
    }

    #[test]
    fn excessive_tap_reach() {
        let d = lint("input a; output o = im(x,y) a(x, y - 40) end");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::TAP_REACH);
        assert!(d[0].message.contains("-40"), "{}", d[0].message);
        assert!(matches!(d[0].locus, Locus::Source { .. }));
    }

    #[test]
    fn constant_fold_reports_maximal_subtree_once() {
        let d = lint("input a; output o = im(x,y) a(x,y) * (2 + 3 * 4) end");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::CONST_FOLD);
        assert!(d[0].message.contains("14"), "{}", d[0].message);
    }

    #[test]
    fn bare_literals_are_not_fold_candidates() {
        let d = lint("input a; output o = im(x,y) a(x,y) + 7 end");
        assert!(d.is_empty(), "{d:?}");
    }
}
