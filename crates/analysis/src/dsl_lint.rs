//! DSL lints: pre-lowering checks over the AST.
//!
//! These run on the [`Program`] rather than the lowered DAG because the
//! lowerer *rejects* several of the shapes linted here (dead stages, for
//! one), and because only the AST still carries source positions and the
//! constant structure the `W0105` fold check needs.

use crate::width::MAX_TAP_REACH;
use crate::{codes, Diagnostic, Locus, Severity};
use imagen_dsl::{AstExpr, AstRate, Item, Pos, Program};
use imagen_ir::MAX_RATE_FACTOR;
use imagen_mem::ImageGeometry;
use std::collections::{HashMap, HashSet};

fn src(pos: Pos) -> Locus {
    Locus::Source {
        line: pos.line,
        col: pos.col,
    }
}

/// Runs every DSL lint over a parsed program against `geom`'s frame.
pub(crate) fn lint_program(program: &Program, geom: &ImageGeometry) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Which names each stage taps, in item order.
    let mut tapped: HashSet<&str> = HashSet::new();
    let mut taps_of: HashMap<&str, Vec<&str>> = HashMap::new();
    for item in &program.items {
        if let Item::Stage { name, body, .. } = item {
            let entry = taps_of.entry(name.as_str()).or_default();
            body.for_each_tap(&mut |stage, _, _| {
                tapped.insert(stage);
                entry.push(stage);
            });
        }
    }

    // Backward reachability from the output stages over tap edges.
    let mut live: HashSet<&str> = HashSet::new();
    let mut work: Vec<&str> = Vec::new();
    for item in &program.items {
        if let Item::Stage {
            name, output: true, ..
        } = item
        {
            if live.insert(name.as_str()) {
                work.push(name.as_str());
            }
        }
    }
    while let Some(n) = work.pop() {
        for &p in taps_of.get(n).into_iter().flatten() {
            if live.insert(p) {
                work.push(p);
            }
        }
    }

    // Unused / unreachable items, in source order.
    for item in &program.items {
        match item {
            Item::Input { name, pos } => {
                if !tapped.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            codes::UNUSED_INPUT,
                            Severity::Warning,
                            format!("input `{name}` is never read"),
                        )
                        .at(src(*pos)),
                    );
                }
            }
            Item::Stage {
                name,
                output: false,
                pos,
                ..
            } => {
                if !tapped.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            codes::UNUSED_STAGE,
                            Severity::Warning,
                            format!("stage `{name}` is never used"),
                        )
                        .at(src(*pos)),
                    );
                } else if !live.contains(name.as_str()) {
                    diags.push(
                        Diagnostic::new(
                            codes::NO_PATH_TO_SINK,
                            Severity::Warning,
                            format!("stage `{name}` has no path to any output"),
                        )
                        .at(src(*pos)),
                    );
                }
            }
            Item::Stage { .. } => {}
        }
    }

    // Suspicious tap reach, in tap order.
    for item in &program.items {
        if let Item::Stage { body, .. } = item {
            walk_taps(body, &mut |stage, dx, dy, pos| {
                if dx.abs() > MAX_TAP_REACH || dy.abs() > MAX_TAP_REACH {
                    diags.push(
                        Diagnostic::new(
                            codes::TAP_REACH,
                            Severity::Warning,
                            format!(
                                "tap into `{stage}` at offset ({dx:+}, {dy:+}) exceeds the \
                                 expected stencil reach of {MAX_TAP_REACH}"
                            ),
                        )
                        .at(src(pos)),
                    );
                }
            });
        }
    }

    // Multirate structure, mirroring the lowerer's cumulative-scale
    // composition over the AST. Stages whose rate factors are out of
    // range, whose upsample would rise above the base grid, or whose
    // producers are undeclared are skipped here — lowering owns those
    // rejections (`E0002`); the lints below cover shapes that *lower*
    // fine but then trip the planner (indivisible extents) or that
    // deserve a source position before the lowerer's flat error
    // (producers at mismatched scales under one kernel).
    let mut scales: HashMap<&str, (u64, u64)> = HashMap::new();
    for item in &program.items {
        match item {
            Item::Input { name, .. } => {
                scales.insert(name.as_str(), (1, 1));
            }
            Item::Stage {
                name, body, rate, ..
            } => {
                // Distinct producers in first-tap order, with positions.
                let mut prods: Vec<(String, Pos)> = Vec::new();
                walk_taps(body, &mut |stage, _, _, pos| {
                    if !prods.iter().any(|(s, _)| s == stage) {
                        prods.push((stage.to_string(), pos));
                    }
                });
                let known: Vec<(&str, (u64, u64), Pos)> = prods
                    .iter()
                    .filter_map(|(s, p)| scales.get(s.as_str()).map(|&sc| (s.as_str(), sc, *p)))
                    .collect();
                let Some(&(base_name, base, _)) = known.first() else {
                    continue;
                };
                for &(s, sc, pos) in &known[1..] {
                    if sc != base {
                        diags.push(
                            Diagnostic::new(
                                codes::RATE_MISMATCH,
                                Severity::Warning,
                                format!(
                                    "stage `{name}` taps `{s}` at cumulative scale \
                                     ({}, {}) alongside `{base_name}` at ({}, {}); \
                                     all producers of one stage must sit on the same grid",
                                    sc.0, sc.1, base.0, base.1
                                ),
                            )
                            .at(src(pos)),
                        );
                    }
                }
                let own = match *rate {
                    AstRate::Unit => Some(base),
                    AstRate::Down { fx, fy, .. } => {
                        (fx > 0 && fy > 0 && fx as u64 <= MAX_RATE_FACTOR
                            && fy as u64 <= MAX_RATE_FACTOR)
                            .then(|| (base.0 * fx as u64, base.1 * fy as u64))
                            .filter(|&(cx, cy)| cx <= MAX_RATE_FACTOR && cy <= MAX_RATE_FACTOR)
                    }
                    AstRate::Up { fx, fy, .. } => (fx > 0
                        && fy > 0
                        && base.0 % fx as u64 == 0
                        && base.1 % fy as u64 == 0)
                        .then(|| (base.0 / fx as u64, base.1 / fy as u64)),
                };
                let Some((cx, cy)) = own else { continue };
                scales.insert(name.as_str(), (cx, cy));
                // Report indivisible extents once, at the modifier that
                // introduces the offending scale — inherited unit-rate
                // stages downstream share the same root cause.
                let divides =
                    u64::from(geom.width) % cx == 0 && u64::from(geom.height) % cy == 0;
                let inherited =
                    u64::from(geom.width) % base.0 == 0 && u64::from(geom.height) % base.1 == 0;
                if !divides && inherited {
                    if let AstRate::Down { pos, .. } | AstRate::Up { pos, .. } = *rate {
                        diags.push(
                            Diagnostic::new(
                                codes::RATE_INDIVISIBLE,
                                Severity::Warning,
                                format!(
                                    "stage `{name}` runs at cumulative scale ({cx}, {cy}), \
                                     which does not divide the {}x{} frame; the planner \
                                     will reject this geometry",
                                    geom.width, geom.height
                                ),
                            )
                            .at(src(pos)),
                        );
                    }
                }
            }
        }
    }

    // Constant-foldable subexpressions: maximal non-literal const subtrees.
    for item in &program.items {
        if let Item::Stage { name, body, .. } = item {
            maximal_const(body, &mut |value| {
                diags.push(
                    Diagnostic::new(
                        codes::CONST_FOLD,
                        Severity::Warning,
                        format!("subexpression in stage `{name}` always evaluates to {value}"),
                    )
                    .at(Locus::Stage(name.clone())),
                );
            });
        }
    }

    diags
}

/// Visits taps with their source positions.
fn walk_taps(e: &AstExpr, f: &mut impl FnMut(&str, i32, i32, Pos)) {
    match e {
        AstExpr::Number(_) => {}
        AstExpr::Tap {
            stage, dx, dy, pos, ..
        } => f(stage, *dx, *dy, *pos),
        AstExpr::Neg(a) => walk_taps(a, f),
        AstExpr::Call { args, .. } => {
            for a in args {
                walk_taps(a, f);
            }
        }
        AstExpr::Bin { lhs, rhs, .. } => {
            walk_taps(lhs, f);
            walk_taps(rhs, f);
        }
    }
}

/// Reports each *maximal* constant-foldable subtree that is not already a
/// bare literal, without descending into it (one diagnostic per fold
/// opportunity, not one per node).
fn maximal_const(e: &AstExpr, emit: &mut impl FnMut(i64)) {
    if matches!(e, AstExpr::Number(_)) {
        return;
    }
    if let Some(v) = e.const_value() {
        emit(v);
        return;
    }
    match e {
        AstExpr::Number(_) | AstExpr::Tap { .. } => {}
        AstExpr::Neg(a) => maximal_const(a, emit),
        AstExpr::Call { args, .. } => {
            for a in args {
                maximal_const(a, emit);
            }
        }
        AstExpr::Bin { lhs, rhs, .. } => {
            maximal_const(lhs, emit);
            maximal_const(rhs, emit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_dsl::parse_program;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let geom = ImageGeometry {
            width: 64,
            height: 48,
            pixel_bits: 16,
        };
        lint_program(&parse_program(src).unwrap(), &geom)
    }

    #[test]
    fn clean_program_is_quiet() {
        let d = lint("input a; output b = im(x,y) a(x-1,y) + a(x+1,y) end");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unused_stage_and_input() {
        let d = lint(
            "input a; input ghost;\n\
             dead = im(x,y) a(x,y) + 1 end\n\
             output o = im(x,y) a(x,y) end",
        );
        let got: Vec<_> = d.iter().map(|x| x.code).collect();
        assert_eq!(got, vec![codes::UNUSED_INPUT, codes::UNUSED_STAGE]);
        assert!(d[0].message.contains("ghost"));
        assert!(d[1].message.contains("dead"));
    }

    #[test]
    fn no_path_to_sink_is_distinct_from_unused() {
        // `b` is read (by `c`), but `c` itself is dead, so `b` never
        // reaches an output.
        let d = lint(
            "input a;\n\
             b = im(x,y) a(x,y) end\n\
             c = im(x,y) b(x,y) * 2 end\n\
             output o = im(x,y) a(x,y) end",
        );
        let got: Vec<_> = d.iter().map(|x| x.code).collect();
        assert_eq!(got, vec![codes::NO_PATH_TO_SINK, codes::UNUSED_STAGE]);
        assert!(d[0].message.contains('b'));
        assert!(d[1].message.contains('c'));
    }

    #[test]
    fn excessive_tap_reach() {
        let d = lint("input a; output o = im(x,y) a(x, y - 40) end");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::TAP_REACH);
        assert!(d[0].message.contains("-40"), "{}", d[0].message);
        assert!(matches!(d[0].locus, Locus::Source { .. }));
    }

    #[test]
    fn constant_fold_reports_maximal_subtree_once() {
        let d = lint("input a; output o = im(x,y) a(x,y) * (2 + 3 * 4) end");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::CONST_FOLD);
        assert!(d[0].message.contains("14"), "{}", d[0].message);
    }

    #[test]
    fn bare_literals_are_not_fold_candidates() {
        let d = lint("input a; output o = im(x,y) a(x,y) + 7 end");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn divisible_multirate_pipeline_is_quiet() {
        // 64x48 divides by (2, 2): no rate diagnostics.
        let d = lint(
            "input a;\n\
             h = downsample(2,2) im(x,y) a(x,y) end\n\
             output o = upsample(2,2) im(x,y) h(x,y) end",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn indivisible_extent_flagged_at_the_modifier() {
        // 48 % 5 != 0: the downsample introduces a scale the frame
        // cannot tile.
        let d = lint(
            "input a;\n\
             output o = downsample(5,5) im(x,y) a(x,y) end",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::RATE_INDIVISIBLE);
        assert!(d[0].message.contains("(5, 5)"), "{}", d[0].message);
        assert!(matches!(d[0].locus, Locus::Source { line: 2, .. }));
    }

    #[test]
    fn indivisible_extent_reported_once_not_per_downstream_stage() {
        // The unit-rate consumer inherits the same indivisible scale but
        // shares the root cause — one diagnostic, at the modifier.
        let d = lint(
            "input a;\n\
             h = downsample(5,5) im(x,y) a(x,y) end\n\
             output o = im(x,y) h(x,y) end",
        );
        let rate: Vec<_> = d
            .iter()
            .filter(|x| x.code == codes::RATE_INDIVISIBLE)
            .collect();
        assert_eq!(rate.len(), 1, "{d:?}");
    }

    #[test]
    fn rate_mismatched_taps_flagged_with_both_scales() {
        // `o` taps full-rate `a` alongside half-rate `h`.
        let d = lint(
            "input a;\n\
             h = downsample(2,2) im(x,y) a(x,y) end\n\
             output o = im(x,y) a(x,y) + h(x,y) end",
        );
        let m: Vec<_> = d
            .iter()
            .filter(|x| x.code == codes::RATE_MISMATCH)
            .collect();
        assert_eq!(m.len(), 1, "{d:?}");
        assert!(m[0].message.contains("(2, 2)"), "{}", m[0].message);
        assert!(m[0].message.contains("(1, 1)"), "{}", m[0].message);
        assert!(matches!(m[0].locus, Locus::Source { line: 3, .. }));
    }

    #[test]
    fn hostile_rate_shapes_do_not_confuse_the_lint() {
        // Shapes the lowerer rejects (upsampling above the base grid,
        // runaway cumulative downsampling past MAX_RATE_FACTOR) and taps
        // into undeclared names: the lint skips them without arithmetic
        // overflow and without spurious rate diagnostics.
        for src_text in [
            "input a; output o = upsample(2,2) im(x,y) a(x,y) end",
            "output o = downsample(2,2) im(x,y) ghost(x,y) end",
        ] {
            let d = lint(src_text);
            assert!(
                d.iter().all(|x| x.code != codes::RATE_INDIVISIBLE),
                "{src_text}: {d:?}"
            );
        }
        // A cumulative scale that would exceed MAX_RATE_FACTOR: the
        // first (in-range, genuinely indivisible) modifier is reported;
        // the runaway second stage is skipped, not overflowed.
        let d = lint(
            "input a;\n\
             d1 = downsample(1048576,1) im(x,y) a(x,y) end\n\
             output o = downsample(1048576,1) im(x,y) d1(x,y) end",
        );
        let rate: Vec<_> = d
            .iter()
            .filter(|x| x.code == codes::RATE_INDIVISIBLE)
            .collect();
        assert_eq!(rate.len(), 1, "{d:?}");
        assert!(rate[0].message.contains("`d1`"), "{}", rate[0].message);
    }
}
