//! Translation validation: a per-compile certificate that the generated
//! netlist computes what the lowered DSL program means.
//!
//! Instead of trusting the compiler (or sampling it with differentials),
//! [`certify_netlist`] discharges, for every compiled design, two
//! families of proof obligations against the *pinned* interpreter
//! semantics ([`imagen_rtl::eval_acc`] / [`imagen_rtl::interpret`]):
//!
//! - **Stage datapath** — each stage module's kernel term equals the
//!   lowered DSL kernel modulo the declared output-register truncation,
//!   shown by canonicalizing both terms (wide-semantics-preserving
//!   rewrites) and then eliminating the per-operation accumulator
//!   truncations with interval reasoning (`symex::trunc_verdict`).
//! - **Stream alignment** — the ILP schedule plus the line-buffer /
//!   shift-register-array addressing delivers exactly the taps
//!   `(dx, dy)` each kernel consumes: tap coverage and SRA sizing,
//!   write-before-read freshness, no rotation clobbering, and (when a
//!   [`imagen_rtl::GatingPlan`] is attached) gate liveness over every
//!   fetched load. These are closed-form inequalities over start cycles
//!   and window shapes — a symbolic replay of the `Plan` enables, not a
//!   cycle simulation.
//!
//! Obligations the symbolic layer cannot decide fall back to *directed
//! differential sampling* of just that obligation; agreement downgrades
//! the certificate (`Fuzzed`), disagreement refutes it with a concrete
//! witness. The certificate surfaces as diagnostics `E0501..W0509` and
//! drives `imagen certify`, `imagen lint --prove`, the batch server's
//! per-compile certificate status, and optional DSE frontier
//! certification.

use crate::symex::{
    normalize, sample_datapath, tap_vars, trunc_verdict, SampleOutcome, TruncVerdict,
};
use crate::width::{signed_range, stage_intervals, Iv};
use crate::{codes, AnalysisOptions, Diagnostic, Locus, Severity};
use imagen_ir::{Dag, Expr, StageId};
use imagen_mem::DesignStyle;
use imagen_rtl::{build_netlist, sra_cells, BitWidths, NetEdge, Netlist};
use imagen_schedule::ScheduleOptions;
use std::fmt::Write as _;

/// Number of directed differential samples per fuzzed obligation.
const FUZZ_SAMPLES: usize = 512;

/// What a single proof obligation asserts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObligationKind {
    /// The stage module's datapath term equals the lowered DSL kernel
    /// modulo output truncation, for all tap values in the inferred
    /// intervals.
    StageDatapath {
        /// Stage name.
        stage: String,
    },
    /// The schedule + SRA addressing deliver exactly the taps the
    /// consumer's kernel reads from this producer slot.
    TapDelivery {
        /// Consumer stage name.
        consumer: String,
        /// Producer slot in the consumer's kernel.
        slot: usize,
    },
    /// The clock-gating plan keeps the buffer's read port alive on
    /// every cycle whose loaded value some kernel tap later fetches.
    GateLiveness {
        /// Producer (buffer-owning) stage name.
        stage: String,
    },
    /// The declared input range fits the input pixel register, so input
    /// values enter the pipeline unwrapped.
    InputRange {
        /// Input stage name.
        stage: String,
    },
    /// The netlist has the structure the certificate needs (stage
    /// module, kernel payload, SRA nets); without it nothing else is
    /// statable.
    Structure {
        /// Stage name.
        stage: String,
    },
}

impl ObligationKind {
    /// Short machine-readable label, e.g. `datapath(sobel)`.
    pub fn label(&self) -> String {
        match self {
            ObligationKind::StageDatapath { stage } => format!("datapath({stage})"),
            ObligationKind::TapDelivery { consumer, slot } => {
                format!("taps({consumer}, slot {slot})")
            }
            ObligationKind::GateLiveness { stage } => format!("gate({stage})"),
            ObligationKind::InputRange { stage } => format!("input({stage})"),
            ObligationKind::Structure { stage } => format!("structure({stage})"),
        }
    }

    fn locus(&self) -> Locus {
        match self {
            ObligationKind::StageDatapath { stage }
            | ObligationKind::GateLiveness { stage }
            | ObligationKind::InputRange { stage }
            | ObligationKind::Structure { stage } => Locus::Stage(stage.clone()),
            ObligationKind::TapDelivery { consumer, .. } => Locus::Stage(consumer.clone()),
        }
    }
}

/// How a proved obligation was discharged.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProofMode {
    /// Every intermediate fits the accumulator; the datapath value is
    /// the mathematical value, bit for bit.
    Exact,
    /// Intermediates may wrap the accumulator, but the result is
    /// congruent to the wide value mod `2^pixel` — identical after the
    /// output register.
    Modular,
    /// Discharged by closed-form structural/schedule arithmetic (tap
    /// delivery, gating, input range, structure).
    Structural,
}

impl ProofMode {
    /// Lowercase label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            ProofMode::Exact => "exact",
            ProofMode::Modular => "modular",
            ProofMode::Structural => "structural",
        }
    }
}

/// The verdict on one obligation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProofStatus {
    /// Symbolically proved for *all* inputs in the inferred intervals.
    Proved(ProofMode),
    /// Not symbolically decided; discharged by weaker, still-sound-to-
    /// report evidence (directed differential sampling, or bounded
    /// reasoning that leaves a caveat). Carries the warning code it
    /// surfaces as (`W0502`, `W0508`, `W0509`).
    Fuzzed {
        /// Diagnostic code of the caveat.
        code: &'static str,
        /// Differential samples that agreed (0 for non-sampled caveats).
        samples: usize,
    },
    /// Disproved, with a concrete counterexample.
    Refuted {
        /// Diagnostic code of the refutation.
        code: &'static str,
        /// Human-readable witness (tap assignment and both values, or
        /// the offending cycle/net).
        witness: String,
    },
}

impl ProofStatus {
    /// True for [`ProofStatus::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, ProofStatus::Proved(_))
    }

    /// True for [`ProofStatus::Refuted`].
    pub fn is_refuted(&self) -> bool {
        matches!(self, ProofStatus::Refuted { .. })
    }

    /// One-word label: `proved`, `fuzzed` or `refuted`.
    pub fn label(&self) -> &'static str {
        match self {
            ProofStatus::Proved(_) => "proved",
            ProofStatus::Fuzzed { .. } => "fuzzed",
            ProofStatus::Refuted { .. } => "refuted",
        }
    }
}

/// One discharged (or failed) proof obligation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Obligation {
    /// What is asserted.
    pub kind: ObligationKind,
    /// The verdict.
    pub status: ProofStatus,
    /// One-line explanation of how the verdict was reached.
    pub detail: String,
}

/// The per-compile certificate: every obligation the translation
/// validator discharged for one `(pipeline, widths)` pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Pipeline name.
    pub name: String,
    /// Datapath widths the netlist was certified at.
    pub widths: BitWidths,
    /// All obligations, in stage order.
    pub obligations: Vec<Obligation>,
}

impl Certificate {
    /// Number of symbolically proved obligations.
    pub fn proved(&self) -> usize {
        self.obligations
            .iter()
            .filter(|o| o.status.is_proved())
            .count()
    }

    /// Number of obligations discharged only by sampling / bounded
    /// reasoning.
    pub fn fuzzed(&self) -> usize {
        self.obligations
            .iter()
            .filter(|o| matches!(o.status, ProofStatus::Fuzzed { .. }))
            .count()
    }

    /// Number of refuted obligations.
    pub fn refuted(&self) -> usize {
        self.obligations
            .iter()
            .filter(|o| o.status.is_refuted())
            .count()
    }

    /// True when every obligation was symbolically proved: the netlist
    /// provably computes the DSL semantics (modulo declared output
    /// truncation) on all in-range inputs.
    pub fn all_proved(&self) -> bool {
        self.refuted() == 0 && self.fuzzed() == 0 && !self.obligations.is_empty()
    }

    /// Overall status word: `proved`, `fuzzed` or `refuted`.
    pub fn status(&self) -> &'static str {
        if self.refuted() > 0 {
            "refuted"
        } else if self.fuzzed() > 0 {
            "fuzzed"
        } else {
            "proved"
        }
    }

    /// Lowers the non-proved obligations to diagnostics (`E/W05xx`),
    /// for the lint pipeline.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for o in &self.obligations {
            match &o.status {
                ProofStatus::Proved(_) => {}
                ProofStatus::Fuzzed { code, samples } => {
                    let mut msg = format!("{}: {}", o.kind.label(), o.detail);
                    if *samples > 0 {
                        let _ = write!(msg, " ({samples} differential samples agreed)");
                    }
                    out.push(Diagnostic::new(code, Severity::Warning, msg).at(o.kind.locus()));
                }
                ProofStatus::Refuted { code, witness } => {
                    let msg = format!("{}: {} — witness: {}", o.kind.label(), o.detail, witness);
                    out.push(Diagnostic::new(code, Severity::Error, msg).at(o.kind.locus()));
                }
            }
        }
        out
    }

    /// Renders the certificate as a human-readable report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "certificate `{}` @ {}/{}:\n",
            self.name, self.widths.pixel_bits, self.widths.acc_bits
        );
        for o in &self.obligations {
            let how = match &o.status {
                ProofStatus::Proved(m) => format!("proved ({})", m.label()),
                ProofStatus::Fuzzed { code, samples } => {
                    if *samples > 0 {
                        format!("fuzzed [{code}] ({samples} samples)")
                    } else {
                        format!("fuzzed [{code}]")
                    }
                }
                ProofStatus::Refuted { code, witness } => {
                    format!("REFUTED [{code}] witness: {witness}")
                }
            };
            let _ = writeln!(s, "  {:<28} {}  {}", o.kind.label(), how, o.detail);
        }
        let _ = write!(
            s,
            "  {} proved, {} fuzzed, {} refuted -> {}",
            self.proved(),
            self.fuzzed(),
            self.refuted(),
            self.status()
        );
        s
    }
}

/// Certifies a compiled netlist against the planned DAG it was built
/// from (`plan.dag`, *not* the pre-linearization input DAG — the
/// planner may insert relay stages, and the certificate covers those
/// too).
///
/// Geometry and widths are taken from the netlist itself; `opts`
/// contributes the declared input range.
pub fn certify_netlist(dag: &Dag, net: &Netlist, opts: &AnalysisOptions) -> Certificate {
    let eff = AnalysisOptions {
        geom: net.geometry,
        widths: net.widths,
        ..opts.clone()
    };
    let intervals = stage_intervals(dag, &eff);
    let mut obligations = Vec::new();

    for (id, stage) in dag.stages() {
        let i = id.index();
        if stage.is_input() {
            obligations.push(input_obligation(stage.name(), &eff));
            continue;
        }
        // Structure: everything below needs the stage module, its kernel
        // payload and a start cycle. A netlist missing them is not
        // merely wrong — the obligations are unstatable.
        let Some(spec) = stage.kernel() else { continue };
        let (Some(impl_k), Some(_)) = (net.stage_kernel(i), net.enable_window(i)) else {
            obligations.push(Obligation {
                kind: ObligationKind::Structure {
                    stage: stage.name().to_string(),
                },
                status: ProofStatus::Refuted {
                    code: codes::CERT_UNSTATABLE,
                    witness: format!("stage {i} has no compute module/kernel payload"),
                },
                detail: "netlist lacks the structure the certificate needs".to_string(),
            });
            continue;
        };

        let slot_ivs: Vec<Iv> = stage
            .producers()
            .iter()
            .map(|p| intervals[p.index()])
            .collect();
        let producer_names: Vec<&str> = stage
            .producers()
            .iter()
            .map(|p| dag.stage(*p).name())
            .collect();

        obligations.push(datapath_obligation(
            stage.name(),
            spec,
            impl_k,
            &slot_ivs,
            &producer_names,
            &net.widths,
        ));

        for (_, edge) in net.consumer_edges(i) {
            obligations.push(tap_obligation(dag, net, id, edge, impl_k));
        }
    }

    if let Some(gating) = &net.gating {
        for gate in &gating.gates {
            let Some(buf) = net.buffers.get(gate.buffer) else {
                continue;
            };
            let pname = net
                .stages
                .iter()
                .find(|s| s.index == buf.stage)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("stage {}", buf.stage));
            obligations.push(gate_obligation(net, gate, buf.stage, pname));
        }
    }

    Certificate {
        name: net.name.clone(),
        widths: net.widths,
        obligations,
    }
}

/// Plans, builds and certifies a DAG end to end with the given design
/// style — the entry point `imagen certify`, the batch server and DSE
/// frontier certification share.
///
/// # Errors
///
/// An `E0003` diagnostic when the planner rejects the pipeline.
pub fn certify_dag_styled(
    dag: &Dag,
    opts: &AnalysisOptions,
    style: DesignStyle,
) -> Result<Certificate, Diagnostic> {
    let plan = imagen_schedule::plan_design(
        dag,
        &opts.geom,
        &opts.spec,
        ScheduleOptions::default(),
        style,
    )
    .map_err(|e| Diagnostic::new(codes::PLAN, Severity::Error, e.to_string()))?;
    let net = build_netlist(&plan.dag, &plan.design, &opts.widths);
    Ok(certify_netlist(&plan.dag, &net, opts))
}

/// [`certify_dag_styled`] with the paper's line-buffered design style.
///
/// # Errors
///
/// An `E0003` diagnostic when the planner rejects the pipeline.
pub fn certify_dag(dag: &Dag, opts: &AnalysisOptions) -> Result<Certificate, Diagnostic> {
    certify_dag_styled(dag, opts, DesignStyle::Ours)
}

// ---------------------------------------------------------------------
// Individual obligations
// ---------------------------------------------------------------------

fn input_obligation(name: &str, opts: &AnalysisOptions) -> Obligation {
    let (lo, hi) = opts.input_range;
    let pr = signed_range(opts.widths.pixel_bits);
    let kind = ObligationKind::InputRange {
        stage: name.to_string(),
    };
    if (lo as i128) >= pr.0 && (hi as i128) <= pr.1 {
        Obligation {
            kind,
            status: ProofStatus::Proved(ProofMode::Structural),
            detail: format!(
                "input range [{lo}, {hi}] fits the {}-bit pixel register",
                opts.widths.pixel_bits
            ),
        }
    } else {
        // Out-of-range inputs wrap at the input register; the rest of
        // the certificate is stated over post-register values, so this
        // is a caveat rather than a refutation.
        let witness = if (hi as i128) > pr.1 { hi } else { lo };
        Obligation {
            kind,
            status: ProofStatus::Fuzzed {
                code: codes::INPUT_WRAPS,
                samples: 0,
            },
            detail: format!(
                "input value {witness} wraps in the {}-bit pixel register; certificate holds \
                 for post-register values only",
                opts.widths.pixel_bits
            ),
        }
    }
}

fn datapath_obligation(
    stage: &str,
    spec: &Expr,
    impl_k: &Expr,
    slot_ivs: &[Iv],
    producer_names: &[&str],
    widths: &BitWidths,
) -> Obligation {
    let kind = ObligationKind::StageDatapath {
        stage: stage.to_string(),
    };
    let n_spec = normalize(spec);
    let n_impl = normalize(impl_k);
    if n_spec == n_impl {
        // Wide semantics agree by normal-form equality; eliminate the
        // accumulator truncations on the *implementation* term (the one
        // the hardware evaluates — reassociation in the normal form
        // would move intermediate truncations around).
        match trunc_verdict(impl_k, slot_ivs, widths) {
            TruncVerdict::Exact => Obligation {
                kind,
                status: ProofStatus::Proved(ProofMode::Exact),
                detail: "normal forms equal; every intermediate fits the accumulator".to_string(),
            },
            TruncVerdict::Modular => Obligation {
                kind,
                status: ProofStatus::Proved(ProofMode::Modular),
                detail: format!(
                    "normal forms equal; ring congruence mod 2^{} absorbs accumulator wrap",
                    widths.pixel_bits
                ),
            },
            TruncVerdict::Unknown => fuzz_datapath(
                kind,
                spec,
                impl_k,
                slot_ivs,
                producer_names,
                widths,
                "truncation not symbolically eliminable",
            ),
        }
    } else {
        fuzz_datapath(
            kind,
            spec,
            impl_k,
            slot_ivs,
            producer_names,
            widths,
            "kernels differ structurally after normalization",
        )
    }
}

fn fuzz_datapath(
    kind: ObligationKind,
    spec: &Expr,
    impl_k: &Expr,
    slot_ivs: &[Iv],
    producer_names: &[&str],
    widths: &BitWidths,
    why: &str,
) -> Obligation {
    let vars = tap_vars(&[spec, impl_k], slot_ivs);
    match sample_datapath(spec, impl_k, &vars, widths, FUZZ_SAMPLES, 0x5eed) {
        SampleOutcome::Agreed { samples } => Obligation {
            kind,
            status: ProofStatus::Fuzzed {
                code: codes::DATAPATH_FUZZED,
                samples,
            },
            detail: why.to_string(),
        },
        SampleOutcome::Mismatch {
            assignment,
            spec: s,
            impl_: iv,
        } => {
            let mut w = String::new();
            for (v, x) in &assignment {
                let name = producer_names.get(v.slot).copied().unwrap_or("?");
                let _ = write!(
                    w,
                    "{}({}, {}) = {x}; ",
                    name,
                    coord("x", v.dx),
                    coord("y", v.dy)
                );
            }
            let _ = write!(w, "spec = {s}, netlist = {iv}");
            Obligation {
                kind,
                status: ProofStatus::Refuted {
                    code: codes::DATAPATH_REFUTED,
                    witness: w,
                },
                detail: why.to_string(),
            }
        }
    }
}

fn coord(base: &str, off: i32) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{off}"),
        std::cmp::Ordering::Less => format!("{base}-{}", -off),
    }
}

/// Distinct `(dx, dy)` taps a kernel reads from one slot.
fn slot_taps(kernel: &Expr, slot: usize) -> Vec<(i32, i32)> {
    let mut taps = Vec::new();
    kernel.for_each_tap(&mut |s, dx, dy| {
        if s == slot && !taps.contains(&(dx, dy)) {
            taps.push((dx, dy));
        }
    });
    taps.sort_unstable_by_key(|&(dx, dy)| (dy, dx));
    taps
}

fn tap_obligation(
    dag: &Dag,
    net: &Netlist,
    consumer: StageId,
    edge: &NetEdge,
    impl_kernel: &Expr,
) -> Obligation {
    let cname = dag.stage(consumer).name().to_string();
    let kind = ObligationKind::TapDelivery {
        consumer: cname.clone(),
        slot: edge.slot,
    };
    let w = &edge.window;
    let geom = &net.geometry;
    let (fw, fh) = (geom.width as u64, geom.height as u64);
    let taps = slot_taps(impl_kernel, edge.slot);

    // 1. Tap coverage + SRA addressing range. The interpreter (and the
    //    RTL it models) computes the SRA row as `dy - lag` with
    //    saturating arithmetic and the column as `cols-1 + dx`; a tap
    //    outside `[lag, lag+height) x [dx_min, 0]` silently reads a
    //    clamped or stale cell.
    for &(dx, dy) in &taps {
        let in_rows = dy >= w.lag as i32 && dy < (w.lag + w.height) as i32;
        let in_cols = dx >= w.dx_min && dx <= 0;
        if !in_rows || !in_cols {
            return Obligation {
                kind,
                status: ProofStatus::Refuted {
                    code: codes::TAP_UNCOVERED,
                    witness: format!(
                        "tap ({}, {}) outside window rows [{}, {}] x cols [{}, 0]",
                        coord("x", dx),
                        coord("y", dy),
                        w.lag,
                        w.lag + w.height - 1,
                        w.dx_min
                    ),
                },
                detail: "kernel tap not covered by the edge window / SRA".to_string(),
            };
        }
    }

    // 2. SRA shape: the top-level array this edge loads into and the
    //    stage module port it feeds must both be sized from this window.
    let want = sra_cells(w);
    let sanitized: String = cname
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let sra_name = format!("sra_{}_{}", sanitized, edge.slot);
    let top_ok = net
        .top_module()
        .net(&sra_name)
        .is_some_and(|n| n.array == Some(want));
    let port_ok = net.stage_module(consumer.index()).is_some_and(|m| {
        m.net(&format!("win{}", edge.slot))
            .is_some_and(|n| n.array == Some(want))
    });
    let window_ok = net
        .stage_module(consumer.index())
        .and_then(|m| m.stage_payload())
        .is_some_and(|p| p.windows.get(edge.slot) == Some(w));
    if !top_ok || !port_ok || !window_ok {
        return Obligation {
            kind,
            status: ProofStatus::Refuted {
                code: codes::TAP_UNCOVERED,
                witness: format!(
                    "`{sra_name}` / `win{}` not sized as {} cells from window {:?}",
                    edge.slot, want, w
                ),
            },
            detail: "declared SRA storage disagrees with the edge window".to_string(),
        };
    }

    // Start cycles: a missing enable window was already refuted as a
    // structure obligation for the consumer; the producer may be an
    // input stage, which always has one.
    let (Some((sc, _)), Some((sp, _))) = (
        net.enable_window(consumer.index()),
        net.enable_window(edge.producer),
    ) else {
        return Obligation {
            kind,
            status: ProofStatus::Refuted {
                code: codes::CERT_UNSTATABLE,
                witness: format!(
                    "no start cycle for stages {} -> {}",
                    edge.producer,
                    consumer.index()
                ),
            },
            detail: "schedule enables missing from the netlist".to_string(),
        };
    };

    // 3/4. Freshness and no-clobber, per distinct row offset, measured
    //    in the producer's row period `P_p = pcy*W` (plain `W` for
    //    rate-1). A load at consumer edge-active cycle
    //    `t = S_c + y*W + xp*pcx` fetches producer row
    //    `r = min(y/pcy + dy, ph-1)`, written at `S_p + r*P_p + xp*pcx`
    //    and committed at its *end* (reads strictly see earlier cycles):
    //      fresh    <=>  S_c - S_p >= P_p*min(dy, ph-1) + 1   (worst y=0)
    //    The rotating buffer reuses row r's slot for row r+R; the
    //    overwrite lands at `S_p + (r+R)*P_p + xp*pcx`, and a same-cycle
    //    read still sees the old value (read phase precedes write
    //    phase). An upsample reader (consumer row period `P_c < P_p`)
    //    re-reads row r for `P_p - P_c` base cycles past the rate-1
    //    model's last access, so the slack shrinks by that tail:
    //      intact   <=>  S_c - S_p <= (dy+R)*P_p - max(0, P_p - P_c)
    //                    when dy+R <= ph-1
    //    (rows clamped to ph-1 are never overwritten: row ph-1+R is
    //    never written).
    let (pcx_scale, pcy_scale) = {
        let s = &net.stages[edge.producer];
        (s.scale_x, s.scale_y)
    };
    let _ = pcx_scale; // columns cancel exactly in both inequalities
    let ccy_scale = net.stages[consumer.index()].scale_y;
    let pp = pcy_scale * fw;
    let ph = fh / pcy_scale.max(1);
    let extra = pp.saturating_sub(ccy_scale * fw);
    let storage = net
        .buffer_of_stage(edge.producer)
        .map(|(_, b)| b.storage_rows as u64);
    let dys: Vec<u64> = {
        let mut v: Vec<u64> = taps.iter().map(|&(_, dy)| dy.max(0) as u64).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let lead = sc as i128 - sp as i128;
    for &dy in &dys {
        let need = pp as i128 * dy.min(ph - 1) as i128 + 1;
        if lead < need {
            return Obligation {
                kind,
                status: ProofStatus::Refuted {
                    code: codes::TAP_STALE,
                    witness: format!(
                        "start lead {lead} < {need}: row y+{dy} is read before the producer \
                         commits it (first stale read at consumer cycle {sc})"
                    ),
                },
                detail: "schedule violates write-before-read freshness".to_string(),
            };
        }
        if let Some(rows) = storage {
            if dy + rows < ph {
                let limit = (dy + rows) as i128 * pp as i128 - extra as i128;
                if lead > limit {
                    return Obligation {
                        kind,
                        status: ProofStatus::Refuted {
                            code: codes::TAP_CLOBBERED,
                            witness: format!(
                                "start lead {lead} > {limit}: {rows}-row buffer rotates row \
                                 y+{dy} away before the consumer reads it"
                            ),
                        },
                        detail: "buffer rotation clobbers a live row".to_string(),
                    };
                }
            }
        }
    }

    Obligation {
        kind,
        status: ProofStatus::Proved(ProofMode::Structural),
        detail: format!(
            "{} taps delivered: coverage, SRA shape, freshness (lead {lead} >= {}), rotation",
            taps.len(),
            pp * dys.last().map(|&d| d.min(ph - 1)).unwrap_or(0) + 1
        ),
    }
}

fn gate_obligation(
    net: &Netlist,
    gate: &imagen_rtl::BufferGate,
    producer: usize,
    pname: String,
) -> Obligation {
    let kind = ObligationKind::GateLiveness { stage: pname };
    let fw = net.geometry.width as u64;
    // Every consumer edge of this buffer reads it once per enabled
    // consumer cycle; a gated-off read loads 0 into the SRA. The load
    // at consumer column `x` is *fetched* later only if some tap can
    // reach its cell: with dmax = max dx and dmin = min dx over the
    // slot's taps, the load at column x is consumed iff
    // `x <= W-1+dmax` (a tap shifts onto it before the row ends) or
    // `x == 0 && dmin < 0` (the left-clamp path replays column 0).
    // Uncovered-but-unfetched loads are harmless — reported as a
    // bounded-reasoning caveat, not a refutation.
    let mut unfetched_gap = false;
    for e in net.edges.iter().filter(|e| e.producer == producer) {
        let Some(kernel) = net.stage_kernel(e.consumer) else {
            continue;
        };
        let taps = slot_taps(kernel, e.slot);
        if taps.is_empty() {
            continue;
        }
        let dmax = taps.iter().map(|&(dx, _)| dx).max().unwrap_or(0);
        let dmin = taps.iter().map(|&(dx, _)| dx).min().unwrap_or(0);
        let Some((sc, end)) = net.enable_window(e.consumer) else {
            continue;
        };
        // Multirate edges only load on their edge-active cadence (once
        // per consumer-active row, at every producer-grid column); other
        // cycles carry no load and cannot be starved by the gate.
        let ccy = net.stages[e.consumer].scale_y;
        let pcx = net.stages[e.producer].scale_x;
        let pw = fw / pcx.max(1);
        // Uncovered cycles of [sc, end): before the gate opens and
        // after it closes.
        let gaps = [
            (sc, gate.read_start.clamp(sc, end)),
            (gate.read_end.clamp(sc, end), end),
        ];
        for (lo, hi) in gaps {
            for t in lo..hi {
                let k = t - sc;
                let (y, x) = (k / fw, k % fw);
                if y % ccy != 0 || x % pcx != 0 {
                    continue;
                }
                let x = x / pcx;
                let fetched = (x as i64) <= (pw as i64 - 1 + dmax as i64) || (x == 0 && dmin < 0);
                if fetched {
                    let cname = net
                        .stages
                        .iter()
                        .find(|s| s.index == e.consumer)
                        .map(|s| s.name.clone())
                        .unwrap_or_default();
                    return Obligation {
                        kind,
                        status: ProofStatus::Refuted {
                            code: codes::GATE_DEAD,
                            witness: format!(
                                "cycle {t}: `{cname}` slot {} loads column {x} with the gate \
                                 off ([{}, {})), and a tap fetches that cell",
                                e.slot, gate.read_start, gate.read_end
                            ),
                        },
                        detail: "clock gate turns the read port off under a live load".to_string(),
                    };
                }
                unfetched_gap = true;
            }
        }
    }
    if unfetched_gap {
        Obligation {
            kind,
            status: ProofStatus::Fuzzed {
                code: codes::GATE_UNFETCHED,
                samples: 0,
            },
            detail: "gate leaves some loads uncovered, but bounded enumeration shows no tap \
                     ever fetches them"
                .to_string(),
        }
    } else {
        Obligation {
            kind,
            status: ProofStatus::Proved(ProofMode::Structural),
            detail: format!(
                "gate [{}, {}) covers every fetched load of every consumer",
                gate.read_start, gate.read_end
            ),
        }
    }
}
