//! # imagen-analysis
//!
//! Multi-pass static analyzer for ImaGen pipelines. Where the rest of
//! the workspace proves correctness *dynamically* (golden-vs-netlist
//! differentials, no-panic fuzzing), this crate decides the same
//! properties *statically* — the premise of the source paper is that
//! memory and compute structure are decidable from the DAG and the ILP
//! schedule alone, before a single frame is simulated.
//!
//! Four pass families hang off one [`analyze`] entry point:
//!
//! 1. **DSL lints** (`W01xx`) — unused stages and inputs, stages with no
//!    path to the sink, taps far outside the usual stencil window,
//!    constant-foldable subexpressions. These run on the AST, *before*
//!    lowering, because the lowerer rejects dead stages outright.
//! 2. **Width & overflow dataflow** (`W02xx`/`N02xx`/`E02xx`) — interval
//!    inference over [`imagen_ir::Expr`] kernels propagated through the
//!    DAG, flagging computations that can exceed the accumulator width
//!    or truncate at the output register. Programs this pass certifies
//!    are guaranteed (and differentially tested) to produce identical
//!    frames on the hardware 16/32 and widened 64/64 datapaths.
//! 3. **Schedule invariants** (`W04xx`/`E04xx`) — an independent
//!    re-derivation that lints any [`imagen_schedule::Plan`] (including
//!    hand-edited ones) against the dependency/contention constraint
//!    system, sync groups, buffer sizing and port discipline, without
//!    re-running the solver.
//! 4. **Netlist lints** (`W03xx`/`E03xx`) — the accumulating structural
//!    pass ([`imagen_rtl::verify_all`]) plus dead nets, dead modules,
//!    unread SRAM read ports, combinational cycles and enable-domain
//!    consistency.
//! 5. **Translation validation** (`E05xx`/`W05xx`) — [`certify_netlist`]
//!    symbolically proves, per compile, that every stage's netlist
//!    datapath computes the lowered DSL kernel modulo declared width
//!    truncation, and that the ILP schedule plus line-buffer/SRA
//!    addressing delivers exactly the taps each kernel consumes. The
//!    result is a [`Certificate`] of per-stage proof obligations
//!    (proved / refuted-with-witness / fuzzed fallback), exposed as
//!    `imagen certify` and `imagen lint --prove`.
//!
//! Diagnostics carry a stable code, a severity and a locus, render as
//! one-line text, and are serialized to JSON by the `imagen lint`
//! driver in the CLI crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsl_lint;
mod equiv;
mod netlist_lint;
mod sched_lint;
mod symex;
mod width;

pub use equiv::{
    certify_dag, certify_dag_styled, certify_netlist, Certificate, Obligation, ObligationKind,
    ProofMode, ProofStatus,
};
pub use netlist_lint::lint_netlist;
pub use sched_lint::lint_plan;
pub use width::MAX_TAP_REACH;

use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::BitWidths;
use imagen_schedule::ScheduleOptions;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational: worth knowing, never gates anything.
    Note,
    /// Probable mistake: gates `--deny warnings`.
    Warning,
    /// Definite problem: the pipeline is broken or unanalyzable.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered text and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Where a diagnostic points.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Locus {
    /// No specific location (whole-pipeline diagnostics).
    None,
    /// A source position in the DSL text.
    Source {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
    },
    /// A pipeline stage, by name.
    Stage(String),
    /// A net inside a netlist module.
    Net {
        /// Module name.
        module: String,
        /// Net name.
        net: String,
    },
    /// A line buffer, by its producer stage index.
    Buffer {
        /// Producer stage index.
        stage: usize,
    },
}

/// One analyzer finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable code (`W0101`, `E0301`, ...).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable, single-line message.
    pub message: String,
    /// Location.
    pub locus: Locus,
}

impl Diagnostic {
    /// Builds a diagnostic with no locus.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            locus: Locus::None,
        }
    }

    /// Replaces the locus.
    pub fn at(mut self, locus: Locus) -> Diagnostic {
        self.locus = locus;
        self
    }

    /// Renders the diagnostic as one line of text, e.g.
    /// `warning[W0101]: stage `dead` is never used (line 2, col 1)`.
    pub fn render(&self) -> String {
        let mut s = format!("{}[{}]: {}", self.severity.label(), self.code, self.message);
        if let Locus::Source { line, col } = self.locus {
            s.push_str(&format!(" (line {line}, col {col})"));
        }
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Analyzer configuration: the hardware context the pipeline is checked
/// against.
#[derive(Clone, Debug)]
pub struct AnalysisOptions {
    /// Frame geometry.
    pub geom: ImageGeometry,
    /// Memory specification (backend, ports, coalescing).
    pub spec: MemorySpec,
    /// Datapath widths of the netlist being certified.
    pub widths: BitWidths,
    /// Inclusive value range of every input pixel. The default `[0, 127]`
    /// matches the 7-bit noise frames the differential test beds use;
    /// widen it (`--input-range`) to certify against hotter inputs.
    pub input_range: (i64, i64),
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            geom: ImageGeometry {
                width: 64,
                height: 48,
                pixel_bits: 16,
            },
            spec: MemorySpec::new(MemBackend::Asic { block_bits: 32768 }, 2),
            widths: BitWidths::default(),
            input_range: (0, 127),
        }
    }
}

/// The outcome of an analysis: all diagnostics, in pass order.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Every finding, ordered DSL → width → schedule → netlist.
    pub diagnostics: Vec<Diagnostic>,
    /// Stages analyzed (0 when the front end failed).
    pub stages: usize,
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of note-severity diagnostics.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when the report carries no errors and no warnings (notes are
    /// allowed — a clean pipeline may still truncate deliberately).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    /// True when the *width pass* found nothing at all: the pipeline is
    /// certified overflow- and truncation-free, so the 16/32 and 64/64
    /// interpretations are guaranteed to agree (differentially tested).
    pub fn certified_overflow_free(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| matches!(d.code, "W0201" | "N0202" | "E0203"))
    }
}

/// Analyzes DSL source text through every pass family.
///
/// Later families are skipped when an earlier one fails hard: a parse
/// error yields only `E0001`; a lowering error yields the DSL lints
/// plus `E0002`; a planning error yields everything up to `E0003`.
pub fn analyze(name: &str, src: &str, opts: &AnalysisOptions) -> AnalysisReport {
    let mut report = AnalysisReport::default();

    let program = match imagen_dsl::parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            let pos = e.pos();
            report.diagnostics.push(
                Diagnostic::new(codes::PARSE, Severity::Error, e.to_string()).at(Locus::Source {
                    line: pos.line,
                    col: pos.col,
                }),
            );
            return report;
        }
    };

    report.diagnostics.extend(dsl_lint::lint_program(&program, &opts.geom));

    let dag = match imagen_dsl::lower(name, &program) {
        Ok(dag) => dag,
        Err(e) => {
            let locus = match e.pos() {
                Some(p) => Locus::Source {
                    line: p.line,
                    col: p.col,
                },
                None => Locus::None,
            };
            report
                .diagnostics
                .push(Diagnostic::new(codes::LOWER, Severity::Error, e.to_string()).at(locus));
            return report;
        }
    };

    report.stages = dag.num_stages();
    report.diagnostics.extend(width::lint_dag(&dag, opts));
    analyze_back_end(&dag, opts, &mut report);
    report
}

/// Analyzes an already-lowered DAG (width, schedule and netlist passes;
/// DSL lints need the AST and are skipped).
pub fn analyze_dag(dag: &imagen_ir::Dag, opts: &AnalysisOptions) -> AnalysisReport {
    let mut report = AnalysisReport {
        stages: dag.num_stages(),
        ..AnalysisReport::default()
    };
    report.diagnostics.extend(width::lint_dag(dag, opts));
    analyze_back_end(dag, opts, &mut report);
    report
}

/// The cheap front half of [`analyze`]: parse, DSL lints, lowering and
/// the width/overflow dataflow — no scheduling, no netlist. This is the
/// admission pre-check the batch compile server runs per request.
pub fn front_lints(name: &str, src: &str, opts: &AnalysisOptions) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let program = match imagen_dsl::parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            let pos = e.pos();
            report.diagnostics.push(
                Diagnostic::new(codes::PARSE, Severity::Error, e.to_string()).at(Locus::Source {
                    line: pos.line,
                    col: pos.col,
                }),
            );
            return report;
        }
    };
    report.diagnostics.extend(dsl_lint::lint_program(&program, &opts.geom));
    let dag = match imagen_dsl::lower(name, &program) {
        Ok(dag) => dag,
        Err(e) => {
            let locus = match e.pos() {
                Some(p) => Locus::Source {
                    line: p.line,
                    col: p.col,
                },
                None => Locus::None,
            };
            report
                .diagnostics
                .push(Diagnostic::new(codes::LOWER, Severity::Error, e.to_string()).at(locus));
            return report;
        }
    };
    report.stages = dag.num_stages();
    report.diagnostics.extend(width::lint_dag(&dag, opts));
    report
}

/// Schedule + netlist passes, shared by [`analyze`] and [`analyze_dag`].
fn analyze_back_end(dag: &imagen_ir::Dag, opts: &AnalysisOptions, report: &mut AnalysisReport) {
    let plan = match imagen_schedule::plan_design(
        dag,
        &opts.geom,
        &opts.spec,
        ScheduleOptions::default(),
        DesignStyle::Ours,
    ) {
        Ok(plan) => plan,
        Err(e) => {
            report
                .diagnostics
                .push(Diagnostic::new(codes::PLAN, Severity::Error, e.to_string()));
            return;
        }
    };
    report
        .diagnostics
        .extend(sched_lint::lint_plan(&plan, &opts.geom, &opts.spec));
    let net = imagen_rtl::build_netlist(&plan.dag, &plan.design, &opts.widths);
    report
        .diagnostics
        .extend(netlist_lint::lint_netlist(&net, opts));
}

/// The diagnostic code table. One constant per code keeps the codes
/// greppable and the passes honest about which they emit.
pub mod codes {
    /// Syntax error from the DSL parser.
    pub const PARSE: &str = "E0001";
    /// Name-resolution or structural error from the DSL lowerer.
    pub const LOWER: &str = "E0002";
    /// The scheduler/planner rejected the pipeline.
    pub const PLAN: &str = "E0003";

    /// A non-output stage is never read by any later stage.
    pub const UNUSED_STAGE: &str = "W0101";
    /// A stage is read, but no path from it reaches an output.
    pub const NO_PATH_TO_SINK: &str = "W0102";
    /// A declared input is never read.
    pub const UNUSED_INPUT: &str = "W0103";
    /// A tap offset exceeds [`crate::MAX_TAP_REACH`] — almost always a
    /// typo, and each row of reach costs a line-buffer row.
    pub const TAP_REACH: &str = "W0104";
    /// A non-trivial subexpression always evaluates to the same value.
    pub const CONST_FOLD: &str = "W0105";
    /// A rate modifier's cumulative scale does not divide the frame
    /// extents, so the planner will reject the geometry.
    pub const RATE_INDIVISIBLE: &str = "W0106";
    /// One kernel taps producers sitting at different cumulative scales;
    /// the lowerer rejects this shape.
    pub const RATE_MISMATCH: &str = "W0107";

    /// A kernel node's value interval can exceed the accumulator range.
    pub const ACC_OVERFLOW: &str = "W0201";
    /// A stage's output interval truncates at the output register.
    pub const OUT_TRUNCATES: &str = "N0202";
    /// The netlist's declared widths disagree with the analysis widths.
    pub const WIDTH_MISMATCH: &str = "E0203";

    /// Structural netlist errors ([`imagen_rtl::RtlError`] variants), in
    /// declaration order.
    pub const RTL_STRUCTURAL: [&str; 10] = [
        "E0301", "E0302", "E0303", "E0304", "E0305", "E0306", "E0307", "E0308", "E0309", "E0310",
    ];
    /// A non-port net is driven but never read.
    pub const DEAD_NET: &str = "W0311";
    /// A stage or line-buffer module is never instantiated.
    pub const DEAD_MODULE: &str = "W0312";
    /// An SRAM instance leaves every read-data port open.
    pub const UNREAD_SRAM: &str = "W0313";
    /// A combinational cycle threads through a net.
    pub const COMB_CYCLE: &str = "E0314";
    /// A stage or buffer enable is not driven by its scheduled stage
    /// enable.
    pub const ENABLE_DOMAIN: &str = "W0315";

    /// The plan's vectors disagree in length with the DAG.
    pub const PLAN_SHAPE: &str = "E0401";
    /// The schedule violates the re-derived constraint system.
    pub const CONSTRAINTS: &str = "E0402";
    /// Stages in one sync group have different start cycles.
    pub const SYNC_GROUP: &str = "E0403";
    /// A buffer holds fewer rows than the schedule requires.
    pub const BUFFER_UNDERSIZED: &str = "E0404";
    /// A buffer holds more rows than the schedule requires.
    pub const BUFFER_OVERSIZED: &str = "W0405";
    /// An absolute-row port-discipline violation.
    pub const PORT_ABSOLUTE: &str = "E0406";
    /// A physical (rotation-aliasing) port-discipline violation.
    pub const PORT_PHYSICAL: &str = "E0407";
    /// The design's start cycles disagree with the schedule's.
    pub const START_DRIFT: &str = "W0408";

    /// Translation validation (`imagen certify`): a stage datapath was
    /// refuted against its lowered DSL kernel, with a concrete tap
    /// assignment as witness.
    pub const DATAPATH_REFUTED: &str = "E0501";
    /// A stage datapath obligation was not symbolically decidable and
    /// fell back to directed differential sampling (which agreed).
    pub const DATAPATH_FUZZED: &str = "W0502";
    /// A kernel tap is not covered by its edge window / SRA storage.
    pub const TAP_UNCOVERED: &str = "E0503";
    /// The schedule reads a producer row before it is committed.
    pub const TAP_STALE: &str = "E0504";
    /// Line-buffer rotation overwrites a row a consumer still reads.
    pub const TAP_CLOBBERED: &str = "E0505";
    /// A clock gate turns a buffer read port off under a load that a
    /// kernel tap later fetches.
    pub const GATE_DEAD: &str = "E0506";
    /// The netlist lacks the structure (stage module, kernel payload,
    /// schedule enables) the certificate needs; nothing is statable.
    pub const CERT_UNSTATABLE: &str = "E0507";
    /// The declared input range wraps in the input pixel register; the
    /// certificate holds for post-register values only.
    pub const INPUT_WRAPS: &str = "W0508";
    /// A gating obligation discharged by bounded enumeration: some
    /// loads are uncovered, but provably never fetched.
    pub const GATE_UNFETCHED: &str = "W0509";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_are_e0001_with_span() {
        let r = analyze(
            "t",
            "input raw\noutput o = im(x,y) raw(x,y) end",
            &Default::default(),
        );
        assert_eq!(r.diagnostics.len(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, codes::PARSE);
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(d.locus, Locus::Source { .. }), "{:?}", d.locus);
        assert_eq!(r.errors(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_pipeline_has_no_diagnostics() {
        let r = analyze(
            "blur",
            "input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y)) / 4 end",
            &Default::default(),
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.is_clean());
        assert!(r.certified_overflow_free());
        assert_eq!(r.stages, 2);
    }

    #[test]
    fn analyze_dag_matches_analyze_back_half() {
        let src = "input a; output b = im(x,y) a(x,y) * a(x,y) * a(x,y) end";
        let dag = imagen_dsl::compile("t", src).unwrap();
        let full = analyze("t", src, &Default::default());
        let back = analyze_dag(&dag, &Default::default());
        assert_eq!(full.diagnostics, back.diagnostics);
    }

    #[test]
    fn front_lints_stop_before_planning() {
        // A pipeline the planner would reject (if at all) is still width-
        // checked; front_lints never runs the solver, so a clean program
        // reports clean quickly.
        let r = front_lints(
            "t",
            "input a; output b = im(x,y) a(x,y) << 9 end",
            &Default::default(),
        );
        assert_eq!(r.errors(), 0);
        assert_eq!(r.notes(), 1, "{:?}", r.diagnostics);
        assert!(!r.certified_overflow_free());
    }

    #[test]
    fn render_includes_code_and_span() {
        let d = Diagnostic::new(
            codes::UNUSED_STAGE,
            Severity::Warning,
            "stage `x` is never used",
        )
        .at(Locus::Source { line: 3, col: 7 });
        assert_eq!(
            d.render(),
            "warning[W0101]: stage `x` is never used (line 3, col 7)"
        );
        assert_eq!(d.to_string(), d.render());
    }
}
