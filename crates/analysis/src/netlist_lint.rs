//! Netlist lints: structural diagnostics over the typed RTL IR.
//!
//! Builds on [`imagen_rtl::verify_all`] (every structural error becomes an
//! `E03xx` diagnostic) and adds the semantic passes the structural
//! verifier cannot express: dead nets and dead modules, SRAM instances
//! whose read ports are all left open, combinational cycles, and
//! enable-domain consistency between the top-level schedule comparators
//! and the instances they are supposed to gate.
//!
//! The dead-net and combinational-cycle passes need to know what each
//! [`Item::Assign`] *reads*, which the netlist does not record (the
//! right-hand sides live in the emitter and the interpreter, keyed by
//! [`ModuleKind`]). The read-sets are therefore mirrored here per module
//! kind, and the `generated_netlists_are_clean_for_all_algorithms` test
//! pins them against every Tbl. 3 pipeline: a builder change that adds a
//! net or a read this table misses shows up as a spurious `W0311`.

use crate::{codes, AnalysisOptions, Diagnostic, Locus, Severity};
use imagen_rtl::{
    verify_all, Conn, Dir, Instance, Item, Module, ModuleKind, NetStage, Netlist, RtlError,
};
use std::collections::{HashMap, HashSet};

/// Runs every netlist lint, structural verification included.
pub fn lint_netlist(net: &Netlist, opts: &AnalysisOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // E0301..E0310 — the accumulating structural verifier.
    for e in &verify_all(net).errors {
        diags.push(structural_diag(e));
    }

    // E0203 — the netlist's bit widths must agree with what the analysis
    // (and the width-dataflow certification) assumed.
    width_cross_check(net, opts, &mut diags);

    let by_name: HashMap<&str, &Module> =
        net.modules.iter().map(|m| (m.name.as_str(), m)).collect();

    let mut instantiated: HashSet<&str> = HashSet::new();
    for module in &net.modules {
        for item in &module.items {
            if let Item::Inst(inst) = item {
                instantiated.insert(inst.module.as_str());
            }
        }
    }

    for module in &net.modules {
        lint_module(net, module, &by_name, &mut diags);
    }

    // W0312 — stage/line-buffer modules nothing instantiates. The SRAM
    // primitives are exempt: the builder always defines both the 1p and
    // the 2p macro even when only one flavor is placed.
    for module in &net.modules {
        if matches!(
            module.kind,
            ModuleKind::Stage(_) | ModuleKind::LineBuffer(_)
        ) && !instantiated.contains(module.name.as_str())
        {
            diags.push(Diagnostic::new(
                codes::DEAD_MODULE,
                Severity::Warning,
                format!("module `{}` is never instantiated", module.name),
            ));
        }
    }

    diags
}

/// Maps an accumulated structural error onto its stable diagnostic code.
fn structural_diag(e: &RtlError) -> Diagnostic {
    let index = match e {
        RtlError::DuplicateModule { .. } => 0,
        RtlError::UndefinedModule { .. } => 1,
        RtlError::DuplicateSignal { .. } => 2,
        RtlError::UnknownPort { .. } => 3,
        RtlError::UnconnectedInput { .. } => 4,
        RtlError::WidthMismatch { .. } => 5,
        RtlError::UndrivenNet { .. } => 6,
        RtlError::MultipleDrivers { .. } => 7,
        RtlError::UnknownNet { .. } => 8,
        RtlError::VectorShape { .. } => 9,
    };
    let locus = match e {
        RtlError::DuplicateSignal { name, within } => Locus::Net {
            module: within.clone(),
            net: name.clone(),
        },
        RtlError::UndrivenNet { net, within }
        | RtlError::MultipleDrivers { net, within }
        | RtlError::UnknownNet { net, within } => Locus::Net {
            module: within.clone(),
            net: net.clone(),
        },
        _ => Locus::None,
    };
    Diagnostic::new(codes::RTL_STRUCTURAL[index], Severity::Error, e.to_string()).at(locus)
}

/// E0203 — netlist widths vs the analysis options, and the per-stage
/// result/output nets vs the netlist's own header.
fn width_cross_check(net: &Netlist, opts: &AnalysisOptions, diags: &mut Vec<Diagnostic>) {
    let w = &net.widths;
    if w.pixel_bits != opts.widths.pixel_bits || w.acc_bits != opts.widths.acc_bits {
        diags.push(Diagnostic::new(
            codes::WIDTH_MISMATCH,
            Severity::Error,
            format!(
                "netlist carries {}/{}-bit pixel/accumulator widths but the analysis assumed {}/{}",
                w.pixel_bits, w.acc_bits, opts.widths.pixel_bits, opts.widths.acc_bits
            ),
        ));
    }
    for module in &net.modules {
        if !matches!(module.kind, ModuleKind::Stage(_)) {
            continue;
        }
        for (name, want, role) in [
            ("result", w.acc_bits, "accumulator"),
            ("pixel_out", w.pixel_bits, "pixel"),
        ] {
            if let Some(n) = module.net(name) {
                if n.width != want {
                    diags.push(
                        Diagnostic::new(
                            codes::WIDTH_MISMATCH,
                            Severity::Error,
                            format!(
                                "net `{name}` in `{}` is {} bits, not the netlist's {want}-bit {role} width",
                                module.name, n.width
                            ),
                        )
                        .at(Locus::Net {
                            module: module.name.clone(),
                            net: name.to_string(),
                        }),
                    );
                }
            }
        }
    }
}

/// Per-module lints: W0311 dead nets, W0313 unread SRAM instances,
/// E0314 combinational cycles, W0315 enable-domain consistency.
fn lint_module(
    net: &Netlist,
    module: &Module,
    by_name: &HashMap<&str, &Module>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut reads: HashSet<String> = HashSet::new();
    // net -> nets it combinationally depends on (same cycle).
    let mut comb: HashMap<String, Vec<String>> = HashMap::new();

    for item in &module.items {
        match item {
            Item::Assign { net: driven } => {
                let deps = assign_reads(net, module, driven);
                reads.extend(deps.iter().cloned());
                comb.entry(driven.clone()).or_default().extend(deps);
            }
            Item::Register { net: driven } => {
                // Clocked: reads count, but no combinational edges.
                reads.extend(register_reads(module, driven));
            }
            Item::WindowLoad { sra, edge } => {
                reads.extend(windowload_reads(net, sra, *edge));
            }
            Item::Inst(inst) => {
                let target = by_name.get(inst.module.as_str()).copied();
                let (in_reads, comb_outs) = instance_io(module, inst, target);
                for out in comb_outs {
                    comb.entry(out)
                        .or_default()
                        .extend(in_reads.iter().cloned());
                }
                reads.extend(in_reads);

                if let Some(t) = target {
                    if matches!(t.kind, ModuleKind::SramPrimitive { .. }) {
                        lint_sram_instance(module, inst, t, diags);
                    }
                    if matches!(module.kind, ModuleKind::Top) {
                        lint_enable_domain(net, module, inst, t, diags);
                    }
                }
            }
        }
    }

    // W0311 — declared non-port nets nothing in the module reads.
    for n in &module.nets {
        if n.port.is_none() && !reads.contains(&n.name) {
            diags.push(
                Diagnostic::new(
                    codes::DEAD_NET,
                    Severity::Warning,
                    format!("net `{}` in `{}` is never read", n.name, module.name),
                )
                .at(Locus::Net {
                    module: module.name.clone(),
                    net: n.name.clone(),
                }),
            );
        }
    }

    // E0314 — cycles in the combinational dependency graph. Registers,
    // window loads and registered instance outputs contribute no edges,
    // so any cycle found here is a genuine zero-delay loop.
    if let Some(through) = find_comb_cycle(&comb) {
        diags.push(
            Diagnostic::new(
                codes::COMB_CYCLE,
                Severity::Error,
                format!(
                    "combinational cycle through net `{through}` in module `{}`",
                    module.name
                ),
            )
            .at(Locus::Net {
                module: module.name.clone(),
                net: through,
            }),
        );
    }
}

/// W0313 — an SRAM macro whose read-data ports are all left open does
/// nothing but burn leakage power.
fn lint_sram_instance(
    module: &Module,
    inst: &Instance,
    target: &Module,
    diags: &mut Vec<Diagnostic>,
) {
    let mut outputs = 0usize;
    let mut open = 0usize;
    for (port, conn) in &inst.conns {
        if target
            .net(port)
            .is_some_and(|p| p.port == Some(Dir::Output))
        {
            outputs += 1;
            if matches!(conn, Conn::Open) {
                open += 1;
            }
        }
    }
    if outputs > 0 && open == outputs {
        diags.push(Diagnostic::new(
            codes::UNREAD_SRAM,
            Severity::Warning,
            format!(
                "SRAM instance `{}` in `{}` leaves every read port open",
                inst.name, module.name
            ),
        ));
    }
}

/// W0315 — every stage instance must be enabled by its own schedule
/// comparator, and every line buffer written under its writer stage's
/// enable; anything else silently decouples the datapath from the
/// schedule the solver proved.
fn lint_enable_domain(
    net: &Netlist,
    module: &Module,
    inst: &Instance,
    target: &Module,
    diags: &mut Vec<Diagnostic>,
) {
    let (gate_port, stage_index) = match &target.kind {
        ModuleKind::Stage(p) => ("en", Some(p.stage)),
        ModuleKind::LineBuffer(p) => ("wen", net.buffers.get(p.buffer).map(|b| b.stage)),
        _ => return,
    };
    let Some(stage) = stage_index.and_then(|i| stage_by_index(net, i)) else {
        return;
    };
    let want = format!("en_{}", stage.sanitized);
    let ok = inst
        .conns
        .iter()
        .any(|(p, c)| p == gate_port && matches!(c, Conn::Net(n) if *n == want));
    if !ok {
        diags.push(
            Diagnostic::new(
                codes::ENABLE_DOMAIN,
                Severity::Warning,
                format!(
                    "instance `{}` is not gated by its scheduled stage enable `{want}`",
                    inst.name
                ),
            )
            .at(Locus::Net {
                module: module.name.clone(),
                net: want,
            }),
        );
    }
}

fn stage_by_index(net: &Netlist, index: usize) -> Option<&NetStage> {
    net.stages.iter().find(|s| s.index == index)
}

fn stage_by_san<'a>(net: &'a Netlist, san: &str) -> Option<&'a NetStage> {
    net.stages.iter().find(|s| s.sanitized == san)
}

/// What a continuous assignment reads, keyed by module kind and driven
/// net — the mirror of the emitter's right-hand sides.
fn assign_reads(net: &Netlist, module: &Module, driven: &str) -> Vec<String> {
    match &module.kind {
        ModuleKind::Top => top_assign_reads(net, driven),
        ModuleKind::LineBuffer(_) => {
            let deps: &[&str] = match driven {
                "wphys" => &["wrow"],
                "rphys" => &["rrow"],
                "wblk" => &["wphys"],
                "rblk" => &["rphys"],
                "waddr" => &["wphys", "wcol"],
                "raddr" => &["rphys", "rcol"],
                "rdata" => &["rdata_blk", "rblk_q"],
                _ => &[],
            };
            deps.iter().map(|s| s.to_string()).collect()
        }
        ModuleKind::Stage(_) => {
            if driven == "result" {
                module
                    .ports()
                    .filter(|p| p.name.starts_with("win"))
                    .map(|p| p.name.clone())
                    .chain(std::iter::once("en".to_string()))
                    .collect()
            } else {
                Vec::new()
            }
        }
        ModuleKind::SramPrimitive { .. } => Vec::new(),
    }
}

fn top_assign_reads(net: &Netlist, driven: &str) -> Vec<String> {
    if driven == "frame_done" {
        return vec!["cycle".to_string()];
    }
    for prefix in ["en_", "k_"] {
        if let Some(s) = driven.strip_prefix(prefix) {
            if stage_by_san(net, s).is_some() {
                return vec!["cycle".to_string()];
            }
        }
    }
    for prefix in ["y_", "x_"] {
        if let Some(s) = driven.strip_prefix(prefix) {
            if stage_by_san(net, s).is_some() {
                return vec![format!("k_{s}")];
            }
        }
    }
    if let Some(k) = driven
        .strip_prefix("stream_out_")
        .and_then(|k| k.parse::<usize>().ok())
    {
        if let Some(s) = net.stages.iter().filter(|s| s.is_output).nth(k) {
            return vec![
                format!("out_{}", s.sanitized),
                format!("en_{}", s.sanitized),
            ];
        }
    }
    if let Some(s) = driven
        .strip_prefix("out_")
        .and_then(|s| stage_by_san(net, s))
    {
        if let Some(k) = s.input_stream {
            return vec![format!("stream_in_{k}"), format!("en_{}", s.sanitized)];
        }
    }
    Vec::new()
}

/// What a clocked register reads (for dead-net accounting only; clocked
/// items never feed the combinational cycle graph).
fn register_reads(module: &Module, driven: &str) -> Vec<String> {
    let deps: Vec<&str> = match &module.kind {
        ModuleKind::Top => match driven {
            "cycle" => vec!["rst", "cycle"],
            _ => Vec::new(),
        },
        ModuleKind::LineBuffer(_) => match driven {
            "rblk_q" => vec!["rblk"],
            _ => Vec::new(),
        },
        ModuleKind::Stage(_) => match driven {
            "pixel_out" => vec!["result", "en"],
            _ => Vec::new(),
        },
        ModuleKind::SramPrimitive { .. } => match driven {
            "mem" => {
                return module
                    .ports()
                    .filter(|p| p.port == Some(Dir::Input) && p.name != "clk")
                    .map(|p| p.name.clone())
                    .collect();
            }
            "rdata_a" => vec!["mem", "en_a", "addr_a"],
            "rdata_b" => vec!["mem", "en_b", "addr_b"],
            "rdata" => vec!["mem", "en", "addr"],
            _ => Vec::new(),
        },
    };
    deps.into_iter().map(|s| s.to_string()).collect()
}

/// What a window-load item reads: the consumer's control nets, the
/// producer's output pixel, and its own shift-register array.
fn windowload_reads(net: &Netlist, sra: &str, edge: usize) -> Vec<String> {
    let mut deps = vec![sra.to_string()];
    if let Some(e) = net.edges.get(edge) {
        if let (Some(p), Some(c)) = (
            stage_by_index(net, e.producer),
            stage_by_index(net, e.consumer),
        ) {
            deps.extend([
                format!("en_{}", c.sanitized),
                format!("x_{}", c.sanitized),
                format!("y_{}", c.sanitized),
                format!("out_{}", p.sanitized),
            ]);
        }
    }
    deps
}

/// Splits an instance's connections into the local nets its inputs read
/// and the local nets its *combinational* (non-registered) outputs drive.
fn instance_io(
    module: &Module,
    inst: &Instance,
    target: Option<&Module>,
) -> (HashSet<String>, Vec<String>) {
    let mut in_reads = HashSet::new();
    let mut comb_outs = Vec::new();
    for (port, conn) in &inst.conns {
        let port_net = target.and_then(|t| t.net(port));
        let is_output = port_net.is_some_and(|p| p.port == Some(Dir::Output));
        if is_output {
            if !port_net.is_some_and(|p| p.is_reg) {
                if let Conn::Net(n) | Conn::NetIndex(n, _) = conn {
                    comb_outs.push(n.clone());
                }
            }
            continue;
        }
        // Inputs — and, when the target is undefined, everything
        // (conservative: unknown direction counts as a read).
        match conn {
            Conn::Net(n) | Conn::NetIndex(n, _) => {
                in_reads.insert(n.clone());
            }
            Conn::Expr(expr) => {
                for tok in expr.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
                    if !tok.is_empty()
                        && !tok.starts_with(|c: char| c.is_ascii_digit())
                        && module.net(tok).is_some()
                    {
                        in_reads.insert(tok.to_string());
                    }
                }
            }
            Conn::Const(..) | Conn::Open => {}
        }
    }
    (in_reads, comb_outs)
}

/// Tri-color DFS over the combinational dependency graph; returns a net
/// on some zero-delay cycle, or `None`.
fn find_comb_cycle(comb: &HashMap<String, Vec<String>>) -> Option<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<&str, Color> = comb.keys().map(|k| (k.as_str(), Color::White)).collect();
    let mut roots: Vec<&String> = comb.keys().collect();
    roots.sort();
    for root in roots {
        if color[root.as_str()] != Color::White {
            continue;
        }
        // Explicit stack: (net, next-child index).
        let mut stack: Vec<(&str, usize)> = vec![(root.as_str(), 0)];
        color.insert(root.as_str(), Color::Grey);
        while let Some(frame) = stack.last_mut() {
            let node = frame.0;
            let deps = &comb[node];
            if frame.1 >= deps.len() {
                color.insert(node, Color::Black);
                stack.pop();
                continue;
            }
            let child = deps[frame.1].as_str();
            frame.1 += 1;
            match color.get(child) {
                Some(Color::Grey) => return Some(child.to_string()),
                Some(Color::White) => {
                    color.insert(child, Color::Grey);
                    stack.push((child, 0));
                }
                // Black, or a net with no combinational driver.
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::{Dag, Expr};
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_rtl::{build_netlist, BitWidths, Net};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn fixture() -> Netlist {
        let mut dag = Dag::new("fx");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                Expr::sum((0..3).map(|i| Expr::tap(0, 0, i - 1))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 16,
            height: 12,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2);
        let plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        build_netlist(&plan.dag, &plan.design, &BitWidths::default())
    }

    fn lint(net: &Netlist) -> Vec<Diagnostic> {
        lint_netlist(net, &AnalysisOptions::default())
    }

    fn codes_of(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|x| x.code).collect()
    }

    #[test]
    fn generated_netlist_is_clean() {
        let net = fixture();
        let d = lint(&net);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn generated_netlists_are_clean_for_all_algorithms() {
        let geom = ImageGeometry {
            width: 64,
            height: 48,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 32768 }, 2);
        for algo in imagen_algos::Algorithm::all() {
            let dag = algo.build();
            let plan = plan_design(
                &dag,
                &geom,
                &spec,
                ScheduleOptions::default(),
                DesignStyle::Ours,
            )
            .unwrap();
            let net = build_netlist(&plan.dag, &plan.design, &BitWidths::default());
            let d = lint(&net);
            assert!(d.is_empty(), "{}: {d:?}", algo.name());
        }
    }

    #[test]
    fn unreferenced_net_is_dead() {
        let mut net = fixture();
        let top = net.top;
        net.modules[top].nets.push(Net {
            name: "scratch".into(),
            width: 8,
            signed: false,
            array: None,
            is_reg: false,
            port: None,
        });
        net.modules[top].items.push(Item::Assign {
            net: "scratch".into(),
        });
        let d = lint(&net);
        assert!(codes_of(&d).contains(&codes::DEAD_NET), "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("scratch")));
    }

    #[test]
    fn uninstantiated_stage_module_is_dead() {
        let mut net = fixture();
        let stage = net
            .modules
            .iter()
            .find(|m| matches!(m.kind, ModuleKind::Stage(_)))
            .unwrap()
            .clone();
        let mut ghost = stage;
        ghost.name = "stage_ghost".into();
        net.modules.push(ghost);
        let d = lint(&net);
        assert!(codes_of(&d).contains(&codes::DEAD_MODULE), "{d:?}");
        // Both SRAM primitives exist but only one flavor is placed; the
        // unplaced one must NOT be reported.
        assert!(
            d.iter().all(|x| !x.message.contains("imagen_sram")),
            "{d:?}"
        );
    }

    #[test]
    fn sram_with_all_read_ports_open_is_flagged() {
        let mut net = fixture();
        let lb = net
            .modules
            .iter()
            .position(|m| matches!(m.kind, ModuleKind::LineBuffer(_)))
            .unwrap();
        for item in &mut net.modules[lb].items {
            if let Item::Inst(inst) = item {
                for (port, conn) in &mut inst.conns {
                    if port.starts_with("rdata") {
                        *conn = Conn::Open;
                    }
                }
                break;
            }
        }
        let d = lint(&net);
        assert!(codes_of(&d).contains(&codes::UNREAD_SRAM), "{d:?}");
    }

    #[test]
    fn combinational_loop_is_detected() {
        let mut net = fixture();
        let lb_name = net
            .modules
            .iter()
            .find(|m| matches!(m.kind, ModuleKind::LineBuffer(_)))
            .unwrap()
            .name
            .clone();
        let top = net.top;
        net.modules[top].nets.push(Net {
            name: "loop_a".into(),
            width: 16,
            signed: true,
            array: None,
            is_reg: false,
            port: None,
        });
        // The line buffer's `rdata` output is combinational, so wiring it
        // back into `wdata` is a zero-delay loop.
        net.modules[top].items.push(Item::Inst(Instance {
            module: lb_name,
            name: "u_loop".into(),
            conns: vec![
                ("clk".into(), Conn::Net("clk".into())),
                ("wen".into(), Conn::Const(1, 1)),
                ("wrow".into(), Conn::Const(0, 32)),
                ("wcol".into(), Conn::Const(0, 32)),
                ("wdata".into(), Conn::Net("loop_a".into())),
                ("ren".into(), Conn::Const(1, 1)),
                ("rrow".into(), Conn::Const(0, 32)),
                ("rcol".into(), Conn::Const(0, 32)),
                ("rdata".into(), Conn::Net("loop_a".into())),
            ],
        }));
        let d = lint(&net);
        assert!(codes_of(&d).contains(&codes::COMB_CYCLE), "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("loop_a")), "{d:?}");
    }

    #[test]
    fn stage_enable_from_wrong_domain_is_flagged() {
        let mut net = fixture();
        let top = net.top;
        for item in &mut net.modules[top].items {
            if let Item::Inst(inst) = item {
                if inst.module.starts_with("stage_") {
                    for (port, conn) in &mut inst.conns {
                        if port == "en" {
                            *conn = Conn::Const(1, 1);
                        }
                    }
                    break;
                }
            }
        }
        let d = lint(&net);
        assert!(codes_of(&d).contains(&codes::ENABLE_DOMAIN), "{d:?}");
    }

    #[test]
    fn width_drift_is_cross_checked() {
        let net = fixture();
        let opts = AnalysisOptions {
            widths: BitWidths::wide(),
            ..AnalysisOptions::default()
        };
        let d = lint_netlist(&net, &opts);
        assert!(codes_of(&d).contains(&codes::WIDTH_MISMATCH), "{d:?}");
    }

    #[test]
    fn structural_errors_map_onto_e03xx() {
        let mut net = fixture();
        let top = net.top;
        // Drop the frame_done driver: E0307 (UndrivenNet).
        net.modules[top]
            .items
            .retain(|i| !matches!(i, Item::Assign { net } if net == "frame_done"));
        let d = lint(&net);
        assert!(codes_of(&d).contains(&"E0307"), "{d:?}");
        assert!(d
            .iter()
            .any(|x| matches!(&x.locus, Locus::Net { net, .. } if net == "frame_done")));
    }
}
