//! Schedule invariant checker: lints any [`Plan`] — including one whose
//! schedule or design has been edited by hand — against the paper's
//! invariants *without re-running the solver*.
//!
//! The pass re-derives the full (unpruned) constraint system with
//! [`formulate`] and checks the plan's starts against it, re-derives the
//! Equ. 2 buffer sizing, verifies sync groups, and replays the exact
//! port-discipline checker at both absolute-row and physical (rotation
//! aliasing) granularity. Nothing here trusts the plan's own bookkeeping;
//! everything is recomputed from the DAG, the geometry and the memory
//! spec.

use crate::{codes, Diagnostic, Locus, Severity};
use imagen_mem::{ImageGeometry, MemorySpec};
use imagen_schedule::checker::{check_accesses, BufferLayout, ResolvedEntity};
use imagen_schedule::{
    formulate, resolve_entities, schedule_satisfies, size_buffers, FormulationOptions, Plan,
    SpecBufferParams,
};
use std::collections::HashMap;

/// Lints a plan against the schedule invariants.
pub fn lint_plan(plan: &Plan, geom: &ImageGeometry, spec: &MemorySpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dag = &plan.dag;
    let n = dag.num_stages();

    // E0401 — the plan's vectors must cover every stage; nothing else can
    // be checked against mis-shaped data.
    let mut shape_ok = true;
    for (what, len) in [
        ("schedule starts", plan.schedule.starts.len()),
        ("schedule buffer rows", plan.schedule.buffer_rows.len()),
        ("design start cycles", plan.design.start_cycles.len()),
    ] {
        if len != n {
            shape_ok = false;
            diags.push(Diagnostic::new(
                codes::PLAN_SHAPE,
                Severity::Error,
                format!("plan shape mismatch: {what} has {len} entries for {n} stages"),
            ));
        }
    }
    if !shape_ok {
        return diags;
    }
    let starts = &plan.schedule.starts;

    // E0402 — the starts must satisfy the re-derived dependency and
    // contention constraints (formulated without pruning, so the check is
    // independent of the solver's search-space reductions).
    let set = formulate(
        dag,
        geom.width,
        &SpecBufferParams { spec, geom },
        FormulationOptions { pruning: false },
    );
    let satisfies = schedule_satisfies(&set, starts);
    if !satisfies {
        diags.push(Diagnostic::new(
            codes::CONSTRAINTS,
            Severity::Error,
            "schedule violates the re-derived dependency/contention constraint system",
        ));
    }

    // E0403 — stages sharing a sync group must start together.
    let mut groups: HashMap<u32, Vec<(usize, i64)>> = HashMap::new();
    for (id, stage) in dag.stages() {
        if let Some(g) = stage.sync_group() {
            groups
                .entry(g)
                .or_default()
                .push((id.index(), starts[id.index()]));
        }
    }
    let mut group_ids: Vec<u32> = groups.keys().copied().collect();
    group_ids.sort_unstable();
    for g in group_ids {
        let members = &groups[&g];
        if members.iter().any(|&(_, s)| s != members[0].1) {
            let names: Vec<String> = members
                .iter()
                .map(|&(i, s)| {
                    format!(
                        "`{}`@{s}",
                        dag.stage(imagen_ir::StageId::from_index(i)).name()
                    )
                })
                .collect();
            diags.push(Diagnostic::new(
                codes::SYNC_GROUP,
                Severity::Error,
                format!(
                    "sync group {g} stages start at different cycles: {}",
                    names.join(", ")
                ),
            ));
        }
    }

    // The Equ. 2 re-derivation and the port replay both assume the
    // dependency constraints hold (consumer gaps >= 1); with E0402 on
    // record they would be meaningless (or panic in debug builds).
    if !satisfies {
        return diags;
    }

    // E0404 / W0405 — buffer rows vs the Equ. 2 re-derivation.
    let (need_rows, _) = size_buffers(dag, geom.width, starts);
    for (i, (&need, &have)) in need_rows.iter().zip(&plan.schedule.buffer_rows).enumerate() {
        if have == need {
            continue;
        }
        let stage = dag.stage(imagen_ir::StageId::from_index(i));
        let (code, sev, adjective) = if have < need {
            (codes::BUFFER_UNDERSIZED, Severity::Error, "fewer")
        } else {
            (codes::BUFFER_OVERSIZED, Severity::Warning, "more")
        };
        diags.push(
            Diagnostic::new(
                code,
                sev,
                format!(
                    "buffer of stage `{}` holds {have} rows, {adjective} than the {need} the schedule requires",
                    stage.name()
                ),
            )
            .at(Locus::Buffer { stage: i }),
        );
    }

    // W0408 — the design's mirrored start cycles must match the schedule.
    for (i, (&d, &s)) in plan.design.start_cycles.iter().zip(starts).enumerate() {
        if d != s as u64 {
            let stage = dag.stage(imagen_ir::StageId::from_index(i));
            diags.push(
                Diagnostic::new(
                    codes::START_DRIFT,
                    Severity::Warning,
                    format!(
                        "design start cycle of stage `{}` ({d}) differs from the schedule ({s})",
                        stage.name()
                    ),
                )
                .at(Locus::Stage(stage.name().to_string())),
            );
        }
    }

    // E0406 / E0407 — replay the exact port-discipline checker per
    // buffer, absolute then physical. Entities are resolved rate-aware:
    // every accessor of a multirate producer's buffer carries its cadence
    // (`row_div`/`col_div`/`row_active`) so the replay samples only the
    // base-clock cycles on which that accessor actually touches SRAM.
    let scales = dag.stage_scales();
    for p in dag.buffered_stages() {
        let stage_name = dag.stage(p).name().to_string();
        let ports = spec.ports_for(p.index());
        let entities: Vec<ResolvedEntity> = resolve_entities(dag, p, &scales, starts);
        if let Err(v) = check_accesses(
            geom.width,
            geom.height,
            geom.pixel_bits,
            &entities,
            ports,
            None,
        ) {
            diags.push(
                Diagnostic::new(
                    codes::PORT_ABSOLUTE,
                    Severity::Error,
                    format!("port discipline violated on buffer of stage `{stage_name}`: {v}"),
                )
                .at(Locus::Buffer { stage: p.index() }),
            );
            // Physical aliasing is a refinement of the absolute check;
            // reporting both for the same buffer is noise.
            continue;
        }
        let Some(b) = plan.design.buffers.iter().find(|b| b.stage == p.index()) else {
            diags.push(
                Diagnostic::new(
                    codes::PLAN_SHAPE,
                    Severity::Error,
                    format!("design is missing the buffer of stage `{stage_name}`"),
                )
                .at(Locus::Buffer { stage: p.index() }),
            );
            continue;
        };
        let layout = BufferLayout {
            phys_rows: b.phys_rows,
            rows_per_block: b.rows_per_block.max(1),
            blocks_per_row: b.blocks_per_row.max(1),
            block_bits: spec.backend().block_bits(),
        };
        if let Err(v) = check_accesses(
            geom.width,
            geom.height,
            geom.pixel_bits,
            &entities,
            ports,
            Some(&layout),
        ) {
            diags.push(
                Diagnostic::new(
                    codes::PORT_PHYSICAL,
                    Severity::Error,
                    format!(
                        "physical aliasing violates port discipline on buffer of stage `{stage_name}`: {v}"
                    ),
                )
                .at(Locus::Buffer { stage: p.index() }),
            );
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::{Dag, Expr};
    use imagen_mem::{DesignStyle, MemBackend};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn fixture() -> (Plan, ImageGeometry, MemorySpec) {
        let mut dag = Dag::new("s");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2);
        let plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (plan, geom, spec)
    }

    #[test]
    fn solver_plans_are_clean() {
        let (plan, geom, spec) = fixture();
        let d = lint_plan(&plan, &geom, &spec);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn shape_mismatch_stops_early() {
        let (mut plan, geom, spec) = fixture();
        plan.schedule.buffer_rows.pop();
        let d = lint_plan(&plan, &geom, &spec);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, codes::PLAN_SHAPE);
    }

    #[test]
    fn violated_dependency_is_reported_without_panicking() {
        let (mut plan, geom, spec) = fixture();
        // Consumer starts with its producer: the >= 1-cycle dependency
        // gap is gone. The sizing re-derivation must be skipped (it
        // would assert), leaving the constraint diagnostic.
        plan.schedule.starts[1] = plan.schedule.starts[0];
        let d = lint_plan(&plan, &geom, &spec);
        assert!(d.iter().any(|x| x.code == codes::CONSTRAINTS), "{d:?}");
        assert!(d.iter().all(|x| x.code != codes::BUFFER_UNDERSIZED));
    }

    #[test]
    fn hand_shrunk_buffer_is_undersized() {
        let (mut plan, geom, spec) = fixture();
        let p = plan
            .schedule
            .buffer_rows
            .iter()
            .position(|&r| r > 0)
            .unwrap();
        plan.schedule.buffer_rows[p] -= 1;
        let d = lint_plan(&plan, &geom, &spec);
        assert!(
            d.iter().any(|x| x.code == codes::BUFFER_UNDERSIZED),
            "{d:?}"
        );
    }

    #[test]
    fn hand_grown_buffer_is_oversized_warning() {
        let (mut plan, geom, spec) = fixture();
        let p = plan
            .schedule
            .buffer_rows
            .iter()
            .position(|&r| r > 0)
            .unwrap();
        plan.schedule.buffer_rows[p] += 2;
        let d = lint_plan(&plan, &geom, &spec);
        assert!(d.iter().any(|x| x.code == codes::BUFFER_OVERSIZED), "{d:?}");
        assert!(d.iter().all(|x| x.severity != Severity::Error), "{d:?}");
    }

    #[test]
    fn stale_design_start_cycles_drift() {
        let (mut plan, geom, spec) = fixture();
        plan.design.start_cycles[1] += 7;
        let d = lint_plan(&plan, &geom, &spec);
        assert!(d.iter().any(|x| x.code == codes::START_DRIFT), "{d:?}");
    }

    /// A blur → downsample(2,2) → upsample(2,2) pyramid on a frame both
    /// extents of which the scale divides — the multirate analogue of
    /// [`fixture`].
    fn multirate_fixture() -> (Plan, ImageGeometry, MemorySpec) {
        let mut dag = Dag::new("pyr");
        let raw = dag.add_input("raw");
        let blur = dag
            .add_stage(
                "blur",
                &[raw],
                Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            )
            .unwrap();
        let coarse = dag
            .add_stage_rated(
                "coarse",
                &[blur],
                Expr::tap(0, 0, 0),
                imagen_ir::Rate::Down { fx: 2, fy: 2 },
            )
            .unwrap();
        let recon = dag
            .add_stage_rated(
                "recon",
                &[coarse],
                Expr::tap(0, 0, 0),
                imagen_ir::Rate::Up { fx: 2, fy: 2 },
            )
            .unwrap();
        dag.mark_output(recon);
        let geom = ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2);
        let plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (plan, geom, spec)
    }

    #[test]
    fn multirate_solver_plans_are_clean() {
        // The rate-aware re-derivation accepts the solver's own multirate
        // plan: no E04xx (or any other) diagnostics.
        let (plan, geom, spec) = multirate_fixture();
        let d = lint_plan(&plan, &geom, &spec);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn multirate_shrunk_buffer_is_undersized() {
        // Corrupting a buffer's row count in the multirate plan must trip
        // the rate-aware sizing re-derivation, not slip past it.
        let (mut plan, geom, spec) = multirate_fixture();
        let p = plan
            .schedule
            .buffer_rows
            .iter()
            .position(|&r| r > 1)
            .unwrap_or_else(|| {
                plan.schedule
                    .buffer_rows
                    .iter()
                    .position(|&r| r > 0)
                    .unwrap()
            });
        plan.schedule.buffer_rows[p] -= 1;
        let d = lint_plan(&plan, &geom, &spec);
        assert!(
            d.iter().any(|x| x.code == codes::BUFFER_UNDERSIZED),
            "{d:?}"
        );
    }

    #[test]
    fn delayed_consumer_needs_resized_buffer() {
        let (mut plan, geom, spec) = fixture();
        // Push the consumer three full rows later without touching the
        // buffer: dependencies still hold, but Equ. 2 now wants a bigger
        // buffer and the design's mirror is stale.
        plan.schedule.starts[1] += 3 * geom.width as i64;
        let d = lint_plan(&plan, &geom, &spec);
        assert!(
            d.iter().any(|x| x.code == codes::BUFFER_UNDERSIZED),
            "{d:?}"
        );
        assert!(d.iter().any(|x| x.code == codes::START_DRIFT), "{d:?}");
    }
}
