//! Symbolic bit-vector evaluation over kernel expressions: the term
//! engine behind the translation-validation pass (`equiv`).
//!
//! Three mechanisms live here, all deterministic and solver-free:
//!
//! 1. **Term normalization** — a canonicalizing rewrite of
//!    [`imagen_ir::Expr`] that is exactly semantics-preserving under the
//!    wide (wrapping `i64`) evaluator: constant folding with
//!    `Expr::eval`'s own operator semantics, flattening and sorting of
//!    commutative chains (`+`, `*`, `min`, `max`), `a - b → a + (-b)`,
//!    double-negation elimination, and `a << k → a * 2^k` for constant
//!    in-range `k`. Two kernels with equal normal forms compute the
//!    same wide value on every input.
//! 2. **Truncation elimination** — an interval-refined proof that the
//!    fixed-width datapath evaluator ([`imagen_rtl::eval_acc`], which
//!    truncates *every* operation result to the accumulator width)
//!    agrees with the wide evaluator modulo the final output-register
//!    truncation. Each node is judged `exact` (its mathematical
//!    interval fits the signed accumulator range, so the truncation is
//!    the identity) or `congruent` (the node's value is congruent to
//!    the wide value modulo `2^pixel_bits`, which survives ring
//!    operations — add, sub, mul, neg, shift-left — because `trunc` to
//!    `acc >= pixel` bits preserves residues mod `2^pixel`). A kernel
//!    whose root is exact or congruent provably satisfies
//!    `trunc_pixel(eval_acc(k)) = trunc_pixel(eval_wide(k))` for all
//!    tap values inside the propagated intervals.
//! 3. **Directed differential sampling** — the fall-back for
//!    obligations the symbolic layer leaves unknown: deterministic
//!    (seeded splitmix64) evaluation of both sides on interval corners
//!    plus random interior points. A disagreement is a concrete
//!    refutation witness; agreement downgrades the obligation to
//!    "fuzzed", never to "proved".
//!
//! The intervals come from the same transfer functions as the width
//! lint (`width::node_iv`), so the proofs rest on machinery that is
//! already differentially tested against both evaluators.

use crate::width::{children, node_iv, signed_range, Iv};
use imagen_ir::{BinOp, Expr};
use imagen_rtl::{eval_acc, trunc, BitWidths};
use std::cmp::Ordering;

// ---------------------------------------------------------------------
// Term normalization
// ---------------------------------------------------------------------

/// Canonicalizes a kernel expression. The rewrite preserves
/// [`Expr::eval`]'s wrapping-`i64` semantics exactly (for *all* inputs,
/// not just in-range ones), so normal-form equality implies wide
/// semantic equality.
pub(crate) fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Tap { slot, dx, dy } => Expr::tap(*slot, *dx, *dy),
        Expr::Neg(a) => match normalize(a) {
            Expr::Const(c) => Expr::Const(c.wrapping_neg()),
            Expr::Neg(inner) => *inner,
            n => Expr::Neg(Box::new(n)),
        },
        Expr::Abs(a) => match normalize(a) {
            Expr::Const(c) => Expr::Const(c.wrapping_abs()),
            n => Expr::Abs(Box::new(n)),
        },
        Expr::Bin(op, a, b) => {
            let a = normalize(a);
            let b = normalize(b);
            match op {
                BinOp::Add => normalize_chain(BinOp::Add, vec![a, b]),
                // a - b = a + (-b) in wrapping arithmetic; folding into
                // the additive chain merges e.g. `x - x` to 0.
                BinOp::Sub => {
                    let nb = match b {
                        Expr::Const(c) => Expr::Const(c.wrapping_neg()),
                        Expr::Neg(inner) => *inner,
                        other => Expr::Neg(Box::new(other)),
                    };
                    normalize_chain(BinOp::Add, vec![a, nb])
                }
                BinOp::Mul => normalize_chain(BinOp::Mul, vec![a, b]),
                BinOp::Min => normalize_chain(BinOp::Min, vec![a, b]),
                BinOp::Max => normalize_chain(BinOp::Max, vec![a, b]),
                // a << k with constant k: Verilog <<< zeroes the result
                // for out-of-range amounts; in range it is a wrapping
                // multiply by 2^k, which merges with multiplicative
                // chains (so `x << 1` and `2 * x` normalize equal).
                BinOp::Shl => match b {
                    Expr::Const(k) if (0..64).contains(&k) => normalize_chain(
                        BinOp::Mul,
                        vec![a, Expr::Const(1i64.wrapping_shl(k as u32))],
                    ),
                    Expr::Const(_) => Expr::Const(0),
                    b => fold_or_rebuild(BinOp::Shl, a, b),
                },
                BinOp::Div | BinOp::Shr => fold_or_rebuild(*op, a, b),
            }
        }
        Expr::Cmp(op, a, b) => {
            let a = normalize(a);
            let b = normalize(b);
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                Expr::Const(i64::from(op.apply(*x, *y)))
            } else {
                Expr::cmp(*op, a, b)
            }
        }
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            let c = normalize(cond);
            let t = normalize(then);
            let o = normalize(otherwise);
            match c {
                Expr::Const(0) => o,
                Expr::Const(_) => t,
                c => Expr::select(c, t, o),
            }
        }
        Expr::Clamp { value, lo, hi } => {
            let v = normalize(value);
            let lo = normalize(lo);
            let hi = normalize(hi);
            if let (Expr::Const(x), Expr::Const(l), Expr::Const(h)) = (&v, &lo, &hi) {
                Expr::Const(if l > h { *l } else { *x.min(h).max(l) })
            } else {
                Expr::Clamp {
                    value: Box::new(v),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                }
            }
        }
    }
}

/// Evaluates `op` on two constants with `Expr::eval`'s semantics, or
/// rebuilds the node when either side is symbolic.
fn fold_or_rebuild(op: BinOp, a: Expr, b: Expr) -> Expr {
    if let (Expr::Const(_), Expr::Const(_)) = (&a, &b) {
        let e = Expr::bin(op, a, b);
        Expr::Const(e.eval(&mut |_, _, _| 0))
    } else {
        Expr::bin(op, a, b)
    }
}

/// Flattens an associative-commutative chain, folds its constants, and
/// rebuilds it left-associated in canonical operand order.
fn normalize_chain(op: BinOp, parts: Vec<Expr>) -> Expr {
    let mut terms: Vec<Expr> = Vec::new();
    let mut stack = parts;
    while let Some(e) = stack.pop() {
        match e {
            Expr::Bin(o, a, b) if o == op => {
                stack.push(*a);
                stack.push(*b);
            }
            other => terms.push(other),
        }
    }
    // Fold all constants into one (wrapping for ring ops, exact for
    // min/max), applying the chain's identity/absorbing elements.
    let mut acc: Option<i64> = None;
    let mut rest: Vec<Expr> = Vec::new();
    for t in terms {
        match t {
            Expr::Const(c) => {
                acc = Some(match (op, acc) {
                    (BinOp::Add, Some(a)) => a.wrapping_add(c),
                    (BinOp::Mul, Some(a)) => a.wrapping_mul(c),
                    (BinOp::Min, Some(a)) => a.min(c),
                    (BinOp::Max, Some(a)) => a.max(c),
                    (_, None) => c,
                    _ => unreachable!("normalize_chain only sees AC ops"),
                });
            }
            other => rest.push(other),
        }
    }
    match (op, acc) {
        (BinOp::Add, Some(0)) | (BinOp::Mul, Some(1)) => {}
        (BinOp::Mul, Some(0)) => return Expr::Const(0),
        (_, Some(c)) => rest.push(Expr::Const(c)),
        (_, None) => {}
    }
    rest.sort_by(cmp_expr);
    let mut it = rest.into_iter();
    let first = it.next().unwrap_or(Expr::Const(match op {
        BinOp::Mul => 1,
        _ => 0,
    }));
    it.fold(first, |a, b| Expr::bin(op, a, b))
}

/// Total structural order on expressions, used to canonicalize operand
/// order in commutative chains.
pub(crate) fn cmp_expr(a: &Expr, b: &Expr) -> Ordering {
    fn rank(e: &Expr) -> u8 {
        match e {
            Expr::Const(_) => 0,
            Expr::Tap { .. } => 1,
            Expr::Neg(_) => 2,
            Expr::Abs(_) => 3,
            Expr::Bin(..) => 4,
            Expr::Cmp(..) => 5,
            Expr::Select { .. } => 6,
            Expr::Clamp { .. } => 7,
        }
    }
    fn op_rank(op: BinOp) -> u8 {
        match op {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Min => 4,
            BinOp::Max => 5,
            BinOp::Shl => 6,
            BinOp::Shr => 7,
        }
    }
    match (a, b) {
        (Expr::Const(x), Expr::Const(y)) => x.cmp(y),
        (
            Expr::Tap { slot, dx, dy },
            Expr::Tap {
                slot: s2,
                dx: x2,
                dy: y2,
            },
        ) => (slot, dy, dx).cmp(&(s2, y2, x2)),
        (Expr::Bin(o1, ..), Expr::Bin(o2, ..)) if o1 != o2 => op_rank(*o1).cmp(&op_rank(*o2)),
        (Expr::Cmp(o1, ..), Expr::Cmp(o2, ..)) if o1 != o2 => o1.mnemonic().cmp(o2.mnemonic()),
        _ => {
            let r = rank(a).cmp(&rank(b));
            if r != Ordering::Equal {
                return r;
            }
            let ka = children(a);
            let kb = children(b);
            for (x, y) in ka.iter().zip(&kb) {
                let c = cmp_expr(x, y);
                if c != Ordering::Equal {
                    return c;
                }
            }
            ka.len().cmp(&kb.len())
        }
    }
}

// ---------------------------------------------------------------------
// Truncation elimination
// ---------------------------------------------------------------------

/// How a datapath obligation was discharged symbolically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TruncVerdict {
    /// Every node's interval fits the accumulator: no per-op truncation
    /// ever fires, the datapath value equals the wide value exactly.
    Exact,
    /// Some intermediate escapes the accumulator, but every truncation
    /// sits inside a ring context: the datapath value is congruent to
    /// the wide value mod `2^pixel_bits`, so the output register agrees.
    Modular,
    /// Neither proof applies; the obligation falls back to directed
    /// differential sampling.
    Unknown,
}

struct NodeFacts {
    iv: Iv,
    exact: bool,
    congruent: bool,
}

/// Proves (or declines to prove) that
/// `trunc(eval_acc(e, acc), pixel) == trunc(e.eval(wide), pixel)` for
/// all tap values within `slots`.
pub(crate) fn trunc_verdict(e: &Expr, slots: &[Iv], widths: &BitWidths) -> TruncVerdict {
    let acc = signed_range(widths.acc_bits);
    // Residues mod 2^pixel survive the per-op accumulator truncation
    // only when pixel <= acc (then trunc_acc is the identity on the
    // low pixel bits). A narrower accumulator than the output register
    // leaves only the exact route.
    let modular_ok = widths.pixel_bits.min(64) <= widths.acc_bits.min(64);
    let facts = judge(e, slots, acc, modular_ok);
    if facts.exact {
        TruncVerdict::Exact
    } else if facts.congruent {
        TruncVerdict::Modular
    } else {
        TruncVerdict::Unknown
    }
}

fn judge(e: &Expr, slots: &[Iv], acc: (i128, i128), modular_ok: bool) -> NodeFacts {
    let kids: Vec<NodeFacts> = children(e)
        .into_iter()
        .map(|k| judge(k, slots, acc, modular_ok))
        .collect();
    let kid_ivs: Vec<Iv> = kids.iter().map(|k| k.iv).collect();
    let iv = node_iv(e, &kid_ivs, slots);
    // Exactness: children exact means both evaluators hand this node
    // its mathematical operand values; the node's own interval fitting
    // the accumulator means neither the i64 op nor the trunc can alter
    // the result.
    let exact = kids.iter().all(|k| k.exact) && iv.lo >= acc.0 && iv.hi <= acc.1;
    // Congruence mod 2^pixel: ring operations preserve residues, so an
    // overflowing intermediate is harmless when only the low pixel bits
    // of the root survive. Everything value-dependent in its high bits
    // (division, right shift, comparisons, min/max, abs, clamp, select
    // conditions, shift amounts) needs exact operands.
    let congruent = exact
        || (modular_ok
            && match e {
                Expr::Const(_) | Expr::Tap { .. } => true,
                Expr::Neg(_) => kids[0].congruent,
                Expr::Bin(BinOp::Add | BinOp::Sub | BinOp::Mul, _, _) => {
                    kids[0].congruent && kids[1].congruent
                }
                Expr::Bin(BinOp::Shl, _, _) => kids[0].congruent && kids[1].exact,
                Expr::Select { .. } => kids[0].exact && kids[1].congruent && kids[2].congruent,
                _ => false,
            });
    NodeFacts {
        iv,
        exact,
        congruent,
    }
}

// ---------------------------------------------------------------------
// Directed differential sampling
// ---------------------------------------------------------------------

/// One symbolic tap variable with its sound value interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct TapVar {
    pub slot: usize,
    pub dx: i32,
    pub dy: i32,
    pub lo: i64,
    pub hi: i64,
}

/// Collects the distinct tap variables of a set of kernels, with
/// intervals from the producer-slot analysis. Distinct `(slot, dx, dy)`
/// triples are independent pixels; the same triple must be fed the same
/// value on both sides of a differential comparison.
pub(crate) fn tap_vars(exprs: &[&Expr], slots: &[Iv]) -> Vec<TapVar> {
    let mut vars: Vec<TapVar> = Vec::new();
    for e in exprs {
        e.for_each_tap(&mut |slot, dx, dy| {
            if !vars
                .iter()
                .any(|v| v.slot == slot && v.dx == dx && v.dy == dy)
            {
                let iv = slots.get(slot).copied().unwrap_or(Iv::new(-128, 127));
                vars.push(TapVar {
                    slot,
                    dx,
                    dy,
                    lo: iv.lo.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                    hi: iv.hi.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                });
            }
        });
    }
    vars.sort_by_key(|v| (v.slot, v.dy, v.dx));
    vars
}

/// Deterministic splitmix64 stream: the sampling is reproducible, so a
/// refutation witness found once is found on every run.
pub(crate) struct SplitMix(pub u64);

impl SplitMix {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo.wrapping_add((self.next_u64() as u128 % span) as i64)
    }
}

/// The outcome of a directed differential run.
pub(crate) enum SampleOutcome {
    /// Both sides agreed on every sampled assignment.
    Agreed { samples: usize },
    /// A concrete disagreement: the assignment plus both output values.
    Mismatch {
        assignment: Vec<(TapVar, i64)>,
        spec: i64,
        impl_: i64,
    },
}

/// Differentially evaluates `trunc(spec.eval(wide), pixel)` against
/// `trunc(eval_acc(impl_, acc), pixel)` over directed assignments:
/// per-variable interval corners (lo/hi/zero crossings) plus seeded
/// random interior points.
pub(crate) fn sample_datapath(
    spec: &Expr,
    impl_: &Expr,
    vars: &[TapVar],
    widths: &BitWidths,
    samples: usize,
    seed: u64,
) -> SampleOutcome {
    let mut rng = SplitMix(seed ^ 0x1a6e_5a17_ed5e_ed00);
    let mut values = vec![0i64; vars.len()];
    let mut tried = 0usize;
    let check = |values: &[i64], tried: &mut usize| -> Option<(i64, i64)> {
        *tried += 1;
        let fetch_of = |values: &[i64]| {
            let assigned: Vec<(usize, i32, i32, i64)> = vars
                .iter()
                .zip(values)
                .map(|(v, &x)| (v.slot, v.dx, v.dy, x))
                .collect();
            move |slot: usize, dx: i32, dy: i32| {
                assigned
                    .iter()
                    .find(|&&(s, x, y, _)| s == slot && x == dx && y == dy)
                    .map(|&(_, _, _, v)| v)
                    .unwrap_or(0)
            }
        };
        let mut f1 = fetch_of(values);
        let s = trunc(spec.eval(&mut f1), widths.pixel_bits);
        let mut f2 = fetch_of(values);
        let i = trunc(eval_acc(impl_, widths.acc_bits, &mut f2), widths.pixel_bits);
        (s != i).then_some((s, i))
    };

    // Directed phase: every variable at each of its corner values,
    // others at a deterministic mix of corners.
    let corner = |v: &TapVar, pick: u8| match pick {
        0 => v.lo,
        1 => v.hi,
        2 if v.lo <= 0 && v.hi >= 0 => 0,
        _ => ((v.lo as i128 + v.hi as i128) / 2) as i64,
    };
    for focus in 0..vars.len() {
        for pick in 0..4u8 {
            for other_pick in 0..2u8 {
                for (i, v) in vars.iter().enumerate() {
                    values[i] = corner(v, if i == focus { pick } else { other_pick });
                }
                if let Some((s, i)) = check(&values, &mut tried) {
                    return mismatch(vars, &values, s, i);
                }
            }
        }
    }
    // Random phase.
    while tried < samples {
        for (i, v) in vars.iter().enumerate() {
            values[i] = rng.in_range(v.lo, v.hi);
        }
        if let Some((s, i)) = check(&values, &mut tried) {
            return mismatch(vars, &values, s, i);
        }
    }
    SampleOutcome::Agreed { samples: tried }
}

fn mismatch(vars: &[TapVar], values: &[i64], spec: i64, impl_: i64) -> SampleOutcome {
    SampleOutcome::Mismatch {
        assignment: vars.iter().copied().zip(values.iter().copied()).collect(),
        spec,
        impl_,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dx: i32, dy: i32) -> Expr {
        Expr::tap(0, dx, dy)
    }

    fn widths(pixel: u32, acc: u32) -> BitWidths {
        BitWidths {
            pixel_bits: pixel,
            acc_bits: acc,
        }
    }

    fn iv(lo: i128, hi: i128) -> Iv {
        Iv::new(lo, hi)
    }

    #[test]
    fn normalization_is_commutative_and_folds() {
        let a = Expr::bin(
            BinOp::Add,
            t(1, 0),
            Expr::bin(BinOp::Add, t(-1, 0), t(0, 0)),
        );
        let b = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, t(0, 0), t(1, 0)),
            t(-1, 0),
        );
        assert_eq!(normalize(&a), normalize(&b));
        let c = Expr::bin(
            BinOp::Add,
            Expr::Const(3),
            Expr::bin(BinOp::Add, t(0, 0), Expr::Const(4)),
        );
        let d = Expr::bin(BinOp::Add, t(0, 0), Expr::Const(7));
        assert_eq!(normalize(&c), normalize(&d));
    }

    #[test]
    fn shl_by_const_merges_with_mul() {
        let a = Expr::bin(BinOp::Shl, t(0, 0), Expr::Const(1));
        let b = Expr::bin(BinOp::Mul, Expr::Const(2), t(0, 0));
        assert_eq!(normalize(&a), normalize(&b));
    }

    #[test]
    fn sub_cancels_through_the_additive_chain() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Add, t(0, 0), t(1, 0)),
            Expr::bin(BinOp::Add, t(1, 0), t(0, 0)),
        );
        // x + y - (y + x) does not literally cancel (taps are opaque
        // and Neg-wrapped), but the two sides normalize identically.
        let f = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Add, t(1, 0), t(0, 0)),
            Expr::bin(BinOp::Add, t(0, 0), t(1, 0)),
        );
        assert_eq!(normalize(&e), normalize(&f));
    }

    #[test]
    fn normalization_preserves_wide_semantics() {
        // Randomized check over a representative kernel shape.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Add, t(-1, 0), Expr::Const(3)),
                Expr::bin(BinOp::Shl, t(0, 1), Expr::Const(2)),
            ),
            Expr::bin(BinOp::Div, t(1, 1), Expr::Const(5)),
        );
        let n = normalize(&e);
        let mut rng = SplitMix(7);
        for _ in 0..200 {
            let (a, b, c) = (
                rng.in_range(-1000, 1000),
                rng.in_range(-1000, 1000),
                rng.in_range(-1000, 1000),
            );
            let mut fetch = |_: usize, dx: i32, dy: i32| match (dx, dy) {
                (-1, 0) => a,
                (0, 1) => b,
                _ => c,
            };
            let mut fetch2 = fetch;
            assert_eq!(e.eval(&mut fetch), n.eval(&mut fetch2));
        }
    }

    #[test]
    fn small_kernel_is_exact() {
        let e = Expr::bin(
            BinOp::Div,
            Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            Expr::Const(9),
        );
        let v = trunc_verdict(&e, &[iv(0, 127)], &widths(16, 32));
        assert_eq!(v, TruncVerdict::Exact);
    }

    #[test]
    fn polynomial_overflow_is_modular() {
        // x^5 at [0,127] exceeds a 32-bit accumulator but is pure ring
        // arithmetic: congruence mod 2^16 survives.
        let mut e = t(0, 0);
        for _ in 0..4 {
            e = Expr::bin(BinOp::Mul, e, t(0, 0));
        }
        let v = trunc_verdict(&e, &[iv(0, 127)], &widths(16, 32));
        assert_eq!(v, TruncVerdict::Modular);
    }

    #[test]
    fn division_of_overflowing_numerator_is_unknown() {
        let mut num = t(0, 0);
        for _ in 0..4 {
            num = Expr::bin(BinOp::Mul, num, t(0, 0));
        }
        let e = Expr::bin(BinOp::Div, num, Expr::Const(3));
        let v = trunc_verdict(&e, &[iv(0, 127)], &widths(16, 32));
        assert_eq!(v, TruncVerdict::Unknown);
    }

    #[test]
    fn sampling_refutes_a_real_divergence() {
        // x^5 / 3: the accumulator truncates the numerator before the
        // divide, so 16/32 genuinely diverges from wide — the sampler
        // must find a witness.
        let mut num = t(0, 0);
        for _ in 0..4 {
            num = Expr::bin(BinOp::Mul, num, t(0, 0));
        }
        let e = Expr::bin(BinOp::Div, num, Expr::Const(3));
        let vars = tap_vars(&[&e], &[iv(0, 127)]);
        match sample_datapath(&e, &e, &vars, &widths(16, 32), 512, 42) {
            SampleOutcome::Mismatch { spec, impl_, .. } => assert_ne!(spec, impl_),
            SampleOutcome::Agreed { .. } => panic!("expected a refutation witness"),
        }
    }

    #[test]
    fn sampling_agrees_on_equivalent_kernels() {
        let a = Expr::bin(BinOp::Add, t(0, 0), t(1, 0));
        let b = Expr::bin(BinOp::Add, t(1, 0), t(0, 0));
        let vars = tap_vars(&[&a, &b], &[iv(0, 127)]);
        match sample_datapath(&a, &b, &vars, &widths(16, 32), 256, 1) {
            SampleOutcome::Agreed { samples } => assert!(samples >= 256),
            SampleOutcome::Mismatch { .. } => panic!("commuted add cannot diverge"),
        }
    }
}
