//! Width & overflow dataflow: interval inference over kernel expressions
//! propagated through the DAG.
//!
//! Every stage's output gets a value interval, starting from the declared
//! input range at the sources and pushed through each kernel with a
//! transfer function that mirrors `Expr::eval`'s *mathematical* behavior
//! (truncating division, division by zero yielding zero, Verilog shift
//! rules). Intervals are computed in `i128` with saturation far beyond
//! `i64`, so they are exact as long as no node exceeds the accumulator.
//!
//! The soundness claim (differentially tested in `tests/soundness.rs`):
//! if no node's interval escapes the signed `acc_bits` range and no
//! stage's output escapes the signed `pixel_bits` range, then the
//! hardware datapath never truncates and the kernel evaluator never
//! wraps, so the 16/32 and 64/64 interpretations produce identical
//! frames. A flagged stage's output is assumed to span the full pixel
//! range downstream — sound, because the output register sign-extends
//! into exactly that range.

use crate::{codes, AnalysisOptions, Diagnostic, Locus, Severity};
use imagen_ir::{BinOp, Dag, Expr};

/// Largest tap offset magnitude (either axis) before the DSL lints call
/// a stencil suspicious (`W0104`). Real stencils in the paper's table
/// top out at 17 rows of reach; each row of vertical reach costs a line
/// buffer row, so a huge offset is almost always a typo.
pub const MAX_TAP_REACH: i32 = 32;

/// Saturation cap: wide enough that saturation itself is always flagged
/// (it exceeds any representable accumulator), small enough that the
/// arithmetic below cannot overflow `i128`.
const CAP: i128 = 1 << 100;

/// A closed value interval `[lo, hi]`, saturating at ±[`CAP`]. Shared
/// with the symbolic certifier (`symex`), which reuses the exact same
/// transfer functions so its truncation-elimination proofs rest on the
/// intervals this pass is differentially tested on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Iv {
    pub(crate) lo: i128,
    pub(crate) hi: i128,
}

impl Iv {
    pub(crate) fn new(lo: i128, hi: i128) -> Iv {
        debug_assert!(lo <= hi);
        Iv {
            lo: lo.clamp(-CAP, CAP),
            hi: hi.clamp(-CAP, CAP),
        }
    }

    pub(crate) fn exact(v: i128) -> Iv {
        Iv::new(v, v)
    }

    pub(crate) fn hull(a: Iv, b: Iv) -> Iv {
        Iv::new(a.lo.min(b.lo), a.hi.max(b.hi))
    }

    fn mag(&self) -> i128 {
        self.lo.abs().max(self.hi.abs())
    }

    fn neg(self) -> Iv {
        Iv::new(-self.hi, -self.lo)
    }

    fn abs(self) -> Iv {
        if self.lo >= 0 {
            self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            Iv::new(0, self.mag())
        }
    }

    fn corners(a: Iv, b: Iv, f: impl Fn(i128, i128) -> i128) -> Iv {
        let c = [f(a.lo, b.lo), f(a.lo, b.hi), f(a.hi, b.lo), f(a.hi, b.hi)];
        Iv::new(
            c.iter().copied().min().unwrap(),
            c.iter().copied().max().unwrap(),
        )
    }
}

/// Signed range of a `bits`-wide two's-complement register.
pub(crate) fn signed_range(bits: u32) -> (i128, i128) {
    let b = bits.clamp(1, 64);
    (-(1i128 << (b - 1)), (1i128 << (b - 1)) - 1)
}

struct Ctx<'a> {
    /// Output interval of each producer slot of the stage under analysis.
    slots: &'a [Iv],
    acc: (i128, i128),
    /// Widest interval seen on a node that escapes the accumulator.
    worst: Option<Iv>,
}

impl Ctx<'_> {
    fn check(&mut self, r: Iv) -> Iv {
        if r.lo < self.acc.0 || r.hi > self.acc.1 {
            let w = self.worst.get_or_insert(r);
            *w = Iv::hull(*w, r);
        }
        r
    }
}

/// Child subexpressions in a fixed order ([`node_iv`] indexes into it).
pub(crate) fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Const(_) | Expr::Tap { .. } => Vec::new(),
        Expr::Neg(a) | Expr::Abs(a) => vec![a],
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => vec![a, b],
        Expr::Select {
            cond,
            then,
            otherwise,
        } => vec![cond, then, otherwise],
        Expr::Clamp { value, lo, hi } => vec![value, lo, hi],
    }
}

/// Per-node interval transfer function over already-computed child
/// intervals (`kids` in [`children`] order), mirroring `Expr::eval`
/// mathematically. The single source of truth shared by the width lint
/// and the symbolic certifier.
pub(crate) fn node_iv(e: &Expr, kids: &[Iv], slots: &[Iv]) -> Iv {
    match e {
        Expr::Const(c) => Iv::exact(*c as i128),
        Expr::Tap { slot, .. } => slots.get(*slot).copied().unwrap_or(Iv::new(-CAP, CAP)),
        Expr::Neg(_) => kids[0].neg(),
        Expr::Abs(_) => kids[0].abs(),
        Expr::Bin(op, _, _) => bin_iv(*op, kids[0], kids[1]),
        Expr::Cmp(_, _, _) => Iv::new(0, 1),
        Expr::Select { .. } => {
            let c = kids[0];
            if c.lo > 0 || c.hi < 0 {
                kids[1]
            } else if c == Iv::exact(0) {
                kids[2]
            } else {
                Iv::hull(kids[1], kids[2])
            }
        }
        // `lo > hi` pins to `lo`; otherwise the result lies between
        // the smallest lower limit and the largest upper limit.
        Expr::Clamp { .. } => Iv::new(kids[1].lo, kids[2].hi.max(kids[1].hi)),
    }
}

/// Interval transfer function, mirroring `Expr::eval` mathematically.
fn eval_iv(e: &Expr, ctx: &mut Ctx<'_>) -> Iv {
    let kids: Vec<Iv> = children(e).into_iter().map(|k| eval_iv(k, ctx)).collect();
    let r = node_iv(e, &kids, ctx.slots);
    ctx.check(r)
}

pub(crate) fn bin_iv(op: BinOp, a: Iv, b: Iv) -> Iv {
    match op {
        BinOp::Add => Iv::new(a.lo.saturating_add(b.lo), a.hi.saturating_add(b.hi)),
        BinOp::Sub => Iv::new(a.lo.saturating_sub(b.hi), a.hi.saturating_sub(b.lo)),
        BinOp::Mul => Iv::corners(a, b, |x, y| x.saturating_mul(y)),
        BinOp::Div => {
            if b == Iv::exact(0) {
                // Guarded divider: /0 yields 0.
                Iv::exact(0)
            } else if b.lo > 0 || b.hi < 0 {
                // Sign-definite divisor: truncating division is monotone
                // in each argument, so corners bound it.
                Iv::corners(a, b, |x, y| x / y)
            } else {
                // Divisor straddles zero: |result| never exceeds |a|
                // (divisor ±1 is the worst case; 0 yields 0).
                Iv::new(-a.mag(), a.mag())
            }
        }
        BinOp::Min => Iv::new(a.lo.min(b.lo), a.hi.min(b.hi)),
        BinOp::Max => Iv::new(a.lo.max(b.lo), a.hi.max(b.hi)),
        BinOp::Shl => {
            let mut out: Option<Iv> = None;
            let (s_lo, s_hi) = (b.lo.max(0), b.hi.min(63));
            if s_lo <= s_hi {
                let scaled =
                    |s: i128| Iv::corners(a, Iv::exact(1i128 << s), |x, y| x.saturating_mul(y));
                let r = Iv::hull(scaled(s_lo), scaled(s_hi));
                out = Some(r);
            }
            if b.lo < 0 || b.hi > 63 {
                // Out-of-range amounts shift everything out (Verilog <<<).
                let z = Iv::exact(0);
                out = Some(out.map_or(z, |r| Iv::hull(r, z)));
            }
            out.unwrap_or(Iv::exact(0))
        }
        BinOp::Shr => {
            let mut amounts = Vec::with_capacity(3);
            let (s_lo, s_hi) = (b.lo.max(0), b.hi.min(63));
            if s_lo <= s_hi {
                amounts.push(s_lo as u32);
                amounts.push(s_hi as u32);
            }
            if b.lo < 0 || b.hi > 63 {
                // Out-of-range amounts behave as a shift by 63 (sign fill).
                amounts.push(63);
            }
            let mut out: Option<Iv> = None;
            for s in amounts {
                let r = Iv::new(a.lo >> s, a.hi >> s);
                out = Some(out.map_or(r, |o| Iv::hull(o, r)));
            }
            out.unwrap_or(Iv::exact(0))
        }
    }
}

/// Runs the width/overflow pass over a lowered DAG.
pub(crate) fn lint_dag(dag: &Dag, opts: &AnalysisOptions) -> Vec<Diagnostic> {
    analyze_widths(dag, opts).0
}

/// The per-stage output intervals the width pass propagates, in stage
/// order. Flagged (overflowing/truncating) stages report the full pixel
/// range — the sound assumption for the register downstream consumers
/// actually read — so these intervals bound the values a hardware
/// producer register can hold regardless of whether the stage is clean.
pub(crate) fn stage_intervals(dag: &Dag, opts: &AnalysisOptions) -> Vec<Iv> {
    analyze_widths(dag, opts).1
}

/// The width/overflow dataflow: diagnostics plus the propagated
/// per-stage output intervals.
fn analyze_widths(dag: &Dag, opts: &AnalysisOptions) -> (Vec<Diagnostic>, Vec<Iv>) {
    let pixel = signed_range(opts.widths.pixel_bits);
    let acc = signed_range(opts.widths.acc_bits);
    let input_iv = Iv::new(
        (opts.input_range.0 as i128).clamp(pixel.0, pixel.1),
        (opts.input_range.1 as i128).clamp(pixel.0, pixel.1),
    );
    let full_pixel = Iv::new(pixel.0, pixel.1);

    let mut diags = Vec::new();
    let mut out: Vec<Iv> = Vec::with_capacity(dag.num_stages());
    for (_, stage) in dag.stages() {
        let Some(kernel) = stage.kernel() else {
            out.push(input_iv);
            continue;
        };
        let slots: Vec<Iv> = stage.producers().iter().map(|p| out[p.index()]).collect();
        let mut ctx = Ctx {
            slots: &slots,
            acc,
            worst: None,
        };
        let root = eval_iv(kernel, &mut ctx);
        let mut flagged = false;
        if let Some(w) = ctx.worst {
            flagged = true;
            diags.push(
                Diagnostic::new(
                    codes::ACC_OVERFLOW,
                    Severity::Warning,
                    format!(
                        "kernel of stage `{}` can reach [{}, {}], outside the {}-bit accumulator range [{}, {}]",
                        stage.name(),
                        w.lo,
                        w.hi,
                        opts.widths.acc_bits,
                        acc.0,
                        acc.1
                    ),
                )
                .at(Locus::Stage(stage.name().to_string())),
            );
        }
        if root.lo < pixel.0 || root.hi > pixel.1 {
            flagged = true;
            diags.push(
                Diagnostic::new(
                    codes::OUT_TRUNCATES,
                    Severity::Note,
                    format!(
                        "output of stage `{}` spans [{}, {}] and truncates at the {}-bit output register",
                        stage.name(),
                        root.lo,
                        root.hi,
                        opts.widths.pixel_bits
                    ),
                )
                .at(Locus::Stage(stage.name().to_string())),
            );
        }
        // A flagged stage's register still sign-extends into the pixel
        // range, so that is the sound downstream assumption.
        out.push(if flagged { full_pixel } else { root });
    }
    (diags, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::CmpOp;

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    fn one_stage(kernel: Expr) -> Dag {
        let mut dag = Dag::new("t");
        let a = dag.add_input("a");
        let b = dag.add_stage("b", &[a], kernel).unwrap();
        dag.mark_output(b);
        dag
    }

    #[test]
    fn box_blur_is_certified() {
        let sum = Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1)));
        let d = lint_dag(
            &one_stage(Expr::bin(BinOp::Div, sum, Expr::Const(9))),
            &opts(),
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cube_truncates_but_fits_accumulator() {
        let t = || Expr::tap(0, 0, 0);
        let cube = Expr::bin(BinOp::Mul, Expr::bin(BinOp::Mul, t(), t()), t());
        let d = lint_dag(&one_stage(cube), &opts());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::OUT_TRUNCATES);
        assert_eq!(d[0].severity, Severity::Note);
    }

    #[test]
    fn fifth_power_overflows_accumulator() {
        let t = || Expr::tap(0, 0, 0);
        let mut e = t();
        for _ in 0..4 {
            e = Expr::bin(BinOp::Mul, e, t());
        }
        let d = lint_dag(&one_stage(e), &opts());
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].code, codes::ACC_OVERFLOW);
        assert_eq!(d[1].code, codes::OUT_TRUNCATES);
    }

    #[test]
    fn widened_datapath_certifies_the_same_kernel() {
        let t = || Expr::tap(0, 0, 0);
        let mut e = t();
        for _ in 0..4 {
            e = Expr::bin(BinOp::Mul, e, t());
        }
        let wide = AnalysisOptions {
            widths: imagen_rtl::BitWidths::wide(),
            ..opts()
        };
        assert!(lint_dag(&one_stage(e), &wide).is_empty());
    }

    #[test]
    fn division_by_interval_straddling_zero_is_bounded() {
        // a / (a - 64) with a in [0,127]: divisor straddles 0, result
        // magnitude never exceeds |a| <= 127 — certified.
        let t = || Expr::tap(0, 0, 0);
        let e = Expr::bin(BinOp::Div, t(), Expr::bin(BinOp::Sub, t(), Expr::Const(64)));
        assert!(lint_dag(&one_stage(e), &opts()).is_empty());
    }

    #[test]
    fn variable_shift_amount_is_conservative() {
        // a << a with a in [0,127]: amounts up to 63 blow out any
        // accumulator.
        let t = || Expr::tap(0, 0, 0);
        let e = Expr::bin(BinOp::Shl, t(), t());
        let d = lint_dag(&one_stage(e), &opts());
        assert_eq!(d[0].code, codes::ACC_OVERFLOW);
    }

    #[test]
    fn select_refines_on_decided_conditions() {
        // select(1, small, huge) only sees the small branch.
        let huge = Expr::bin(BinOp::Mul, Expr::Const(1 << 30), Expr::Const(1 << 30));
        let e = Expr::select(Expr::Const(1), Expr::tap(0, 0, 0), huge);
        let d = lint_dag(&one_stage(e), &opts());
        // The dead branch itself is still checked (it exceeds the
        // accumulator as a node), so the stage is flagged — but the
        // select's own interval stays small, so no truncation note.
        assert!(d.iter().all(|x| x.code != codes::OUT_TRUNCATES), "{d:?}");
    }

    #[test]
    fn comparisons_are_boolean() {
        let e = Expr::cmp(CmpOp::Gt, Expr::tap(0, 0, 0), Expr::Const(10));
        assert!(lint_dag(&one_stage(e), &opts()).is_empty());
    }

    #[test]
    fn intervals_propagate_through_the_dag() {
        // b = a*a (fits pixel at [0,127]? 127^2 = 16129 <= 32767: yes);
        // c = b*b exceeds pixel and fits acc; both checked from the
        // propagated interval, not the worst-case pixel range.
        let mut dag = Dag::new("t");
        let a = dag.add_input("a");
        let sq = |s| Expr::bin(BinOp::Mul, Expr::tap(s, 0, 0), Expr::tap(s, 0, 0));
        let b = dag.add_stage("b", &[a], sq(0)).unwrap();
        let c = dag.add_stage("c", &[b], sq(0)).unwrap();
        dag.mark_output(c);
        let d = lint_dag(&dag, &opts());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, codes::OUT_TRUNCATES);
        assert_eq!(d[0].locus, Locus::Stage("c".to_string()));
    }
}
