//! Translation validation over the paper corpus, plus mutation tests
//! showing the certifier actually refutes broken netlists.
//!
//! Three claims are pinned here:
//!
//! 1. **Completeness on the corpus** — every Tbl. 3 pipeline certifies
//!    with *zero* unknown/fuzzed obligations at both the hardware
//!    16/32 widths and the widened 64/64 reference, i.e. the symbolic
//!    layer decides the whole paper workload without falling back to
//!    sampling.
//! 2. **Soundness** — a fully proved certificate composes to the
//!    end-to-end claim: the netlist's output frames equal the golden
//!    software model's on in-range inputs (the same differential the
//!    PR 3 interpreter tests sample, now implied per compile).
//! 3. **Falsifiability** — injected miswirings (a nudged kernel
//!    constant, a shrunk window, a hoisted start cycle, an undersized
//!    rotation, a chopped clock gate) are each refuted with a concrete
//!    witness, and the kernel mutation is confirmed to genuinely
//!    diverge in the interpreter.

use imagen_algos::{noise_bits, Algorithm};
use imagen_analysis::{certify_dag, certify_netlist, AnalysisOptions, ProofStatus};
use imagen_ir::Expr;
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::{build_netlist, interpret, BitWidths, ModuleKind, Netlist};
use imagen_schedule::{plan_design, Plan, ScheduleOptions};
use imagen_sim::{execute, Image};

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 32,
        height: 24,
        pixel_bits: 16,
    }
}

fn options() -> AnalysisOptions {
    AnalysisOptions {
        geom: geom(),
        spec: MemorySpec::new(MemBackend::Asic { block_bits: 32768 }, 2),
        ..AnalysisOptions::default()
    }
}

fn planned(alg: Algorithm) -> Plan {
    let dag = alg.build();
    plan_design(
        &dag,
        &geom(),
        &options().spec,
        ScheduleOptions::default(),
        DesignStyle::Ours,
    )
    .unwrap()
}

fn netlist_of(alg: Algorithm, widths: &BitWidths) -> (Plan, Netlist) {
    let plan = planned(alg);
    let net = build_netlist(&plan.dag, &plan.design, widths);
    (plan, net)
}

fn refuted_codes(cert: &imagen_analysis::Certificate) -> Vec<&'static str> {
    cert.obligations
        .iter()
        .filter_map(|o| match &o.status {
            ProofStatus::Refuted { code, .. } => Some(*code),
            _ => None,
        })
        .collect()
}

fn refuted_witnesses(cert: &imagen_analysis::Certificate) -> Vec<String> {
    cert.obligations
        .iter()
        .filter_map(|o| match &o.status {
            ProofStatus::Refuted { witness, .. } => Some(witness.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn paper_corpus_fully_proved_at_both_widths() {
    for alg in Algorithm::all() {
        for widths in [BitWidths::default(), BitWidths::wide()] {
            let (plan, net) = netlist_of(alg, &widths);
            let cert = certify_netlist(&plan.dag, &net, &options());
            assert!(
                !cert.obligations.is_empty(),
                "{}: empty certificate",
                alg.name()
            );
            assert!(
                cert.all_proved(),
                "{} @ {}/{}: {} fuzzed, {} refuted\n{}",
                alg.name(),
                widths.pixel_bits,
                widths.acc_bits,
                cert.fuzzed(),
                cert.refuted(),
                cert.render()
            );
        }
    }
}

#[test]
fn gated_corpus_fully_proved() {
    // The gating plan the power pass derives must satisfy the gate
    // liveness obligations on every pipeline: the prover re-derives,
    // symbolically, what the activity interpreter checks dynamically.
    for alg in Algorithm::all() {
        let (plan, net) = netlist_of(alg, &BitWidths::default());
        let gated = imagen_power::gate_clocks(&net);
        assert!(gated.is_gated(), "{}: no gating plan attached", alg.name());
        let cert = certify_netlist(&plan.dag, &gated, &options());
        assert!(cert.all_proved(), "{} gated: {}", alg.name(), cert.render());
        // The gate obligations are actually present, not vacuous.
        assert!(
            cert.obligations
                .iter()
                .any(|o| matches!(o.kind, imagen_analysis::ObligationKind::GateLiveness { .. })),
            "{}: no gate obligations stated",
            alg.name()
        );
    }
}

#[test]
fn proved_certificate_composes_to_golden_equivalence() {
    // Soundness pinning: a fully proved certificate at 16/32 plus an
    // overflow-free width report implies the netlist reproduces the
    // golden software model frame-for-frame. This is the same claim the
    // interpreter differentials sample; here it must hold wherever the
    // certificate says "proved".
    let mut checked = 0usize;
    for alg in Algorithm::all() {
        let report = imagen_analysis::analyze(alg.name(), alg.dsl_source(), &options());
        if !report.certified_overflow_free() {
            continue; // output-truncating pipelines diverge from golden by design
        }
        let (plan, net) = netlist_of(alg, &BitWidths::default());
        let cert = certify_netlist(&plan.dag, &net, &options());
        assert!(cert.all_proved(), "{}: {}", alg.name(), cert.render());
        let inputs: Vec<Image> = (0..plan.dag.stages().filter(|(_, s)| s.is_input()).count())
            .map(|k| {
                Image::from_fn(geom().width, geom().height, |x, y| {
                    noise_bits(11 + k as u64, x, y, 7)
                })
            })
            .collect();
        let run = interpret(&net, &inputs).unwrap();
        let golden = execute(&plan.dag, &inputs).unwrap();
        for (stage, img) in &run.output_images {
            let gold = golden.stage(imagen_ir::StageId::from_index(*stage));
            assert_eq!(img, gold, "{}: netlist diverged from golden", alg.name());
        }
        checked += 1;
    }
    assert!(
        checked >= 3,
        "only {checked} pipelines reached the golden check"
    );
}

/// Replaces the kernel of the first compute stage module with `f(kernel)`.
fn mutate_kernel(net: &mut Netlist, f: impl Fn(&Expr) -> Expr) {
    for m in &mut net.modules {
        if let ModuleKind::Stage(payload) = &mut m.kind {
            payload.kernel = f(&payload.kernel);
            return;
        }
    }
    panic!("no stage module to mutate");
}

#[test]
fn mutated_kernel_constant_is_refuted_with_witness_and_diverges() {
    let (plan, net) = netlist_of(Algorithm::UnsharpM, &BitWidths::default());
    let mut bad = net.clone();
    mutate_kernel(&mut bad, |k| {
        Expr::bin(imagen_ir::BinOp::Add, k.clone(), Expr::Const(1))
    });

    let cert = certify_netlist(&plan.dag, &bad, &options());
    let codes = refuted_codes(&cert);
    assert!(codes.contains(&"E0501"), "{}", cert.render());
    let witness = refuted_witnesses(&cert).join("\n");
    assert!(
        witness.contains("spec =") && witness.contains("netlist ="),
        "witness lacks concrete values: {witness}"
    );

    // The refutation is real: the mutated netlist computes different
    // frames than the original on the witness-free differential too.
    let inputs: Vec<Image> = (0..1)
        .map(|k| {
            Image::from_fn(geom().width, geom().height, |x, y| {
                noise_bits(3 + k as u64, x, y, 7)
            })
        })
        .collect();
    let good_run = interpret(&net, &inputs).unwrap();
    let bad_run = interpret(&bad, &inputs).unwrap();
    assert_ne!(
        good_run.output_images, bad_run.output_images,
        "mutation did not change the computed frames"
    );
}

#[test]
fn shrunk_window_is_refuted_as_uncovered_tap() {
    let (plan, net) = netlist_of(Algorithm::CannyS, &BitWidths::default());
    let mut bad = net.clone();
    let e = bad
        .edges
        .iter_mut()
        .find(|e| e.window.height > 1)
        .expect("a multi-row edge");
    e.window.height -= 1;
    let cert = certify_netlist(&plan.dag, &bad, &options());
    assert!(refuted_codes(&cert).contains(&"E0503"), "{}", cert.render());
}

#[test]
fn hoisted_consumer_start_is_refuted_as_stale_read() {
    let (plan, net) = netlist_of(Algorithm::UnsharpM, &BitWidths::default());
    let mut bad = net.clone();
    // Drag every consumer to cycle 0: rows below the anchor are then
    // read before the producer has committed them.
    for s in &mut bad.stages {
        s.start_cycle = 0;
    }
    let cert = certify_netlist(&plan.dag, &bad, &options());
    assert!(refuted_codes(&cert).contains(&"E0504"), "{}", cert.render());
}

#[test]
fn shrunk_rotation_is_refuted_as_clobbered_row() {
    let (plan, net) = netlist_of(Algorithm::UnsharpM, &BitWidths::default());
    let mut bad = net.clone();
    let b = bad
        .buffers
        .iter_mut()
        .find(|b| b.storage_rows > 1)
        .expect("a rotating buffer");
    b.storage_rows = 1;
    let cert = certify_netlist(&plan.dag, &bad, &options());
    // A 1-row rotation either clobbers a live row (E0505) or cannot be
    // fresh at all; on this schedule it is the clobber.
    assert!(refuted_codes(&cert).contains(&"E0505"), "{}", cert.render());
}

#[test]
fn chopped_gate_is_refuted_with_a_cycle_witness() {
    let (plan, net) = netlist_of(Algorithm::UnsharpM, &BitWidths::default());
    let mut gated = imagen_power::gate_clocks(&net);
    let gp = gated.gating.as_mut().unwrap();
    // Close a gate one full row early: the consumer's last row of loads
    // happens with the read port dark, and those loads are fetched.
    let g = &mut gp.gates[0];
    g.read_end -= geom().width as u64;
    let cert = certify_netlist(&plan.dag, &gated, &options());
    let codes = refuted_codes(&cert);
    assert!(codes.contains(&"E0506"), "{}", cert.render());
    let witness = refuted_witnesses(&cert).join("\n");
    assert!(witness.contains("cycle"), "no cycle in witness: {witness}");
}

#[test]
fn gate_gap_over_unfetched_loads_is_a_warning_not_a_refutation() {
    // Every tap of the consumer sits at dx = -1, so the load at the last
    // column of each row is never fetched; chopping the gate by exactly
    // one cycle uncovers only that load. The certifier must downgrade to
    // W0509 instead of refuting.
    let dag = imagen_dsl::compile(
        "leftonly",
        "input a; output b = im(x,y) a(x-1,y) + a(x-1,y-1) end",
    )
    .unwrap();
    let plan = plan_design(
        &dag,
        &geom(),
        &options().spec,
        ScheduleOptions::default(),
        DesignStyle::Ours,
    )
    .unwrap();
    let net = build_netlist(&plan.dag, &plan.design, &BitWidths::default());
    let mut gated = imagen_power::gate_clocks(&net);
    let gp = gated.gating.as_mut().unwrap();
    let g = &mut gp.gates[0];
    g.read_end -= 1;
    let cert = certify_netlist(&plan.dag, &gated, &options());
    assert_eq!(cert.refuted(), 0, "{}", cert.render());
    assert!(
        cert.obligations.iter().any(|o| matches!(
            &o.status,
            ProofStatus::Fuzzed { code, .. } if *code == "W0509"
        )),
        "{}",
        cert.render()
    );
}

#[test]
fn undecidable_division_falls_back_to_agreeing_fuzz() {
    // x^5 wraps a 32-bit accumulator and division blocks the modular
    // proof — but dividing by 1 keeps the low 16 bits congruent, so the
    // directed sampler agrees on every assignment: W0502, not E0501.
    let dag = imagen_dsl::compile(
        "fifth",
        "input a; output b = im(x,y) (a(x,y)*a(x,y)*a(x,y)*a(x,y)*a(x,y)) / 1 end",
    )
    .unwrap();
    let cert = certify_dag(&dag, &options()).unwrap();
    assert_eq!(cert.refuted(), 0, "{}", cert.render());
    assert!(
        cert.obligations.iter().any(|o| matches!(
            &o.status,
            ProofStatus::Fuzzed { code, samples } if *code == "W0502" && *samples > 0
        )),
        "{}",
        cert.render()
    );
}

#[test]
fn genuinely_truncating_division_is_refuted() {
    // x^5 / 3 truncates its numerator in the accumulator before the
    // divide: the 16/32 netlist really does diverge from DSL semantics,
    // and the sampler must produce the witness.
    let dag = imagen_dsl::compile(
        "fifth3",
        "input a; output b = im(x,y) (a(x,y)*a(x,y)*a(x,y)*a(x,y)*a(x,y)) / 3 end",
    )
    .unwrap();
    let cert = certify_dag(&dag, &options()).unwrap();
    assert!(refuted_codes(&cert).contains(&"E0501"), "{}", cert.render());
    // At 64/64 nothing truncates and the same pipeline proves.
    let wide = AnalysisOptions {
        widths: BitWidths::wide(),
        ..options()
    };
    let cert64 = certify_dag(&dag, &wide).unwrap();
    assert!(cert64.all_proved(), "{}", cert64.render());
}

#[test]
fn out_of_range_inputs_are_a_certificate_caveat() {
    let dag = imagen_dsl::compile("id", "input a; output b = im(x,y) a(x,y) end").unwrap();
    let opts = AnalysisOptions {
        input_range: (0, 1 << 20),
        ..options()
    };
    let cert = certify_dag(&dag, &opts).unwrap();
    assert_eq!(cert.refuted(), 0, "{}", cert.render());
    assert!(
        cert.obligations.iter().any(|o| matches!(
            &o.status,
            ProofStatus::Fuzzed { code, .. } if *code == "W0508"
        )),
        "{}",
        cert.render()
    );
}

#[test]
fn certificate_diagnostics_and_render_carry_codes() {
    let (plan, net) = netlist_of(Algorithm::UnsharpM, &BitWidths::default());
    let mut bad = net.clone();
    mutate_kernel(&mut bad, |k| {
        Expr::bin(imagen_ir::BinOp::Add, k.clone(), Expr::Const(1))
    });
    let cert = certify_netlist(&plan.dag, &bad, &options());
    let diags = cert.diagnostics();
    assert!(diags.iter().any(|d| d.code == "E0501"), "{diags:?}");
    assert!(cert.render().contains("REFUTED [E0501]"));
    assert_eq!(cert.status(), "refuted");
    // A clean certificate lowers to no diagnostics at all.
    let good = certify_netlist(&plan.dag, &net, &options());
    assert!(good.diagnostics().is_empty());
    assert_eq!(good.status(), "proved");
}
