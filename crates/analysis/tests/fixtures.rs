//! Golden-pinned fixture corpus for the analyzer, plus the lint-clean
//! guarantee over the shipped example pipelines.
//!
//! Each `tests/fixtures/<name>.imagen` is analyzed at the default
//! [`AnalysisOptions`] and its rendered diagnostics are compared byte for
//! byte against `<name>.expected`. Regenerate deliberately with
//! `IMAGEN_BLESS=1 cargo test -p imagen-analysis --test fixtures`.

use imagen_analysis::{analyze, AnalysisOptions};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render(name: &str, src: &str) -> String {
    let report = analyze(name, src, &AnalysisOptions::default());
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

#[test]
fn fixture_corpus_matches_goldens() {
    let dir = fixtures_dir();
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "imagen"))
        .collect();
    cases.sort();
    assert!(cases.len() >= 8, "fixture corpus shrank: {cases:?}");
    for case in cases {
        let name = case.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&case).unwrap();
        let got = render(&name, &src);
        let golden_path = case.with_extension("expected");
        if std::env::var("IMAGEN_BLESS").is_ok() {
            std::fs::write(&golden_path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("{} (IMAGEN_BLESS=1 to create): {e}", golden_path.display())
        });
        assert!(
            got == want,
            "{name} diagnostics drifted; rerun with IMAGEN_BLESS=1 if intended.\n--- got ---\n{got}\n--- want ---\n{want}"
        );
    }
}

#[test]
fn fixture_corpus_exercises_every_pass_family() {
    // The corpus must keep at least one diagnostic from each family so a
    // regression in any pass is visible as golden drift.
    let dir = fixtures_dir();
    let mut all = String::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|x| x == "imagen") {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            all.push_str(&render(&name, &std::fs::read_to_string(&p).unwrap()));
        }
    }
    for code in [
        "E0001", "W0101", "W0102", "W0104", "W0105", "W0201", "N0202",
    ] {
        assert!(all.contains(code), "no fixture emits {code}:\n{all}");
    }
}

/// The Tbl. 3 pipelines shipped under `examples/` must stay lint-clean
/// (no errors, no warnings) at the default analysis options. Width notes
/// (`N0202`) are informational and allowed — the set that carries them is
/// pinned so it cannot grow silently.
#[test]
fn shipped_examples_are_lint_clean() {
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut noteful: Vec<String> = Vec::new();
    let mut seen = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&examples)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "imagen"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let report = analyze(&name, &src, &AnalysisOptions::default());
        assert!(
            report.is_clean(),
            "{name} is not lint-clean: {:?}",
            report.diagnostics
        );
        if report.notes() > 0 {
            noteful.push(name);
        }
        seen += 1;
    }
    assert!(seen >= 8, "example corpus shrank to {seen} pipelines");
    assert_eq!(
        noteful,
        ["harris_m", "harris_s", "xcorr_m"],
        "the set of examples with width notes drifted"
    );
}
