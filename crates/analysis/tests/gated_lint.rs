//! Lint coverage over the gated paper corpus.
//!
//! The structural netlist lints and the schedule invariants were
//! developed against ungated netlists; the power pass's clock gating
//! rewrites the enable fabric, so this suite pins that every Tbl. 3
//! pipeline stays lint-clean *with a [`imagen_rtl::GatingPlan`]
//! attached* — at both datapath widths — and that the schedule lint is
//! equally clean on the plans the netlists came from.

use imagen_algos::Algorithm;
use imagen_analysis::{lint_netlist, lint_plan, AnalysisOptions, Severity};
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::{build_netlist, BitWidths};
use imagen_schedule::{plan_design, ScheduleOptions};

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 32,
        height: 24,
        pixel_bits: 16,
    }
}

fn spec() -> MemorySpec {
    MemorySpec::new(MemBackend::Asic { block_bits: 32768 }, 2)
}

#[test]
fn gated_corpus_stays_lint_clean_at_both_widths() {
    for alg in Algorithm::all() {
        let dag = alg.build();
        let plan = plan_design(
            &dag,
            &geom(),
            &spec(),
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();

        let sched = lint_plan(&plan, &geom(), &spec());
        assert!(
            sched.iter().all(|d| d.severity != Severity::Error),
            "{}: schedule lint errors: {sched:?}",
            alg.name()
        );

        for widths in [BitWidths::default(), BitWidths::wide()] {
            let net = build_netlist(&plan.dag, &plan.design, &widths);
            let gated = imagen_power::gate_clocks(&net);
            assert!(
                gated.is_gated(),
                "{}: gating pass attached no plan",
                alg.name()
            );
            let opts = AnalysisOptions {
                geom: geom(),
                spec: spec(),
                widths,
                ..AnalysisOptions::default()
            };
            let diags = lint_netlist(&gated, &opts);
            assert!(
                diags.is_empty(),
                "{} gated @ {}/{}: {diags:?}",
                alg.name(),
                widths.pixel_bits,
                widths.acc_bits
            );
        }
    }
}
