//! `analyze` is total: for any input — valid, hostile, or random soup —
//! it must return a report, never unwind. The analyzer sits on the same
//! external boundary as `imagen_dsl::compile` (the `lint` command and the
//! batch server's admission check feed it arbitrary user text), so it
//! inherits the same fuzzing obligations, plus one of its own: every
//! diagnostic it emits must render and carry a sane locus.
//!
//! The small geometry keeps the planning/netlist back half fast enough to
//! run under the byte- and token-soup generators.

use imagen_analysis::{analyze, AnalysisOptions, Locus};
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use proptest::prelude::*;

fn options() -> AnalysisOptions {
    AnalysisOptions {
        geom: ImageGeometry {
            width: 16,
            height: 12,
            pixel_bits: 16,
        },
        spec: MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2),
        ..AnalysisOptions::default()
    }
}

/// Analyzes and asserts the result is a value, not a panic, with every
/// diagnostic well-formed.
fn assert_total(src: &str) -> Result<(), TestCaseError> {
    let report = analyze("fuzz", src, &options());
    for d in &report.diagnostics {
        prop_assert!(!d.render().is_empty(), "diagnostics must render");
        prop_assert!(!d.code.is_empty());
        if let Locus::Source { line, col } = d.locus {
            prop_assert!(line >= 1 && col >= 1, "1-based span: {line}:{col}");
        }
    }
    Ok(())
}

/// The language's own lexemes plus near-miss fragments (mirrors the DSL
/// fuzzer's alphabet).
const LEXEMES: &[&str] = &[
    "input",
    "output",
    "im",
    "end",
    "abs",
    "min",
    "max",
    "clamp",
    "select",
    "K0",
    "K1",
    "x",
    "y",
    "(",
    ")",
    ",",
    ";",
    "=",
    "+",
    "-",
    "*",
    "/",
    "<<",
    ">>",
    "<",
    "<=",
    ">",
    ">=",
    "==",
    "!=",
    "0",
    "1",
    "255",
    "2147483647",
    "9223372036854775807",
    "//",
    "/*",
    "*/",
    "\n",
    " ",
    "!",
    "$",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn byte_soup_never_panics(words in proptest::collection::vec(0u16..512, 0..160)) {
        let bytes: Vec<u8> = words.iter().map(|&w| (w & 0xff) as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&src)?;
    }

    #[test]
    fn token_soup_never_panics(picks in proptest::collection::vec(0usize..LEXEMES.len(), 0..100)) {
        let src: String = picks
            .iter()
            .flat_map(|&i| [LEXEMES[i], " "])
            .collect();
        assert_total(&src)?;
    }

    #[test]
    fn extreme_kernels_never_panic(
        dx in -2_200_000i64..2_200_000,
        dy in -40i64..40,
        lit in -9_223_372_036_854_775_807i64..9_223_372_036_854_775_807,
        shift in -65i64..130,
    ) {
        // Well-formed programs stressing the interval arithmetic: huge
        // literals (saturation in the i128 lattice), offsets past the tap
        // guard, out-of-range shift amounts, constant division edges.
        let fmt = |v: i64| {
            if v < 0 {
                format!("-{}", v.unsigned_abs())
            } else {
                format!("+{v}")
            }
        };
        let src = format!(
            "input a;
             b = im(x,y) a(x{}, y{}) * ({lit}) end
             output c = im(x,y) (b(x,y) << ({})) / (b(x,y) - 3) end",
            fmt(dx),
            fmt(dy),
            fmt(shift),
        );
        assert_total(&src)?;
    }
}

/// Deterministic shapes around each pass family's edges.
#[test]
fn audit_corpus_is_total() {
    let cases: &[&str] = &[
        "",
        ";",
        "input",
        "input a; output b = im(x,y) a(x,y)",
        "output b = im(x,y) 7 end",
        "input a; output b = im(x,y) b(x,y) end",
        "input a; output b = im(x,y) a(x,y) / 0 end",
        "input a; output b = im(x,y) a(x,y) << 9223372036854775807 end",
        "input a; output b = im(x,y) -9223372036854775807 * a(x,y) end",
        "input a; dead = im(x,y) a(x,y) end output b = im(x,y) a(x,y) end",
        "input a; output b = im(x,y) a(x-33, y+33) end",
        "input a; output b = im(x,y) clamp(a(x,y), 9, 2) end",
        "input a; output b = im(x,y) select(a(x,y), 1, 0) end",
    ];
    for src in cases {
        let report = analyze("corpus", src, &options());
        for d in &report.diagnostics {
            assert!(!d.render().is_empty());
        }
    }
}
