//! Soundness of the overflow certification, checked differentially.
//!
//! The width/overflow dataflow claims that a certified pipeline (no
//! `W0201`/`N0202`/`E0203`) computes values that always fit the narrow
//! datapath — so interpreting its netlist at the default 16/32 widths and
//! at the saturation-free 64/64 widths must produce identical frames.
//! This test runs that experiment over every Tbl. 3 pipeline and every
//! shipped example on random 7-bit noise frames (the default
//! `input_range` of the analyzer), and also shows the check is not
//! vacuous: an uncertified pipeline really does diverge.

use imagen_algos::{noise_bits, Algorithm};
use imagen_analysis::{analyze, AnalysisOptions};
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::{build_netlist, interpret, BitWidths};
use imagen_schedule::{plan_design, ScheduleOptions};
use imagen_sim::Image;
use std::path::Path;

const SEEDS: [u64; 2] = [7, 1234];

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 32,
        height: 24,
        pixel_bits: 16,
    }
}

fn spec() -> MemorySpec {
    MemorySpec::new(MemBackend::Asic { block_bits: 32768 }, 2)
}

fn options() -> AnalysisOptions {
    AnalysisOptions {
        geom: geom(),
        spec: spec(),
        ..AnalysisOptions::default()
    }
}

/// Interprets `src` at both datapath widths and returns whether every
/// output frame matched.
fn widths_agree(name: &str, src: &str) -> bool {
    let dag = imagen_dsl::compile(name, src).unwrap();
    let plan = plan_design(
        &dag,
        &geom(),
        &spec(),
        ScheduleOptions::default(),
        DesignStyle::Ours,
    )
    .unwrap();
    let narrow = build_netlist(&plan.dag, &plan.design, &BitWidths::default());
    let wide = build_netlist(&plan.dag, &plan.design, &BitWidths::wide());
    let inputs = plan.dag.stages().filter(|(_, s)| s.is_input()).count();
    for seed in SEEDS {
        let frames: Vec<Image> = (0..inputs)
            .map(|k| {
                Image::from_fn(geom().width, geom().height, |x, y| {
                    noise_bits(seed + k as u64, x, y, 7)
                })
            })
            .collect();
        let a = interpret(&narrow, &frames).unwrap();
        let b = interpret(&wide, &frames).unwrap();
        if a.output_images != b.output_images {
            return false;
        }
    }
    true
}

#[test]
fn certified_pipelines_never_diverge_across_widths() {
    let mut corpus: Vec<(String, String)> = Algorithm::all()
        .iter()
        .map(|a| (a.name().to_string(), a.dsl_source().to_string()))
        .collect();
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    for entry in std::fs::read_dir(&examples).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|x| x == "imagen") {
            corpus.push((
                p.file_stem().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            ));
        }
    }
    let mut certified = 0usize;
    for (name, src) in &corpus {
        let report = analyze(name, src, &options());
        assert_eq!(report.errors(), 0, "{name}: {:?}", report.diagnostics);
        if !report.certified_overflow_free() {
            continue;
        }
        certified += 1;
        assert!(
            widths_agree(name, src),
            "{name} was certified overflow-free but diverged between 16/32 and 64/64"
        );
    }
    assert!(
        certified >= 3,
        "only {certified} corpus pipelines certified — the check is near-vacuous"
    );
}

#[test]
fn uncertified_pipeline_really_diverges() {
    // `raw << 9` pushes 7-bit inputs to 65024, past the 16-bit signed
    // output register: the analyzer refuses to certify it, and the
    // narrow interpretation really does wrap where the wide one does not.
    let src = "input raw; output out = im(x,y) raw(x,y) << 9 end";
    let report = analyze("shift9", src, &options());
    assert!(
        !report.certified_overflow_free(),
        "{:?}",
        report.diagnostics
    );
    assert!(
        !widths_agree("shift9", src),
        "expected a genuine width divergence on the uncertified pipeline"
    );
}
