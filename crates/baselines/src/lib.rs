//! # imagen-baselines
//!
//! The three prior-work accelerator generators the [ImaGen] paper compares
//! against (Sec. 7, "Baselines and Variants"):
//!
//! * [`generate_fixynn`] — **FixyNN** \[38\]: the classic line-buffered
//!   design restricted to *single-port* SRAMs. Reuses ImaGen's optimizer
//!   with `P = 1`, which forces every pair of accessors to be fully
//!   disjoint (more buffered rows, more blocks, but the cheapest
//!   per-block area/energy).
//! * [`generate_darkroom`] — **Darkroom** \[16\]: *linearizes*
//!   multiple-consumer pipelines with relay stages (Sec. 3.1, Fig. 3) and
//!   schedules the result on dual-port SRAMs. The relays' extra line
//!   buffers are the memory overhead the paper measures.
//! * [`generate_soda`] — **SODA** \[7\]: FIFO-based line buffers on
//!   dual-port SRAMs. Each window row is a FIFO segment; with multiple
//!   consumers the shared segments split (Fig. 4b). The head segment (the
//!   line being written) lives in DFFs, which is why SODA's *SRAM* figure
//!   beats ImaGen's while its *power* loses: every FIFO block serves two
//!   accesses (push + pop) every cycle.
//!
//! All three produce the same [`imagen_mem::Design`] artifact as the
//! ImaGen planner, so the simulator and cost models evaluate every
//! generator identically.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod soda;

pub use soda::generate_soda;

use imagen_ir::{linearize, Dag};
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_schedule::{plan_design, Plan, PlanError, ScheduleOptions};

/// Generates a FixyNN-style design: single-port SRAMs, fully disjoint
/// accesses.
///
/// # Errors
///
/// Propagates [`PlanError`] from the scheduler.
pub fn generate_fixynn(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<Plan, PlanError> {
    let spec = MemorySpec::new(backend, 1);
    let mut plan = plan_design(
        dag,
        geom,
        &spec,
        ScheduleOptions::default(),
        DesignStyle::FixyNn,
    )?;
    plan.design.style = DesignStyle::FixyNn;
    Ok(plan)
}

/// Generates a Darkroom-style design: algorithm linearization plus
/// dual-port SRAM line buffers.
///
/// The returned plan's `dag` is the *linearized* pipeline (with relay
/// stages); simulate against that DAG.
///
/// # Errors
///
/// Propagates [`PlanError`]; linearization itself cannot fail on a
/// validated DAG.
pub fn generate_darkroom(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<Plan, PlanError> {
    let lin = linearize(dag).expect("validated DAGs linearize");
    let spec = MemorySpec::new(backend, 2);
    let mut plan = plan_design(
        &lin.dag,
        geom,
        &spec,
        ScheduleOptions::default(),
        DesignStyle::Darkroom,
    )?;
    plan.design.style = DesignStyle::Darkroom;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::Expr;
    use imagen_mem::Design;

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    fn multi_consumer() -> Dag {
        let mut dag = Dag::new("mc");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(
                    imagen_ir::BinOp::Add,
                    Expr::sum((0..4).map(|i| Expr::tap(0, i % 2, i / 2))),
                    box3(1),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        dag
    }

    fn geom() -> ImageGeometry {
        ImageGeometry {
            width: 24,
            height: 16,
            pixel_bits: 16,
        }
    }

    fn backend() -> MemBackend {
        MemBackend::Asic {
            block_bits: 2 * 24 * 16,
        }
    }

    fn ours(dag: &Dag) -> Design {
        let spec = MemorySpec::new(backend(), 2);
        plan_design(
            dag,
            &geom(),
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap()
        .design
    }

    #[test]
    fn fixynn_uses_single_port_and_more_memory() {
        let dag = multi_consumer();
        let fx = generate_fixynn(&dag, &geom(), backend()).unwrap().design;
        assert_eq!(fx.style, DesignStyle::FixyNn);
        assert!(fx
            .buffers
            .iter()
            .flat_map(|b| &b.blocks)
            .all(|b| b.ports == 1));
        let ours = ours(&dag);
        assert!(
            fx.sram_kb() >= ours.sram_kb(),
            "FixyNN must not beat Ours on SRAM: {} vs {}",
            fx.sram_kb(),
            ours.sram_kb()
        );
    }

    #[test]
    fn darkroom_adds_relay_buffer() {
        let dag = multi_consumer();
        let dk = generate_darkroom(&dag, &geom(), backend()).unwrap();
        assert_eq!(dk.design.style, DesignStyle::Darkroom);
        assert_eq!(dk.dag.num_stages(), 4, "one relay added");
        assert_eq!(dk.design.buffers.len(), 3, "relay owns a buffer too");
        let ours = ours(&dag);
        assert!(
            dk.design.sram_kb() >= ours.sram_kb(),
            "Darkroom must not beat Ours: {} vs {}",
            dk.design.sram_kb(),
            ours.sram_kb()
        );
    }

    #[test]
    fn darkroom_single_consumer_matches_ours() {
        // Without multi-consumer stages linearization is a no-op, so
        // Darkroom == Ours on dual-port SRAM.
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag.add_stage("K2", &[k1], box3(0)).unwrap();
        dag.mark_output(k2);
        let dk = generate_darkroom(&dag, &geom(), backend()).unwrap().design;
        let us = ours(&dag);
        assert_eq!(dk.sram_kb(), us.sram_kb());
        assert_eq!(dk.block_count(), us.block_count());
    }
}
