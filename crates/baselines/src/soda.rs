//! SODA-style FIFO line-buffer generator (paper Sec. 3.1, Fig. 4).
//!
//! SODA implements each line buffer as a chain of FIFOs on dual-port
//! memories. Per producer:
//!
//! * the consumer's window rows become full-line FIFO segments — a
//!   consumer of stencil height `SH` needs `SH - 1` full lines in SRAM;
//! * the *head* segment (the line currently being written, a handful of
//!   elements deep) is a DFF shift register, which is why SODA's SRAM
//!   figure undercuts the classic design (the paper measures Ours ≈ 31%
//!   higher SRAM than SODA at 320p);
//! * with multiple consumers each shared segment must split into two
//!   FIFOs (Fig. 4b) — two more blocks per shared line — so SODA pays for
//!   multi-consumer stages in *block count*;
//! * every FIFO block performs one push and one pop per cycle: two
//!   accesses per block per cycle, the ~35% BRAM power penalty the paper
//!   measures (Sec. 3.1).
//!
//! FIFOs are dataflow-scheduled, so the stage start cycles are the ASAP
//! dependency schedule; there are no port-contention constraints to solve.

use imagen_ir::{Dag, StageId};
use imagen_mem::{
    BlockRole, BufferPlan, Design, DesignStyle, ImageGeometry, MemBackend, PeModel, PhysBlock,
    CLOCK_MHZ,
};
use imagen_schedule::{asap_schedule, dependency_gap, row_periods, DiffGe, Plan, PlanError, Schedule};

/// Generates a SODA-style FIFO design.
///
/// # Errors
///
/// Propagates [`PlanError::Schedule`] if the dependency system is
/// infeasible (cannot happen for validated DAGs).
pub fn generate_soda(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<Plan, PlanError> {
    // ASAP dependency schedule (multirate-aware: each producer's row
    // period in the common base clock scales the gap).
    let periods = row_periods(dag, geom.width);
    let deps: Vec<DiffGe> = dag
        .edges()
        .map(|(_, e)| DiffGe {
            a: e.consumer(),
            b: e.producer(),
            k: dependency_gap(e.window(), periods[e.producer().index()]),
        })
        .collect();
    let starts = asap_schedule(dag.num_stages(), &deps, &[]).map_err(PlanError::Schedule)?;

    let block_bits = backend.block_bits();
    let row_bits = geom.row_bits();
    let mut buffers = Vec::new();
    for p in dag.buffered_stages() {
        buffers.push(plan_fifo_buffer(
            dag, p, geom, block_bits, row_bits, &starts,
        ));
    }

    // PE / SRA costs (identical machinery to the planner's).
    let mut pe_area = 0.0;
    let mut pe_pj = 0.0;
    let mut sra_bits = 0u64;
    for (_, s) in dag.stages() {
        if let imagen_ir::StageKind::Compute { kernel } = s.kind() {
            let c = kernel.op_census();
            pe_area += PeModel::area_mm2(c.adds, c.muls, c.divs, c.cmps, c.muxes);
            pe_pj += PeModel::energy_pj(c.adds, c.muls, c.divs, c.cmps, c.muxes);
        }
    }
    for (_, e) in dag.edges() {
        sra_bits += e.window().height as u64 * e.window().width() as u64 * geom.pixel_bits as u64;
    }

    let design = Design {
        name: dag.name().to_string(),
        geometry: *geom,
        backend,
        style: DesignStyle::Soda,
        start_cycles: starts.iter().map(|&s| s as u64).collect(),
        buffers,
        pe_area_mm2: pe_area,
        pe_power_mw: imagen_mem::tech::pj_per_cycle_to_mw(pe_pj, CLOCK_MHZ),
        sra_bits,
    };

    let (buffer_rows, total_rows) = imagen_schedule::size_buffers(dag, geom.width, &starts);
    let schedule = Schedule {
        starts,
        buffer_rows,
        total_rows,
        report: Default::default(),
    };
    Ok(Plan {
        dag: dag.clone(),
        schedule,
        design,
    })
}

/// Plans one producer's FIFO chain.
///
/// The chain depth for each consumer is its full *reuse distance* under
/// the dataflow (ASAP) schedule: FIFOs must hold every pixel from the
/// moment the producer emits it until the consumer's last tap — including
/// the skew introduced by the consumer's own upstream pipeline. This is
/// what makes SODA pay on multiple-consumer graphs: a late consumer
/// (e.g. the final blend of a denoiser) forces a deep FIFO on data that a
/// rotating line buffer would have simply retained in place.
fn plan_fifo_buffer(
    dag: &Dag,
    p: StageId,
    geom: &ImageGeometry,
    block_bits: u64,
    row_bits: u64,
    starts: &[i64],
) -> BufferPlan {
    let w = geom.width as i64;
    // Consumers sorted by how deep into the history they reach: rows of
    // retention = ceil((S_c - S_p - lag*W) / W), never less than the
    // window reach itself.
    let depths: Vec<u32> = dag
        .consumer_edges(p)
        .map(|(_, e)| {
            let d = starts[e.consumer().index()] - starts[p.index()] - e.window().lag as i64 * w;
            let skew_rows = (d + w - 1).div_euclid(w).max(1) as u32;
            skew_rows.max(e.window().newest_row() + 1)
        })
        .collect();
    let max_depth = depths.iter().copied().max().unwrap_or(1);
    let n_consumers = depths.len() as u32;

    // Full-line FIFO segments: lines 1..max_depth-1 relative to the head.
    // A line needed by k consumers beyond the first splits into k FIFOs
    // (Fig. 4b); each split chain carries the *full* pixel stream — the
    // second pop port is bought by duplicating the data flow, which is
    // exactly why SODA pays in blocks and in write energy on
    // multiple-consumer pipelines.
    let mut blocks = Vec::new();
    for line in 1..max_depth {
        // How many consumers reach at least this deep?
        let sharers = depths.iter().filter(|&&d| d > line).count() as u32;
        let splits = sharers.max(1);
        let blocks_per_line = row_bits.div_ceil(block_bits).max(1) as u32;
        for _split in 0..splits {
            let mut remaining = row_bits;
            for _ in 0..blocks_per_line {
                let used = remaining.min(block_bits);
                remaining -= used;
                blocks.push(PhysBlock {
                    capacity_bits: block_bits,
                    used_bits: used,
                    ports: 2,
                    role: BlockRole::FifoSegment,
                    // FIFO property: one push + one pop every cycle — the
                    // push re-writes the pixel at every segment, which is
                    // where FIFO designs lose power.
                    avg_accesses_per_cycle: 2.0,
                    avg_writes_per_cycle: 1.0,
                    peak_accesses: 2,
                });
            }
        }
    }

    // Head segment in DFFs: the partial line between the writer and the
    // first tap — a few elements per consumer (we charge one stencil-width
    // worth per consumer chain, Fig. 4's "2 here" example).
    let head_px: u64 = dag
        .consumer_edges(p)
        .map(|(_, e)| e.window().width() as u64)
        .sum::<u64>()
        .max(1);
    let dff_bits = head_px * geom.pixel_bits as u64 * n_consumers.min(1) as u64;

    BufferPlan {
        stage: p.index(),
        logical_rows: max_depth,
        // The rotating functional model needs the full reuse distance.
        phys_rows: max_depth,
        rows_per_block: 1,
        blocks_per_row: row_bits.div_ceil(block_bits).max(1) as u32,
        blocks,
        dff_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::Expr;

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    fn geom() -> ImageGeometry {
        ImageGeometry {
            width: 24,
            height: 16,
            pixel_bits: 16,
        }
    }

    fn backend() -> MemBackend {
        MemBackend::Asic {
            block_bits: 2 * 24 * 16,
        }
    }

    #[test]
    fn single_consumer_uses_sh_minus_one_lines() {
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        let plan = generate_soda(&dag, &geom(), backend()).unwrap();
        let buf = &plan.design.buffers[0];
        // 3-row window -> 2 full-line FIFOs in SRAM + DFF head.
        assert_eq!(buf.blocks.len(), 2);
        assert!(buf.dff_bits > 0);
        assert!(buf
            .blocks
            .iter()
            .all(|b| b.role == BlockRole::FifoSegment && b.avg_accesses_per_cycle == 2.0));
    }

    #[test]
    fn multi_consumer_splits_fifos() {
        let mut dag = Dag::new("mc");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(imagen_ir::BinOp::Add, box3(0), box3(1)),
            )
            .unwrap();
        dag.mark_output(k2);
        let plan = generate_soda(&dag, &geom(), backend()).unwrap();
        // K0's buffer: both consumers reach 3 rows deep (K2's window on K0
        // sits at lag 1 -> depth 4); shared lines split into 2 FIFOs.
        let buf = &plan.design.buffers[0];
        assert!(
            buf.blocks.len() >= 4,
            "shared lines must split: got {} blocks",
            buf.blocks.len()
        );
    }

    #[test]
    fn soda_uses_asap_schedule() {
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag.add_stage("K2", &[k1], box3(0)).unwrap();
        dag.mark_output(k2);
        let plan = generate_soda(&dag, &geom(), backend()).unwrap();
        // ASAP: exactly the dependency gaps (2W+1 = 49 at W=24).
        assert_eq!(plan.schedule.starts, vec![0, 49, 98]);
        assert_eq!(plan.design.style, DesignStyle::Soda);
    }

    #[test]
    fn soda_sram_below_ours_single_consumer() {
        // The headline SODA property: fewer SRAM bits for single-consumer
        // chains (head line in DFFs).
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        let soda = generate_soda(&dag, &geom(), backend()).unwrap().design;
        let spec = imagen_mem::MemorySpec::new(backend(), 2);
        let ours = imagen_schedule::plan_design(
            &dag,
            &geom(),
            &spec,
            imagen_schedule::ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap()
        .design;
        assert!(
            soda.sram_kb() < ours.sram_kb(),
            "SODA {} KB vs Ours {} KB",
            soda.sram_kb(),
            ours.sram_kb()
        );
    }
}
