//! Criterion bench for activity tracking: the cost of interpreting a
//! netlist with the [`ActivityTrace`] sink attached versus plain
//! interpretation, and of the clock-gated netlist — the overhead the
//! measured-power path pays on top of the verification loop.
//!
//! The companion unit test (`imagen_rtl::interp::tests::
//! tracing_changes_nothing`) pins that the sink changes no interpreter
//! outputs; this bench quantifies what it costs.
//!
//! [`ActivityTrace`]: imagen_rtl::ActivityTrace

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::{sample_pattern, Algorithm, TestPattern};
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_power::gate_clocks;
use imagen_rtl::{build_netlist, interpret, interpret_with_trace, BitWidths};
use imagen_sim::Image;

fn bench_activity(c: &mut Criterion) {
    let geom = ImageGeometry {
        width: 120,
        height: 80,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    let out = Compiler::new(geom, spec)
        .compile_dag(&Algorithm::UnsharpM.build())
        .unwrap();
    let input = Image::from_fn(geom.width, geom.height, |x, y| {
        sample_pattern(TestPattern::Noise, 5, x, y)
    });
    let net = build_netlist(&out.plan.dag, &out.plan.design, &BitWidths::default());
    let gated = gate_clocks(&net);

    let mut group = c.benchmark_group("activity");
    group.sample_size(10);
    group.bench_function("interpret_plain", |b| {
        b.iter(|| {
            interpret(
                std::hint::black_box(&net),
                std::hint::black_box(std::slice::from_ref(&input)),
            )
            .unwrap()
        })
    });
    group.bench_function("interpret_traced", |b| {
        b.iter(|| {
            interpret_with_trace(
                std::hint::black_box(&net),
                std::hint::black_box(std::slice::from_ref(&input)),
            )
            .unwrap()
        })
    });
    group.bench_function("interpret_gated_traced", |b| {
        b.iter(|| {
            interpret_with_trace(
                std::hint::black_box(&gated),
                std::hint::black_box(std::slice::from_ref(&input)),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_activity);
criterion_main!(benches);
