//! Ablation bench for the Sec. 6 line-coalescing rewrite and the exact
//! (`TotalRows`) vs. paper (`TotalDelay`) objective: compile-time cost of
//! each design choice DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::Algorithm;
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_schedule::{ScheduleOptions, SizeObjective};

fn bench_coalescing(c: &mut Criterion) {
    let geom = ImageGeometry::p320();
    let mut group = c.benchmark_group("coalescing_ablation");
    group.sample_size(20);
    let dag = Algorithm::CannyS.build();
    let plain = MemorySpec::new(MemBackend::asic_default(), 2);
    let lc = MemorySpec::new(MemBackend::asic_default(), 2).with_coalescing();

    group.bench_function("canny_s_plain", |b| {
        b.iter(|| {
            Compiler::new(geom, plain.clone())
                .compile_dag(std::hint::black_box(&dag))
                .unwrap()
        })
    });
    group.bench_function("canny_s_coalesced", |b| {
        b.iter(|| {
            Compiler::new(geom, lc.clone())
                .compile_dag(std::hint::black_box(&dag))
                .unwrap()
        })
    });
    group.bench_function("canny_s_exact_rows_objective", |b| {
        b.iter(|| {
            Compiler::new(geom, plain.clone())
                .with_options(ScheduleOptions {
                    objective: SizeObjective::TotalRows,
                    ..Default::default()
                })
                .compile_dag(std::hint::black_box(&dag))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coalescing);
criterion_main!(benches);
