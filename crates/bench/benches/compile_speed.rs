//! Criterion bench for Sec. 8.2: end-to-end compile time (formulation +
//! ILP + planning + RTL) per evaluation algorithm at 320p.

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::Algorithm;
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};

fn bench_compile(c: &mut Criterion) {
    let geom = ImageGeometry::p320();
    let mut group = c.benchmark_group("compile_speed");
    for alg in Algorithm::all() {
        let dag = alg.build();
        let spec = MemorySpec::new(MemBackend::asic_default(), 2);
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                Compiler::new(geom, spec.clone())
                    .compile_dag(std::hint::black_box(&dag))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
