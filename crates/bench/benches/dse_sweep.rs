//! Criterion bench for the Sec. 8.5 design-space exploration engine:
//! Canny-s's 256-point DP/DPLC sweep at 320p.
//!
//! Three variants:
//!
//! * `per_point_compiler` — the pre-session architecture: one cold
//!   `Compiler::compile_dag` per point, RTL included, strictly
//!   sequential;
//! * `session_sequential` — shared constraint skeleton + memoized
//!   session + skip-RTL pricing, one worker;
//! * `session_parallel` — the same engine fanned out over all available
//!   cores;
//! * `session_parallel_measured` — the shipping default: measured energy
//!   (two netlist interpretations per point) folded into the sweep.
//!
//! A summary line prints the measured end-to-end speedup of the parallel
//! memoized engine over the per-point compiler loop.

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::Algorithm;
use imagen_core::Compiler;
use imagen_dse::{explore, ExploreOptions, ExploreStrategy, MeasureMode, StageChoice};
use imagen_ir::Dag;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec, StageMemConfig};
use std::time::Instant;

/// The old sweep loop: a fresh end-to-end compile (constraints + ILP +
/// pricing + RTL) per design point.
fn per_point_compiler_sweep(dag: &Dag, geom: ImageGeometry, backend: MemBackend) {
    let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
    let n = buffered.len();
    for mask in 0u32..(1 << n) {
        let mut spec = MemorySpec::new(backend, 2);
        let mut choices = Vec::with_capacity(n);
        for (bit, &stage) in buffered.iter().enumerate() {
            let choice = if mask & (1 << bit) != 0 {
                StageChoice::Dplc
            } else {
                StageChoice::Dp
            };
            choices.push(choice);
            spec.set_stage(
                stage,
                StageMemConfig {
                    ports: 2,
                    coalesce: choice == StageChoice::Dplc,
                },
            );
        }
        let out = Compiler::new(geom, spec).compile_dag(dag).unwrap();
        std::hint::black_box(out.plan.design.total_area_mm2());
    }
}

fn engine_sweep(
    dag: &Dag,
    geom: ImageGeometry,
    backend: MemBackend,
    threads: usize,
    measure: MeasureMode,
) {
    let res = explore(
        dag,
        &geom,
        backend,
        ExploreOptions {
            strategy: ExploreStrategy::Exhaustive,
            threads,
            measure,
        },
    )
    .unwrap();
    std::hint::black_box(res.points.len());
}

fn bench_dse_sweep(c: &mut Criterion) {
    let geom = ImageGeometry::p320();
    let backend = MemBackend::asic_default();
    let dag = Algorithm::CannyS.build(); // 8 buffered stages -> 256 points

    let mut group = c.benchmark_group("dse_sweep_canny_s_256");
    group.sample_size(3);
    group.bench_function("per_point_compiler", |b| {
        b.iter(|| per_point_compiler_sweep(&dag, geom, backend))
    });
    // Pricing-only variants, apples-to-apples with the per-point loop
    // (which never measures).
    group.bench_function("session_sequential", |b| {
        b.iter(|| engine_sweep(&dag, geom, backend, 1, MeasureMode::Off))
    });
    group.bench_function("session_parallel", |b| {
        b.iter(|| engine_sweep(&dag, geom, backend, 0, MeasureMode::Off))
    });
    // The shipping default: every point's netlist interpreted (ungated +
    // gated) during the sweep — affordable because the interpreter
    // compiles each netlist to a flat evaluation program.
    group.bench_function("session_parallel_measured", |b| {
        b.iter(|| engine_sweep(&dag, geom, backend, 0, MeasureMode::default()))
    });
    group.finish();

    // Headline: end-to-end speedup of the parallel memoized engine over
    // the per-point compiler loop (best of 3 each).
    let best = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let old = best(&|| per_point_compiler_sweep(&dag, geom, backend));
    let new = best(&|| engine_sweep(&dag, geom, backend, 0, MeasureMode::Off));
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "dse_sweep summary: per-point compiler {:.1?} -> parallel session {:.1?} \
         ({:.2}x speedup on {} thread(s))",
        old,
        new,
        old.as_secs_f64() / new.as_secs_f64(),
        threads
    );
}

criterion_group!(benches, bench_dse_sweep);
criterion_main!(benches);
