//! Criterion bench for the ILP substrate: exact rational simplex and the
//! difference-constraint fast path on scheduling-shaped systems.

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_ilp::{DiffSystem, LinExpr, Model, Sense};

/// Builds a chain-scheduling ILP with `n` stages and aux retire vars.
fn chain_model(n: usize, w: i64) -> Model {
    let mut m = Model::new("chain");
    let s: Vec<_> = (0..n).map(|i| m.add_int_var(format!("s{i}"))).collect();
    let mut obj = LinExpr::zero();
    for i in 1..n {
        m.add_diff_ge(s[i], s[i - 1], 2 * w + 1, "dep");
        let t = m.add_int_var(format!("t{i}"));
        m.add_diff_ge(t, s[i], 0, "retire");
        m.add_diff_ge(t, s[i - 1], w, "minrow");
        obj = obj + LinExpr::from(t) - LinExpr::from(s[i - 1]);
    }
    m.set_objective(Sense::Minimize, obj);
    m
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_solver");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    for n in [8usize, 16, 32] {
        let m = chain_model(n, 480);
        group.bench_function(format!("simplex_bnb_{n}_stages"), |b| {
            b.iter(|| std::hint::black_box(&m).solve().unwrap())
        });
    }
    let mut sys = DiffSystem::new(64);
    for i in 1..64 {
        sys.add_ge(i, i - 1, 961);
        if i >= 3 {
            sys.add_ge(i, i - 3, 2 * 961);
        }
    }
    group.bench_function("diff_system_64_vars", |b| {
        b.iter(|| std::hint::black_box(&sys).minimal_solution().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
