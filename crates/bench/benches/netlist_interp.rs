//! Criterion bench for the RTL backend's netlist path: elaboration
//! (`build_netlist`), Verilog rendering (`emit_verilog`) and the
//! executable-netlist interpreter (`interpret`) on a representative
//! pipeline — the costs the compile and verification loops pay per
//! design.

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::{sample_pattern, Algorithm, TestPattern};
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::{build_netlist, emit_verilog, interpret, BitWidths};
use imagen_sim::Image;

fn bench_netlist(c: &mut Criterion) {
    let geom = ImageGeometry {
        width: 120,
        height: 80,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    let out = Compiler::new(geom, spec)
        .compile_dag(&Algorithm::UnsharpM.build())
        .unwrap();
    let input = Image::from_fn(geom.width, geom.height, |x, y| {
        sample_pattern(TestPattern::Noise, 3, x, y)
    });
    let net = build_netlist(&out.plan.dag, &out.plan.design, &BitWidths::default());

    let mut group = c.benchmark_group("netlist");
    group.sample_size(10);
    group.bench_function("build", |b| {
        b.iter(|| {
            build_netlist(
                std::hint::black_box(&out.plan.dag),
                std::hint::black_box(&out.plan.design),
                &BitWidths::default(),
            )
        })
    });
    group.bench_function("emit", |b| {
        b.iter(|| emit_verilog(std::hint::black_box(&net)))
    });
    group.bench_function("interpret", |b| {
        b.iter(|| {
            interpret(
                std::hint::black_box(&net),
                std::hint::black_box(std::slice::from_ref(&input)),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_netlist);
criterion_main!(benches);
