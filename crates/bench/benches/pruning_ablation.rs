//! Ablation bench for Sec. 5.4 constraint pruning: compile time with and
//! without pruning on multiple-consumer algorithms (the paper reports a
//! 4× average speedup; Denoise-m explodes combinatorially without it, so
//! it is benchmarked only with pruning plus a one-shot unpruned probe).

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::Algorithm;
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_schedule::ScheduleOptions;

fn bench_pruning(c: &mut Criterion) {
    let geom = ImageGeometry::p320();
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    let mut group = c.benchmark_group("pruning_ablation");
    group.sample_size(20);
    for alg in [Algorithm::CannyM, Algorithm::HarrisM, Algorithm::UnsharpM] {
        let dag = alg.build();
        group.bench_function(format!("{}_pruned", alg.name()), |b| {
            b.iter(|| {
                Compiler::new(geom, spec.clone())
                    .compile_dag(std::hint::black_box(&dag))
                    .unwrap()
            })
        });
        group.bench_function(format!("{}_unpruned", alg.name()), |b| {
            b.iter(|| {
                Compiler::new(geom, spec.clone())
                    .with_options(ScheduleOptions {
                        pruning: false,
                        ..Default::default()
                    })
                    .compile_dag(std::hint::black_box(&dag))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
