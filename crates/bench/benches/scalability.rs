//! Criterion bench for the Sec. 8.2 scalability sweep: compile time vs.
//! pipeline length on synthetic pipelines (a third multi-consumer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imagen_algos::synthetic_pipeline;
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};

fn bench_scalability(c: &mut Criterion) {
    let geom = ImageGeometry::p320();
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    for stages in [9usize, 18, 30] {
        let dag = synthetic_pipeline(stages, 2023);
        let spec = MemorySpec::new(MemBackend::asic_default(), 2);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &dag, |b, dag| {
            b.iter(|| {
                Compiler::new(geom, spec.clone())
                    .compile_dag(std::hint::black_box(dag))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
