//! Criterion bench for the cycle-level simulator (the paper's ASIC
//! evaluation backend): cycles per second on a representative pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use imagen_algos::{sample_pattern, Algorithm, TestPattern};
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_sim::{simulate, Image};

fn bench_sim(c: &mut Criterion) {
    let geom = ImageGeometry {
        width: 120,
        height: 80,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(6));
    for alg in [Algorithm::UnsharpM, Algorithm::CannyM] {
        let out = Compiler::new(geom, spec.clone())
            .compile_dag(&alg.build())
            .unwrap();
        let input = Image::from_fn(geom.width, geom.height, |x, y| {
            sample_pattern(TestPattern::Noise, 1, x, y)
        });
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                simulate(
                    std::hint::black_box(&out.plan.dag),
                    std::hint::black_box(&out.plan.design),
                    std::hint::black_box(std::slice::from_ref(&input)),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
