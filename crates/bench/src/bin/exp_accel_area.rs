//! Reproduces the **Sec. 8.3 accelerator-level results**: total area,
//! the memory share of it (paper: 79.8% @320p, 92.7% @1080p on average),
//! and total-area savings of Ours+LC over FixyNN/Darkroom.

use imagen_algos::Algorithm;
use imagen_bench::{asic_backend, evaluate, geom_1080, geom_320, reduction_pct};
use imagen_mem::DesignStyle;

fn main() {
    for (geom, label) in [(geom_320(), "320p"), (geom_1080(), "1080p")] {
        println!("\n# Sec. 8.3 — Accelerator area @{label}\n");
        println!("| Algorithm | style | total mm² | memory mm² | memory share |");
        println!("|---|---|---|---|---|");
        let mut shares = Vec::new();
        let mut totals = Vec::new();
        let mut per_style: Vec<(DesignStyle, Vec<f64>)> = Vec::new();
        for alg in Algorithm::all() {
            for e in evaluate(alg, &geom, asic_backend()) {
                let d = &e.plan.design;
                let share = d.memory_area_fraction();
                if e.style == DesignStyle::Ours {
                    shares.push(share);
                    totals.push(d.total_area_mm2());
                }
                match per_style.iter_mut().find(|(s, _)| *s == e.style) {
                    Some((_, v)) => v.push(d.total_area_mm2()),
                    None => per_style.push((e.style, vec![d.total_area_mm2()])),
                }
                println!(
                    "| {} | {} | {:.3} | {:.3} | {:.1}% |",
                    alg.name(),
                    e.style.label(),
                    d.total_area_mm2(),
                    d.memory_area_mm2(),
                    100.0 * share
                );
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "\nAverage memory share of total area (Ours): {:.1}% (paper: {} on average)",
            100.0 * avg(&shares),
            if geom.width == 480 { "79.8%" } else { "92.7%" }
        );
        println!(
            "Average total area (Ours): {:.2} mm² (paper: {} mm² average)",
            avg(&totals),
            if geom.width == 480 { "0.65" } else { "1.84" }
        );
        let style_avg = |s: DesignStyle| {
            per_style
                .iter()
                .find(|(st, _)| *st == s)
                .map(|(_, v)| avg(v))
        };
        let best = style_avg(DesignStyle::OursLc).or(style_avg(DesignStyle::Ours));
        if let (Some(best), Some(fx), Some(dk)) = (
            best,
            style_avg(DesignStyle::FixyNn),
            style_avg(DesignStyle::Darkroom),
        ) {
            println!(
                "Total-area saving of Ours{} vs FixyNN: {:+.1}% (paper: {}), vs Darkroom: {:+.1}% (paper: {})",
                if geom.width == 480 { "+LC" } else { "" },
                reduction_pct(fx, best),
                if geom.width == 480 { "51.2%" } else { "27.9%" },
                reduction_pct(dk, best),
                if geom.width == 480 { "41.9%" } else { "12.9%" },
            );
        }
    }
}
