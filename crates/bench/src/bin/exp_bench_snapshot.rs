//! Machine-readable benchmark snapshot (`BENCH_9.json`).
//!
//! Re-runs scaled-down versions of the three hot-loop criterion benches
//! — `netlist_interp`, `activity_interp` and `dse_sweep` — plus a
//! `serve_throughput` group that drives the real `imagen serve` binary
//! with mixed cold/warm traffic, and emits one JSON object with the
//! median wall-clock of each micro-run plus enough environment metadata
//! to interpret the numbers later (rustc, target arch/OS, thread count,
//! smoke mode, geometry). CI archives the output so perf regressions
//! show up as a diffable artifact rather than a scrollback of criterion
//! text.
//!
//! Usage: `exp_bench_snapshot [-o BENCH_9.json]` — prints the JSON to
//! stdout unless `-o` names a file. Honors `IMAGEN_SMOKE` (fewer reps,
//! smaller frame). `imagen bench diff <old> <new>` compares two
//! snapshots and flags regressions; three or more files give a history
//! view.

use imagen_algos::{sample_pattern, Algorithm, TestPattern};
use imagen_bench::smoke_mode;
use imagen_core::Compiler;
use imagen_dse::{explore, ExploreOptions, ExploreStrategy, MeasureMode};
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_power::gate_clocks;
use imagen_rtl::{build_netlist, emit_verilog, interpret, interpret_with_trace, BitWidths};
use imagen_sim::Image;
use std::time::Instant;

/// Median wall-clock (ms) of `reps` timed runs after one warm-up.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn rustc_version() -> String {
    std::process::Command::new(std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into()))
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// Pipes `lines` through `imagen serve --threads N` (stdin batch mode)
/// and returns stdout (one response line per request, request order).
fn serve_batch(bin: &std::path::Path, threads: usize, lines: &str) -> Result<String, String> {
    use std::process::{Command, Stdio};
    let mut child = Command::new(bin)
        .args(["serve", "--threads", &threads.to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    use std::io::Write;
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(lines.as_bytes())
        .map_err(|e| format!("write to serve: {e}"))?;
    let out = child
        .wait_with_output()
        .map_err(|e| format!("wait for serve: {e}"))?;
    if !out.status.success() {
        return Err(format!("serve exited {:?}", out.status.code()));
    }
    String::from_utf8(out.stdout).map_err(|e| format!("serve stdout not UTF-8: {e}"))
}

/// Pulls the integer value of `"key":<n>` out of a response line.
fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// End-to-end serve throughput: ms-per-request medians for cold
/// (first-sight pipeline) and warm (cache-hit recompile) compile
/// requests, measured through the real binary. Also asserts the
/// protocol's byte-identity contract — sequential and threaded runs of
/// the same batch must produce identical bytes — under the
/// instrumented build. Returns `None` (with a stderr note) when the
/// `imagen` binary is not built alongside this one.
fn serve_throughput(reps: usize) -> Option<(f64, f64)> {
    let bin = std::env::current_exe()
        .ok()?
        .with_file_name(format!("imagen{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        eprintln!(
            "note: skipping serve_throughput ({} not built)",
            bin.display()
        );
        return None;
    }
    // Mixed traffic: 4 distinct pipelines, each requested 4 times.
    // Request i compiles pipeline i%4, so the first 4 requests are cold
    // and the remaining 12 are warm (sequential run).
    let uniques = 4usize;
    let total = 16usize;
    let line = |i: usize, timing: bool| {
        let p = i % uniques;
        format!(
            "{{\"id\":{i},\"cmd\":\"compile\",\"name\":\"p{p}\",\
             \"source\":\"input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y) + {p}) / 4 end\",\
             \"width\":32,\"height\":24,\"timing\":{timing}}}\n"
        )
    };
    let timed_batch: String = (0..total).map(|i| line(i, true)).collect();
    let plain_batch: String = (0..total).map(|i| line(i, false)).collect();

    // Byte-identity first (no timing members, which are honestly
    // non-deterministic): one worker vs. four must match exactly.
    let seq = serve_batch(&bin, 1, &plain_batch).ok()?;
    let par = serve_batch(&bin, 4, &plain_batch).ok()?;
    if seq != par {
        eprintln!("error: serve responses differ between --threads 1 and --threads 4");
        std::process::exit(1);
    }

    // Timed runs: sequential, so cold/warm attribution is exact.
    let mut cold_meds = Vec::new();
    let mut warm_meds = Vec::new();
    for _ in 0..reps {
        let out = serve_batch(&bin, 1, &timed_batch).ok()?;
        let us: Vec<u64> = out
            .lines()
            .map(|l| extract_u64(l, "elapsed_us").unwrap_or(0))
            .collect();
        if us.len() != total {
            eprintln!("error: serve answered {} of {total} requests", us.len());
            std::process::exit(1);
        }
        let mut cold: Vec<u64> = us[..uniques].to_vec();
        let mut warm: Vec<u64> = us[uniques..].to_vec();
        cold.sort_unstable();
        warm.sort_unstable();
        cold_meds.push(cold[cold.len() / 2] as f64 / 1e3);
        warm_meds.push(warm[warm.len() / 2] as f64 / 1e3);
    }
    cold_meds.sort_by(|a, b| a.total_cmp(b));
    warm_meds.sort_by(|a, b| a.total_cmp(b));
    Some((
        cold_meds[cold_meds.len() / 2],
        warm_meds[warm_meds.len() / 2],
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("error: -o needs a file name");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: exp_bench_snapshot [-o BENCH_8.json]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let smoke = smoke_mode();
    let reps = if smoke { 3 } else { 7 };
    let geom = if smoke {
        ImageGeometry {
            width: 48,
            height: 32,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 120,
            height: 80,
            pixel_bits: 16,
        }
    };
    let backend = MemBackend::asic_default();
    let spec = MemorySpec::new(backend, 2);

    // netlist_interp mirror: elaborate / emit / interpret Unsharp-m.
    let dag = Algorithm::UnsharpM.build();
    let out = Compiler::new(geom, spec).compile_dag(&dag).unwrap();
    let input = Image::from_fn(geom.width, geom.height, |x, y| {
        sample_pattern(TestPattern::Noise, 3, x, y)
    });
    let net = build_netlist(&out.plan.dag, &out.plan.design, &BitWidths::default());
    let build_ms = median_ms(reps, || {
        std::hint::black_box(build_netlist(
            &out.plan.dag,
            &out.plan.design,
            &BitWidths::default(),
        ));
    });
    let emit_ms = median_ms(reps, || {
        std::hint::black_box(emit_verilog(&net));
    });
    let interp_ms = median_ms(reps, || {
        std::hint::black_box(interpret(&net, std::slice::from_ref(&input)).unwrap());
    });

    // activity_interp mirror: traced and gated-traced interpretation.
    let gated = gate_clocks(&net);
    let traced_ms = median_ms(reps, || {
        std::hint::black_box(interpret_with_trace(&net, std::slice::from_ref(&input)).unwrap());
    });
    let gated_traced_ms = median_ms(reps, || {
        std::hint::black_box(interpret_with_trace(&gated, std::slice::from_ref(&input)).unwrap());
    });

    // dse_sweep mirror: the memoized exhaustive engine, one worker —
    // pricing-only, and the shipping default with measured energy
    // (two netlist interpretations per point) folded in.
    let dse_ms = median_ms(reps, || {
        std::hint::black_box(
            explore(
                &dag,
                &geom,
                backend,
                ExploreOptions {
                    strategy: ExploreStrategy::Exhaustive,
                    threads: 1,
                    measure: MeasureMode::Off,
                },
            )
            .unwrap(),
        );
    });
    let dse_measured_ms = median_ms(reps, || {
        std::hint::black_box(
            explore(
                &dag,
                &geom,
                backend,
                ExploreOptions {
                    strategy: ExploreStrategy::Exhaustive,
                    threads: 1,
                    measure: MeasureMode::default(),
                },
            )
            .unwrap(),
        );
    });

    // serve_throughput: end-to-end request latency through the real
    // binary, ms per request (cold = first-sight pipeline, warm =
    // cache-hit recompile), plus the byte-identity assertion.
    let serve_part = match serve_throughput(reps) {
        Some((cold_ms, warm_ms)) => format!(
            ",\"serve_throughput\":{{\"cold_req_ms\":{cold_ms:.4},\"warm_req_ms\":{warm_ms:.4}}}"
        ),
        None => String::new(),
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\"schema\":\"imagen-bench-snapshot/1\",\"env\":{{\"rustc\":{},\"arch\":{},\"os\":{},\"threads\":{},\"smoke\":{},\"geometry\":{{\"width\":{},\"height\":{},\"pixel_bits\":{}}},\"reps\":{}}},\"median_ms\":{{\"netlist_interp\":{{\"build\":{:.4},\"emit\":{:.4},\"interpret\":{:.4}}},\"activity_interp\":{{\"interpret_traced\":{:.4},\"interpret_gated_traced\":{:.4}}},\"dse_sweep\":{{\"session_sequential\":{:.4},\"session_sequential_measured\":{:.4}}}{serve_part}}}}}",
        json_str(&rustc_version()),
        json_str(std::env::consts::ARCH),
        json_str(std::env::consts::OS),
        threads,
        smoke,
        geom.width,
        geom.height,
        geom.pixel_bits,
        reps,
        build_ms,
        emit_ms,
        interp_ms,
        traced_ms,
        gated_traced_ms,
        dse_ms,
        dse_measured_ms,
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, json + "\n").unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
