//! Reproduces **Sec. 8.2**: compilation speed across the evaluation
//! algorithms, the constraint-pruning ablation (paper: 4× average
//! speedup on multiple-consumer algorithms), and the comparison against
//! Darkroom's linearization compiler (paper: ours 37.4% faster).

use imagen_algos::Algorithm;
use imagen_bench::{asic_backend, geom_320, timing_reps};
use imagen_core::{Compiler, Session};
use imagen_ir::linearize;
use imagen_mem::MemorySpec;
use imagen_schedule::{plan_design, ScheduleOptions};
use std::time::Instant;

fn time_ms(mut f: impl FnMut()) -> f64 {
    // Warm up once, then take the best of N (compile times are ms-scale;
    // N is 5, or 1 in IMAGEN_SMOKE mode).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..timing_reps() {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let geom = geom_320();
    let backend = asic_backend();
    println!("# Sec. 8.2 — Compilation speed @320p\n");
    println!("| Algorithm | Ours (ms) | warm session (µs) | no pruning (ms) | pruning speedup | Darkroom (ms) | Ours vs Darkroom |");
    println!("|---|---|---|---|---|---|---|");
    let mut ours_all = Vec::new();
    let mut speedups = Vec::new();
    let mut vs_darkroom = Vec::new();
    for alg in Algorithm::all() {
        let dag = alg.build();
        let spec = MemorySpec::new(backend, 2);

        let t_ours = time_ms(|| {
            let _ = Compiler::new(geom, spec.clone()).compile_dag(&dag).unwrap();
        });
        // Multi-scenario serving path: a session that already compiled
        // this point answers from its cache.
        let session = Session::new(&dag, geom);
        let _ = session.compile(&spec, None).unwrap();
        let t_warm_us = {
            let t = Instant::now();
            let _ = session.compile(&spec, None).unwrap();
            t.elapsed().as_secs_f64() * 1e6
        };
        let t_nopruning = time_ms(|| {
            let opts = ScheduleOptions {
                pruning: false,
                ..Default::default()
            };
            let _ = Compiler::new(geom, spec.clone())
                .with_options(opts)
                .compile_dag(&dag)
                .unwrap();
        });
        let t_darkroom = time_ms(|| {
            let lin = linearize(&dag).unwrap();
            let _ = plan_design(
                &lin.dag,
                &geom,
                &spec,
                ScheduleOptions::default(),
                imagen_mem::DesignStyle::Darkroom,
            )
            .unwrap();
        });

        let speedup = t_nopruning / t_ours;
        let vs_dk = 100.0 * (t_darkroom - t_ours) / t_darkroom;
        ours_all.push(t_ours);
        if alg.expected_multi_consumer() > 0 {
            speedups.push(speedup);
        }
        vs_darkroom.push(vs_dk);
        println!(
            "| {} | {:.2} | {:.1} | {:.2} | {:.2}x | {:.2} | {:+.1}% faster |",
            alg.name(),
            t_ours,
            t_warm_us,
            t_nopruning,
            speedup,
            t_darkroom,
            vs_dk
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nAverage compile time: {:.2} ms (paper: 14.5 ms)",
        avg(&ours_all)
    );
    println!(
        "Average pruning speedup on -m algorithms: {:.2}x (paper: 4x)",
        avg(&speedups)
    );
    println!(
        "Average speedup vs Darkroom linearization: {:+.1}% (paper: 37.4%)",
        avg(&vs_darkroom)
    );
}
