//! **Analytic vs measured power** — the `imagen-power` subsystem's
//! headline experiment.
//!
//! Every power figure in the paper reproduction (fig8b, fig9b,
//! `exp_power_breakdown`) prices designs with the *analytic* model in
//! `imagen_mem::tech` — scheduled access rates times calibrated pJ
//! constants. This binary instead *runs* each generated netlist through
//! the executable-netlist interpreter with an activity trace and prices
//! the counted events with the same constants, per pipeline and design
//! style, then applies the clock-gating pass (`imagen_power::gate_clocks`)
//! and reports the measured saving — with the interpreter's gated-off
//! cycle count, so the saving is measured, not asserted.
//!
//! Frames are height-reduced (rates are height-invariant, the
//! `exp_power_breakdown` argument); smoke mode shrinks further for CI.

use imagen_algos::Algorithm;
use imagen_bench::{asic_backend, lc_available, measure_point, smoke_mode, STYLES};
use imagen_mem::{DesignStyle, ImageGeometry};

fn main() {
    let geom = if smoke_mode() {
        ImageGeometry {
            width: 96,
            height: 24,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 480,
            height: 64,
            pixel_bits: 16,
        }
    };
    let backend = asic_backend();
    let algos: Vec<Algorithm> = if smoke_mode() {
        vec![Algorithm::UnsharpM, Algorithm::DenoiseM, Algorithm::CannyM]
    } else {
        Algorithm::all().to_vec()
    };

    println!(
        "# exp_energy — analytic vs measured power (netlist activity), {}x{} frames\n",
        geom.width, geom.height
    );
    println!("Measured columns come from interpreting the generated netlist with an");
    println!("activity trace (per-bank reads/writes, enable duty) and pricing the");
    println!("counted events with the same pJ constants the analytic model uses.");
    println!("`gated` is the same netlist after the clock-gating pass; `gated-off`");
    println!("is the interpreter-counted number of suppressed read-port cycles.\n");
    println!("| Algorithm | style | analytic mW | measured mW | ratio | gated mW | saving % | gated-off cycles |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut ratios: Vec<f64> = Vec::new();
    let mut m_savings: Vec<f64> = Vec::new();
    for &alg in &algos {
        for style in STYLES {
            if style == DesignStyle::OursLc && !lc_available(&geom, backend) {
                continue;
            }
            let p = measure_point(alg, style, &geom, backend);
            let ratio = p.measured_total_mw / p.analytic_total_mw;
            ratios.push(ratio);
            if alg.name().ends_with("-m") {
                m_savings.push(p.gating_saving_pct());
            }
            println!(
                "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1} | {} |",
                alg.name(),
                style.label(),
                p.analytic_total_mw,
                p.measured_total_mw,
                ratio,
                p.gated_total_mw,
                p.gating_saving_pct(),
                p.gated_off_cycles,
            );
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (lo, hi) = ratios
        .iter()
        .fold((f64::INFINITY, 0.0_f64), |(lo, hi), &r| {
            (lo.min(r), hi.max(r))
        });
    println!("\n### Summary\n");
    println!(
        "- measured/analytic ratio: avg {:.2}, range [{:.2}, {:.2}] — the two",
        avg(&ratios),
        lo,
        hi
    );
    println!("  models share pJ constants and differ only in activity basis");
    println!("  (interpreted events vs scheduled rates).");
    println!(
        "- clock-gating saving on the `-m` pipelines: avg {:.1}% of measured power",
        avg(&m_savings)
    );
    println!("  (FIFO buffers — SODA — are dataflow-clocked and stay ungated).");
}
