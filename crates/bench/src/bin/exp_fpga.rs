//! Reproduces the **FPGA results of Sec. 8.3/8.4**: BRAM block usage on a
//! 120-block Spartan-7-class device at 1080p (paper: Ours 37.5% of the
//! BRAMs vs Darkroom 41.8%; Ours cuts BRAM size 28.1%/10.2% vs
//! FixyNN/Darkroom and uses 22.8% more than SODA) and FPGA memory power
//! (paper: 19.7%/5.8%/17.7% lower than FixyNN/Darkroom/SODA).

use imagen_algos::Algorithm;
use imagen_bench::{evaluate, geom_1080, reduction_pct, STYLES};
use imagen_mem::{DesignStyle, MemBackend};

const BOARD_BRAMS: usize = 120;

fn main() {
    let geom = geom_1080();
    let backend = MemBackend::Fpga;
    println!("# Sec. 8.3/8.4 — FPGA backend @1080p (36 Kbit BRAMs, {BOARD_BRAMS}-block board)\n");
    println!("| Algorithm | style | BRAM blocks | board share | memory power (mW) |");
    println!("|---|---|---|---|---|");
    let mut per_style: Vec<(DesignStyle, Vec<f64>, Vec<f64>)> = STYLES
        .iter()
        .map(|&s| (s, Vec::new(), Vec::new()))
        .collect();
    for alg in Algorithm::all() {
        for e in evaluate(alg, &geom, backend) {
            println!(
                "| {} | {} | {} | {:.1}% | {:.2} |",
                alg.name(),
                e.style.label(),
                e.blocks,
                100.0 * e.blocks as f64 / BOARD_BRAMS as f64,
                e.mem_power_mw
            );
            if let Some(slot) = per_style.iter_mut().find(|(s, ..)| *s == e.style) {
                slot.1.push(e.blocks as f64);
                slot.2.push(e.mem_power_mw);
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let get = |s: DesignStyle| per_style.iter().find(|(st, ..)| *st == s).unwrap();
    let (_, ours_b, ours_p) = get(DesignStyle::Ours);
    let (_, fx_b, fx_p) = get(DesignStyle::FixyNn);
    let (_, dk_b, dk_p) = get(DesignStyle::Darkroom);
    let (_, soda_b, soda_p) = get(DesignStyle::Soda);
    println!("\n### Averages\n");
    println!(
        "- BRAM block share: Ours {:.1}% vs Darkroom {:.1}% of the board (paper: 37.5% vs 41.8%)",
        100.0 * avg(ours_b) / BOARD_BRAMS as f64,
        100.0 * avg(dk_b) / BOARD_BRAMS as f64
    );
    println!(
        "- BRAM usage: Ours vs FixyNN {:+.1}% (paper 28.1%), vs Darkroom {:+.1}% (paper 10.2%), vs SODA {:+.1}% (paper -22.8%, i.e. SODA smaller)",
        reduction_pct(avg(fx_b), avg(ours_b)),
        reduction_pct(avg(dk_b), avg(ours_b)),
        reduction_pct(avg(soda_b), avg(ours_b)),
    );
    println!(
        "- Memory power: Ours vs FixyNN {:+.1}% (paper 19.7%), vs Darkroom {:+.1}% (paper 5.8%), vs SODA {:+.1}% (paper 17.7%)",
        reduction_pct(avg(fx_p), avg(ours_p)),
        reduction_pct(avg(dk_p), avg(ours_p)),
        reduction_pct(avg(soda_p), avg(ours_p)),
    );
}
