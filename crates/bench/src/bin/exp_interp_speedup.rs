//! **Interpreter speedup** — the compiled evaluation program vs the
//! legacy graph-walking netlist interpreter, per Tbl. 3 pipeline.
//!
//! `imagen_rtl::interpret` lowers each netlist once into a flat
//! evaluation program (`crates/rtl/src/program.rs`) and streams frames
//! through it; `interpret_legacy` re-walks the netlist graph every
//! clock edge. This binary measures both paths — untraced, traced, and
//! clock-gated traced — on every Tbl. 3 pipeline at the acceptance
//! geometry (120×80 @ 16 bpp; smoke mode shrinks it for CI), plus the
//! one-time program compile cost, and prints per-pipeline speedups with
//! a geometric-mean summary. The two engines are pinned bit-identical
//! by `crates/rtl/tests/program_differential.rs`; this binary reports
//! only the wall-clock side of that bargain.
//!
//! EXPERIMENTS.md ("Netlist interpreter") records representative
//! numbers; machine noise of tens of percent run-to-run is normal.

use imagen_algos::{noise_bits, Algorithm};
use imagen_bench::smoke_mode;
use imagen_core::Compiler;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_power::gate_clocks;
use imagen_rtl::{
    build_netlist, interpret_legacy, interpret_with_trace_legacy, BitWidths, EvalProgram,
};
use imagen_sim::Image;
use std::time::Instant;

/// Best-of-`reps` wall clock in milliseconds.
fn best_ms(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let smoke = smoke_mode();
    let reps = if smoke { 3 } else { 7 };
    let geom = if smoke {
        ImageGeometry {
            width: 48,
            height: 32,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 120,
            height: 80,
            pixel_bits: 16,
        }
    };
    println!("# Netlist interpreter speedup (compiled program vs legacy walker)");
    println!("geometry {geom}, best of {reps} reps\n");
    println!(
        "{:<10} {:>18} {:>18} {:>18} {:>12}",
        "pipeline", "untraced", "traced", "gated traced", "compile ms"
    );

    let mut ratios: Vec<f64> = Vec::new();
    for alg in Algorithm::all() {
        let dag = alg.build();
        let spec = MemorySpec::new(MemBackend::asic_default(), 2);
        let out = Compiler::new(geom, spec).compile_dag(&dag).unwrap();
        let net = build_netlist(&out.plan.dag, &out.plan.design, &BitWidths::default());
        let gated = gate_clocks(&net);
        let inputs: Vec<Image> = (0..net.input_streams().len())
            .map(|k| {
                let seed = 0x1234 + k as u64;
                Image::from_fn(geom.width, geom.height, move |x, y| {
                    noise_bits(seed, x, y, 4)
                })
            })
            .collect();
        let prog = EvalProgram::compile(&net).unwrap();
        let gprog = EvalProgram::compile(&gated).unwrap();

        let l_u = best_ms(reps, || {
            interpret_legacy(&net, &inputs).unwrap();
        });
        let p_u = best_ms(reps, || {
            prog.run(&inputs).unwrap();
        });
        let l_t = best_ms(reps, || {
            interpret_with_trace_legacy(&net, &inputs).unwrap();
        });
        let p_t = best_ms(reps, || {
            prog.run_with_trace(&inputs).unwrap();
        });
        let l_g = best_ms(reps, || {
            interpret_with_trace_legacy(&gated, &inputs).unwrap();
        });
        let p_g = best_ms(reps, || {
            gprog.run_with_trace(&inputs).unwrap();
        });
        let compile_ms = best_ms(reps, || {
            EvalProgram::compile(&net).unwrap();
        });

        ratios.extend([l_u / p_u, l_t / p_t, l_g / p_g]);
        println!(
            "{:<10} {:>7.3}->{:>5.3} {:>4.1}x {:>7.3}->{:>5.3} {:>4.1}x {:>7.3}->{:>5.3} {:>4.1}x {:>12.4}",
            alg.name(),
            l_u,
            p_u,
            l_u / p_u,
            l_t,
            p_t,
            l_t / p_t,
            l_g,
            p_g,
            l_g / p_g,
            compile_ms
        );
    }

    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!(
        "\ninterpreter speedup geomean: {geomean:.1}x over {} measurements",
        ratios.len()
    );
}
