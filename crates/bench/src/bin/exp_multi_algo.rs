//! Reproduces the **"Multiple Algorithms" result of Sec. 8.3**: packing
//! six algorithms simultaneously onto a 120-BRAM board at 320p. The paper
//! reports that FixyNN and Darkroom cannot fit all six while Ours+LC
//! fits in 84 BRAM blocks.

use imagen_algos::Algorithm;
use imagen_bench::{generate, geom_320};
use imagen_mem::{DesignStyle, MemBackend};

const BOARD_BRAMS: usize = 120;

fn main() {
    let geom = geom_320();
    let backend = MemBackend::Fpga;
    // The six concurrently-resident algorithms (one Canny variant, as the
    // paper packs six of its seven workloads).
    let algos = [
        Algorithm::CannyM,
        Algorithm::HarrisS,
        Algorithm::HarrisM,
        Algorithm::UnsharpM,
        Algorithm::XcorrM,
        Algorithm::DenoiseM,
    ];
    println!("# Sec. 8.3 — six algorithms on one {BOARD_BRAMS}-BRAM board @320p\n");
    println!("| Style | total BRAM blocks | fits? |");
    println!("|---|---|---|");
    for style in [
        DesignStyle::FixyNn,
        DesignStyle::Darkroom,
        DesignStyle::Soda,
        DesignStyle::Ours,
        DesignStyle::OursLc,
    ] {
        let total: usize = algos
            .iter()
            .map(|&a| generate(a, style, &geom, backend).design.block_count())
            .sum();
        println!(
            "| {} | {} | {} |",
            style.label(),
            total,
            if total <= BOARD_BRAMS { "yes" } else { "no" }
        );
    }
    println!("\nPaper: FixyNN and Darkroom exceed the 120-block budget; Ours+LC");
    println!("fits all six algorithms using 84 blocks.");
}
