//! Reproduces the **Sec. 8.4 power analysis**: per-block access rates per
//! design style. SODA's FIFOs pin every block at 2 accesses/cycle while
//! the classic designs keep most blocks at ~1 — the mechanism behind the
//! paper's "35% more power for two-access BRAMs" measurement — verified
//! here with exact counts from the cycle-level simulator **and**
//! cross-checked against the netlist interpreter's independent activity
//! trace (`imagen-rtl`'s counting path vs `imagen-sim`'s).

use imagen_algos::Algorithm;
use imagen_bench::{asic_backend, generate, smoke_mode, test_frame};
use imagen_mem::{BramModel, DesignStyle, ImageGeometry};
use imagen_rtl::{build_netlist, interpret_with_trace, BitWidths};
use imagen_sim::simulate_and_annotate;

fn main() {
    // Scale height down for simulation speed; access *rates* are
    // height-invariant (the raster pattern repeats row by row). Smoke
    // mode shrinks the frame further for CI.
    let geom = if smoke_mode() {
        ImageGeometry {
            width: 96,
            height: 16,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 480,
            height: 64,
            pixel_bits: 16,
        }
    };
    println!(
        "# Sec. 8.4 — access-rate breakdown (simulated, {}-wide frames)\n",
        geom.width
    );
    println!("| Algorithm | style | blocks | avg accesses/block/cycle | interp-counted | max block rate |");
    println!("|---|---|---|---|---|---|");
    for alg in [Algorithm::UnsharpM, Algorithm::DenoiseM, Algorithm::CannyM] {
        for style in [DesignStyle::Soda, DesignStyle::Ours, DesignStyle::FixyNn] {
            let mut plan = generate(alg, style, &geom, asic_backend());
            let input = test_frame(&geom, 7);
            let report =
                simulate_and_annotate(&plan.dag, &mut plan.design, std::slice::from_ref(&input))
                    .expect("simulation");
            assert!(
                report.port_violations.is_empty(),
                "{} {}: {:?}",
                alg.name(),
                style.label(),
                report.port_violations
            );
            let rates: Vec<f64> = plan
                .design
                .buffers
                .iter()
                .flat_map(|b| &b.blocks)
                .map(|blk| blk.avg_accesses_per_cycle)
                .collect();
            let avg = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
            let max = rates.iter().cloned().fold(0.0, f64::max);

            // The independent counting path: the netlist interpreter's
            // activity trace must agree with the simulator's annotations
            // block for block (also pinned by tests/activity_crosscheck).
            let net = build_netlist(&plan.dag, &plan.design, &BitWidths::default());
            let (_, trace) = interpret_with_trace(&net, &[input]).expect("interpretation");
            let frame = plan.design.geometry.pixels();
            let mut interp_rates = Vec::new();
            for (bp, ba) in plan.design.buffers.iter().zip(&trace.buffers) {
                for blk in 0..bp.blocks.len() {
                    interp_rates.push(ba.avg_accesses_per_cycle(blk, frame));
                }
            }
            let iavg = interp_rates.iter().sum::<f64>() / interp_rates.len().max(1) as f64;
            for (a, b) in rates.iter().zip(&interp_rates) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{} {}: sim {a} vs interp {b}",
                    alg.name(),
                    style.label()
                );
            }
            println!(
                "| {} | {} | {} | {:.2} | {:.2} | {:.2} |",
                alg.name(),
                style.label(),
                rates.len(),
                avg,
                iavg,
                max
            );
        }
    }
    println!(
        "\nBRAM power model check: two accesses/cycle costs {:.1}% more than one",
        100.0 * (BramModel::power_mw(2.0) / BramModel::power_mw(1.0) - 1.0)
    );
    println!("(paper's FPGA measurement: ~35%).");
}
