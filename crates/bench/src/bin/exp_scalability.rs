//! Reproduces the **Sec. 8.2 scalability sweep**: compile time for
//! synthetic pipelines from 9 to 60 stages, a third of which have
//! multiple consumers (paper: 8.7 ms at 9 stages, 8.1 s at 60 stages
//! with OR-Tools; our exact rational solver scales similarly in shape).
//!
//! Compiles run through a memoized [`Session`]: the cold column is the
//! full compile (skeleton + contention + ILP + pricing + RTL), the warm
//! column a cache-hit recompile of the same point — the multi-scenario
//! serving path.

use imagen_algos::synthetic_pipeline;
use imagen_bench::{asic_backend, geom_320, smoke_mode};
use imagen_core::Session;
use imagen_mem::MemorySpec;
use std::time::Instant;

fn main() {
    let geom = geom_320();
    println!("# Sec. 8.2 — Scalability sweep (synthetic pipelines)\n");
    println!("| Stages | MC stages | constraints | sub-problems | cold compile (ms) | warm recompile (µs) |");
    println!("|---|---|---|---|---|---|");
    let sweep: &[usize] = if smoke_mode() {
        &[9, 15, 24]
    } else {
        &[9, 15, 24, 33, 42, 51, 60]
    };
    for &stages in sweep {
        let dag = synthetic_pipeline(stages, 2023);
        let spec = MemorySpec::new(asic_backend(), 2);
        // Cold = session setup (skeleton build) + contention + ILP +
        // pricing + RTL, end to end, like the one-shot Compiler path.
        let t = Instant::now();
        let session = Session::new(&dag, geom);
        let out = session.compile(&spec, None).expect("synthetic compiles");
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let _warm = session.compile(&spec, None).expect("cache hit");
        let warm_us = t.elapsed().as_secs_f64() * 1e6;
        let rep = &out.plan.schedule.report;
        println!(
            "| {} | {} | {} | {} | {:.2} | {:.1} |",
            stages,
            dag.multi_consumer_stages().len(),
            rep.ilp_constraints,
            rep.subproblems,
            cold_ms,
            warm_us
        );
    }
    println!("\nCompile time grows polynomially with pipeline length; the 60-stage");
    println!("pipeline still compiles in well under the paper's 8.1 s budget.");
    println!("Warm recompiles are cache hits in the session's CompileCache.");
}
