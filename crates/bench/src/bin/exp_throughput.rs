//! Reproduces **Sec. 8.1**: steady-state throughput (one pixel per cycle,
//! verified by cycle-level simulation with port/residency checking) and
//! end-to-end latency of Ours vs. Darkroom and SODA (paper: +0.01%
//! average latency at no memory/power cost).

use imagen_algos::Algorithm;
use imagen_bench::{asic_backend, generate, geom_320, test_frame};
use imagen_mem::DesignStyle;
use imagen_sim::simulate;

fn main() {
    let geom = geom_320();
    println!("# Sec. 8.1 — Throughput and latency @320p\n");
    println!("| Algorithm | px/cycle | clean sim | latency Ours | vs Darkroom | vs SODA |");
    println!("|---|---|---|---|---|---|");
    let mut rel_dk = Vec::new();
    let mut rel_soda = Vec::new();
    for alg in Algorithm::all() {
        let ours = generate(alg, DesignStyle::Ours, &geom, asic_backend());
        let dk = generate(alg, DesignStyle::Darkroom, &geom, asic_backend());
        let soda = generate(alg, DesignStyle::Soda, &geom, asic_backend());

        let input = test_frame(&geom, 42);
        let report = simulate(&ours.dag, &ours.design, &[input]).expect("sim");
        assert!(
            report.is_clean(),
            "{}: port={:?} res={:?} functional={}",
            alg.name(),
            report.port_violations,
            report.residency_violations,
            report.outputs_match_golden
        );

        let l_ours = ours.schedule.latency(&ours.dag, geom.width, geom.height);
        let l_dk = dk.schedule.latency(&dk.dag, geom.width, geom.height);
        let l_soda = soda.schedule.latency(&soda.dag, geom.width, geom.height);
        let d_dk = 100.0 * (l_ours - l_dk) as f64 / l_dk as f64;
        let d_soda = 100.0 * (l_ours - l_soda) as f64 / l_soda as f64;
        rel_dk.push(d_dk);
        rel_soda.push(d_soda);
        println!(
            "| {} | {:.3} | {} | {} | {:+.3}% | {:+.3}% |",
            alg.name(),
            report.throughput_px_per_cycle,
            report.is_clean(),
            l_ours,
            d_dk,
            d_soda
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nAverage latency increase: vs Darkroom {:+.3}%, vs SODA {:+.3}% (paper: +0.01%)",
        avg(&rel_dk),
        avg(&rel_soda)
    );
    println!("\nEvery design sustains exactly one pixel per cycle in steady state —");
    println!("the simulator found no port conflicts or residency violations, so the");
    println!("pipeline never stalls (requirements R1–R3 of Sec. 5.1).");
}
