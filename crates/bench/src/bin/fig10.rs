//! Reproduces **Fig. 10**: algorithm-specific power-vs-area trade-offs
//! from the per-stage DP/DPLC design-space exploration at 320p (Sec. 8.5).
//!
//! The paper's observations to reproduce:
//! * Canny-m has *three* Pareto-optimal designs (all-DP, then 1–2 stages
//!   on DPLC) and the all-DPLC point (`P4`) is strictly dominated;
//! * Denoise-m has *two* Pareto-optimal designs (all-DP and all-DPLC).

use imagen_algos::Algorithm;
use imagen_bench::{asic_backend, geom_320};
use imagen_dse::sweep;

fn main() {
    let geom = geom_320();
    for alg in [Algorithm::CannyM, Algorithm::DenoiseM] {
        let dag = alg.build();
        let res = sweep(&dag, &geom, asic_backend()).expect("sweep");
        let front = res.pareto_front();
        println!(
            "\n## Fig. 10 — {} DSE ({} design points)\n",
            alg.name(),
            res.points.len()
        );
        println!("| Design | DPLC stages | Area (mm²) | Power (mW) | Pareto |");
        println!("|---|---|---|---|---|");
        let all_dp = 0usize;
        let all_dplc = res.points.len() - 1;
        // Many configurations tie at identical (area, power); show one
        // representative per distinct frontier value (the paper's P1/P2/…)
        // plus the all-DP / all-DPLC anchors.
        let key = |i: usize| {
            let p = &res.points[i];
            (
                (p.area_mm2 * 1e6).round() as i64,
                (p.power_mw * 1e3).round() as i64,
            )
        };
        let mut distinct: Vec<usize> = Vec::new();
        for &i in &front {
            if !distinct.iter().any(|&j| key(j) == key(i)) {
                distinct.push(i);
            }
        }
        let mut shown = distinct.clone();
        for p in [all_dp, all_dplc] {
            if !shown.contains(&p) {
                shown.push(p);
            }
        }
        shown.sort_unstable();
        for &i in &shown {
            let p = &res.points[i];
            let tag = if i == all_dp {
                " (all-DP)"
            } else if i == all_dplc {
                " (all-DPLC)"
            } else {
                ""
            };
            println!(
                "| p{}{} | {} | {:.3} | {:.2} | {} |",
                i,
                tag,
                p.dplc_count(),
                p.area_mm2,
                p.power_mw,
                if front.contains(&i) { "yes" } else { "no" }
            );
        }
        println!(
            "\nPareto frontier: {} distinct (area, power) value(s) over {} frontier configuration(s)",
            distinct.len(),
            front.len(),
        );
        if alg == Algorithm::CannyM {
            let dominated = !front.contains(&all_dplc);
            println!(
                "All-DPLC dominated: {} (paper: yes — Fig. 10a's P4)",
                dominated
            );
        } else {
            println!(
                "All-DPLC on frontier: {} (paper: yes — Fig. 10b's P2)",
                front.contains(&all_dplc)
            );
        }
    }
}
