//! Reproduces **Fig. 8a**: on-chip SRAM size (KB) of the five generators
//! on 320p frames, per algorithm plus the average, on the ASIC backend.

use imagen_bench::{asic_backend, figure_matrix, geom_320, print_matrix, reduction_pct, STYLES};
use imagen_mem::DesignStyle;

fn main() {
    let geom = geom_320();
    let (algos, sram, _, _) = figure_matrix(&geom, asic_backend());
    print_matrix("Fig. 8a — SRAM size @320p", "KB", &algos, &sram, &STYLES);

    // Headline reductions (paper: Ours vs FixyNN 28.0%, vs Darkroom 10.2%;
    // Ours+LC vs FixyNN 86.0%, vs Darkroom 56.8%; Ours is ~31% above SODA
    // and Ours+LC ~28.5% below SODA).
    let avg = |style: DesignStyle| -> f64 {
        let idx = STYLES.iter().position(|s| *s == style).unwrap();
        let (mut sum, mut n) = (0.0, 0);
        for row in &sram {
            if let Some(v) = row[idx] {
                sum += v;
                n += 1;
            }
        }
        sum / n as f64
    };
    let (fx, dk, soda, ours, lc) = (
        avg(DesignStyle::FixyNn),
        avg(DesignStyle::Darkroom),
        avg(DesignStyle::Soda),
        avg(DesignStyle::Ours),
        avg(DesignStyle::OursLc),
    );
    println!("\n### Headline comparisons (paper values in parentheses)\n");
    println!(
        "- Ours vs FixyNN:    {:+.1}% reduction (paper 28.0%)",
        reduction_pct(fx, ours)
    );
    println!(
        "- Ours vs Darkroom:  {:+.1}% reduction (paper 10.2%)",
        reduction_pct(dk, ours)
    );
    println!(
        "- Ours vs SODA:      {:+.1}% larger (paper +31.0%)",
        100.0 * (ours - soda) / soda
    );
    println!(
        "- Ours+LC vs FixyNN: {:+.1}% reduction (paper 86.0%)",
        reduction_pct(fx, lc)
    );
    println!(
        "- Ours+LC vs Darkroom: {:+.1}% reduction (paper 56.8%)",
        reduction_pct(dk, lc)
    );
    println!(
        "- Ours+LC vs SODA:   {:+.1}% reduction (paper 28.5%)",
        reduction_pct(soda, lc)
    );
}
