//! Reproduces **Fig. 8b**: on-chip memory power (mW) of the five
//! generators on 320p frames, ASIC backend.

use imagen_bench::{
    asic_backend, figure_matrix, geom_320, print_matrix, print_measured_matrix, reduction_pct,
    STYLES,
};
use imagen_mem::DesignStyle;

fn main() {
    let geom = geom_320();
    let (algos, _, power, _) = figure_matrix(&geom, asic_backend());
    print_matrix(
        "Fig. 8b — memory power @320p",
        "mW",
        &algos,
        &power,
        &STYLES,
    );

    // Measured counterpart: the same designs interpreted as netlists
    // with an activity trace (imagen-power), on height-reduced frames
    // (access rates are height-invariant).
    print_measured_matrix(
        "Fig. 8b (measured) — netlist-interpreted memory power @320p",
        &algos,
        &geom,
        asic_backend(),
    );

    let avg = |style: DesignStyle| -> f64 {
        let idx = STYLES.iter().position(|s| *s == style).unwrap();
        let (mut sum, mut n) = (0.0, 0);
        for row in &power {
            if let Some(v) = row[idx] {
                sum += v;
                n += 1;
            }
        }
        sum / n as f64
    };
    let (fx, dk, soda, ours) = (
        avg(DesignStyle::FixyNn),
        avg(DesignStyle::Darkroom),
        avg(DesignStyle::Soda),
        avg(DesignStyle::Ours),
    );
    println!("\n### Headline comparisons (paper values in parentheses)\n");
    println!(
        "- Ours vs FixyNN:   {:+.1}% lower power (paper 7.8%)",
        reduction_pct(fx, ours)
    );
    println!(
        "- Ours vs Darkroom: {:+.1}% lower power (paper 13.8%)",
        reduction_pct(dk, ours)
    );
    println!(
        "- Ours vs SODA:     {:+.1}% lower power (paper 56.0%)",
        reduction_pct(soda, ours)
    );
    println!("\nNote: Ours beats SODA on power despite using more SRAM — SODA's");
    println!("FIFOs serve two accesses per block every cycle (Sec. 8.4).");
}
