//! Reproduces **Fig. 9a**: on-chip SRAM size (KB) at 1080p. Line
//! coalescing does not apply — a 1080p row fills the whole block (Sec. 7)
//! — so the `Ours+LC` column is absent, as in the paper.

use imagen_bench::{
    asic_backend, figure_matrix, geom_1080, geom_320, lc_available, print_matrix, reduction_pct,
    STYLES,
};
use imagen_mem::DesignStyle;

fn main() {
    let geom = geom_1080();
    assert!(
        !lc_available(&geom, asic_backend()),
        "paper setup: no coalescing at 1080p"
    );
    let (algos, sram, _, _) = figure_matrix(&geom, asic_backend());
    print_matrix("Fig. 9a — SRAM size @1080p", "KB", &algos, &sram, &STYLES);

    let avg = |style: DesignStyle| -> f64 {
        let idx = STYLES.iter().position(|s| *s == style).unwrap();
        let (mut sum, mut n) = (0.0, 0);
        for row in &sram {
            if let Some(v) = row[idx] {
                sum += v;
                n += 1;
            }
        }
        sum / n as f64
    };
    println!("\n### Headline comparisons (paper values in parentheses)\n");
    println!(
        "- Ours vs FixyNN:   {:+.1}% reduction (paper ~28%)",
        reduction_pct(avg(DesignStyle::FixyNn), avg(DesignStyle::Ours))
    );
    println!(
        "- Ours vs Darkroom: {:+.1}% reduction (paper ~10%)",
        reduction_pct(avg(DesignStyle::Darkroom), avg(DesignStyle::Ours))
    );

    // Resolution scaling: pixels actually stored (the allocated-block
    // metric above is block-count-driven and resolution-invariant; the
    // paper's OpenRAM-sized arrays grow with the row width, which this
    // column shows).
    let (_, _, _, points) = figure_matrix(&geom_320(), asic_backend());
    let used = |pts: &Vec<imagen_bench::EvalPoint>, style: DesignStyle| {
        pts.iter()
            .find(|e| e.style == style)
            .map(|e| e.plan.design.used_kb())
            .unwrap_or(0.0)
    };
    let (_, _, _, points_1080) = figure_matrix(&geom, asic_backend());
    let sum320: f64 = points.iter().map(|p| used(p, DesignStyle::Ours)).sum();
    let sum1080: f64 = points_1080.iter().map(|p| used(p, DesignStyle::Ours)).sum();
    println!(
        "- Stored pixel bits (Ours, all algos): {:.1} KB @320p vs {:.1} KB @1080p ({:.1}x — rows are 4x wider)",
        sum320,
        sum1080,
        sum1080 / sum320
    );
}
