//! Reproduces **Fig. 9b**: on-chip memory power (mW) at 1080p (no
//! `Ours+LC` column, as in the paper).

use imagen_bench::{
    asic_backend, figure_matrix, geom_1080, print_matrix, print_measured_matrix, reduction_pct,
    STYLES,
};
use imagen_mem::DesignStyle;

fn main() {
    let geom = geom_1080();
    let (algos, _, power, _) = figure_matrix(&geom, asic_backend());
    print_matrix(
        "Fig. 9b — memory power @1080p",
        "mW",
        &algos,
        &power,
        &STYLES,
    );

    // Measured counterpart (imagen-power): netlist-interpreted memory
    // power on height-reduced frames — the per-block macro
    // configurations and access rates depend only on the frame width,
    // so the 1080p-wide mW figures carry over.
    print_measured_matrix(
        "Fig. 9b (measured) — netlist-interpreted memory power @1080p",
        &algos,
        &geom,
        asic_backend(),
    );

    let avg = |style: DesignStyle| -> f64 {
        let idx = STYLES.iter().position(|s| *s == style).unwrap();
        let (mut sum, mut n) = (0.0, 0);
        for row in &power {
            if let Some(v) = row[idx] {
                sum += v;
                n += 1;
            }
        }
        sum / n as f64
    };
    println!("\n### Headline comparisons (paper values in parentheses)\n");
    println!(
        "- Ours vs FixyNN:   {:+.1}% lower power (paper 7.8%)",
        reduction_pct(avg(DesignStyle::FixyNn), avg(DesignStyle::Ours))
    );
    println!(
        "- Ours vs Darkroom: {:+.1}% lower power (paper 13.8%)",
        reduction_pct(avg(DesignStyle::Darkroom), avg(DesignStyle::Ours))
    );
    println!(
        "- Ours vs SODA:     {:+.1}% lower power (paper 56.0%)",
        reduction_pct(avg(DesignStyle::Soda), avg(DesignStyle::Ours))
    );
}
