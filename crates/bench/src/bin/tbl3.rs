//! Reproduces **Tbl. 3**: the evaluation algorithm roster with stage and
//! multiple-consumer stage counts.

use imagen_algos::Algorithm;

fn main() {
    println!("# Tbl. 3 — Evaluation algorithms\n");
    println!("| Algorithm | Description | # Stages | # of MC Stages | Max window |");
    println!("|---|---|---|---|---|");
    for alg in Algorithm::all() {
        let dag = alg.build();
        let desc = match alg {
            Algorithm::CannyS | Algorithm::CannyM => "Canny edge detection",
            Algorithm::HarrisS | Algorithm::HarrisM => "Harris corner detection",
            Algorithm::UnsharpM => "Unsharp masking",
            Algorithm::XcorrM => "Cross correlation",
            Algorithm::DenoiseM => "Image denoise",
        };
        let max_h = dag
            .edges()
            .map(|(_, e)| e.window().height)
            .max()
            .unwrap_or(1);
        let max_w = dag
            .edges()
            .map(|(_, e)| e.window().width())
            .max()
            .unwrap_or(1);
        println!(
            "| {} | {} | {} | {} | {}x{} |",
            alg.name(),
            desc,
            dag.num_stages(),
            dag.multi_consumer_stages().len(),
            max_h,
            max_w,
        );
        assert_eq!(dag.num_stages(), alg.expected_stages());
        assert_eq!(
            dag.multi_consumer_stages().len(),
            alg.expected_multi_consumer()
        );
    }
    println!("\nAll counts match the paper's Tbl. 3.");
}
