//! # imagen-bench
//!
//! Shared harness for reproducing every table and figure of the [ImaGen]
//! paper's evaluation (Sec. 8). Each experiment is a binary in `src/bin/`
//! that prints the same rows/series the paper reports; `EXPERIMENTS.md`
//! at the repository root records paper-vs-measured for each.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `tbl3` | Tbl. 3 workload roster |
//! | `exp_throughput` | Sec. 8.1 throughput & latency |
//! | `exp_compile_speed` | Sec. 8.2 compile times + pruning ablation |
//! | `exp_scalability` | Sec. 8.2 9→60-stage sweep |
//! | `fig8a` / `fig8b` | Fig. 8 SRAM & power at 320p |
//! | `fig9a` / `fig9b` | Fig. 9 SRAM & power at 1080p |
//! | `fig10` | Fig. 10 DSE Pareto frontiers |
//! | `exp_accel_area` | Sec. 8.3 accelerator-level area |
//! | `exp_fpga` | Sec. 8.3/8.4 FPGA BRAM & power |
//! | `exp_multi_algo` | Sec. 8.3 multi-algorithm BRAM packing |
//! | `exp_power_breakdown` | Sec. 8.4 access-rate analysis |
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]

use imagen_algos::{sample_pattern, Algorithm, TestPattern};
use imagen_baselines::{generate_darkroom, generate_fixynn, generate_soda};
use imagen_core::Compiler;
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_schedule::Plan;
use imagen_sim::Image;

/// One evaluated (algorithm × generator) point.
#[derive(Clone, Debug)]
pub struct EvalPoint {
    /// Algorithm name (paper spelling, e.g. `Canny-m`).
    pub algo: &'static str,
    /// Which generator produced the design.
    pub style: DesignStyle,
    /// Allocated SRAM/BRAM, KB.
    pub sram_kb: f64,
    /// Memory power, mW.
    pub mem_power_mw: f64,
    /// Total accelerator area, mm².
    pub total_area_mm2: f64,
    /// Total accelerator power, mW.
    pub total_power_mw: f64,
    /// Memory block count (BRAM count on FPGA).
    pub blocks: usize,
    /// End-to-end frame latency, cycles.
    pub latency: i64,
    /// The full plan, for further inspection.
    pub plan: Plan,
}

/// The design styles in the paper's figure order.
pub const STYLES: [DesignStyle; 5] = [
    DesignStyle::FixyNn,
    DesignStyle::Darkroom,
    DesignStyle::Soda,
    DesignStyle::Ours,
    DesignStyle::OursLc,
];

/// Generates one design of the given style.
///
/// # Panics
///
/// Panics if any generator fails — the evaluation workloads are all
/// schedulable by construction.
pub fn generate(
    alg: Algorithm,
    style: DesignStyle,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Plan {
    let dag = alg.build();
    match style {
        DesignStyle::FixyNn => generate_fixynn(&dag, geom, backend).expect("fixynn"),
        DesignStyle::Darkroom => generate_darkroom(&dag, geom, backend).expect("darkroom"),
        DesignStyle::Soda => generate_soda(&dag, geom, backend).expect("soda"),
        DesignStyle::Ours => {
            Compiler::new(*geom, MemorySpec::new(backend, 2))
                .compile_dag(&dag)
                .expect("ours")
                .plan
        }
        DesignStyle::OursLc => {
            // "Judicious" coalescing: per-buffer LC only where it reduces
            // SRAM (imagen-dse's greedy descent).
            imagen_dse::judicious_lc(&dag, geom, backend)
                .expect("ours+lc")
                .1
                .plan
        }
    }
}

/// Whether line coalescing is available at this geometry/backend (the
/// paper: yes at 320p, no at 1080p — the block holds only one row).
pub fn lc_available(geom: &ImageGeometry, backend: MemBackend) -> bool {
    MemorySpec::new(backend, 2)
        .with_coalescing()
        .coalesce_factor(0, geom)
        > 1
}

/// Evaluates every applicable style for one algorithm.
pub fn evaluate(alg: Algorithm, geom: &ImageGeometry, backend: MemBackend) -> Vec<EvalPoint> {
    let mut out = Vec::new();
    for style in STYLES {
        if style == DesignStyle::OursLc && !lc_available(geom, backend) {
            continue;
        }
        let plan = generate(alg, style, geom, backend);
        let d = &plan.design;
        out.push(EvalPoint {
            algo: alg.name(),
            style,
            sram_kb: d.sram_kb(),
            mem_power_mw: d.memory_power_mw(),
            total_area_mm2: d.total_area_mm2(),
            total_power_mw: d.total_power_mw(),
            blocks: d.block_count(),
            latency: plan.schedule.latency(&plan.dag, geom.width, geom.height),
            plan: plan.clone(),
        });
    }
    out
}

/// The standard ASIC backend of the evaluation (DESIGN.md §7).
pub fn asic_backend() -> MemBackend {
    MemBackend::asic_default()
}

/// True when the `IMAGEN_SMOKE` environment variable is set to anything
/// other than `0`, `false`, `off` or the empty string.
///
/// In smoke mode every experiment binary shrinks its workload — tiny
/// frames, fewer timing repetitions, shorter sweeps — so that CI can
/// cheaply check each one still runs end to end. The printed numbers are
/// *not* the paper's numbers in this mode.
pub fn smoke_mode() -> bool {
    smoke_value(std::env::var("IMAGEN_SMOKE").ok().as_deref())
}

fn smoke_value(var: Option<&str>) -> bool {
    match var {
        Some(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        None => false,
    }
}

/// The shrunken stand-in for 320p used by [`geom_320`] in smoke mode.
pub const SMOKE_GEOM_320: ImageGeometry = ImageGeometry {
    width: 96,
    height: 48,
    pixel_bits: 16,
};

/// The shrunken stand-in for 1080p used by [`geom_1080`] in smoke mode.
pub const SMOKE_GEOM_1080: ImageGeometry = ImageGeometry {
    width: 1184,
    height: 64,
    pixel_bits: 16,
};

/// The evaluation's 320p geometry, or a structurally equivalent tiny
/// frame in [`smoke_mode`] (line coalescing stays available: an ASIC
/// block still holds several rows, as at real 320p).
pub fn geom_320() -> ImageGeometry {
    if smoke_mode() {
        SMOKE_GEOM_320
    } else {
        ImageGeometry::p320()
    }
}

/// The evaluation's 1080p geometry, or a structurally equivalent short
/// frame in [`smoke_mode`]. The smoke width keeps a row wider than half
/// a block on *both* backends (ASIC 32 Kbit and FPGA 36 Kbit BRAM:
/// 1184 × 16 bits = 18 944 > 18 432), so line coalescing stays
/// *unavailable*, as at real 1080p — Sec. 7.
pub fn geom_1080() -> ImageGeometry {
    if smoke_mode() {
        SMOKE_GEOM_1080
    } else {
        ImageGeometry::p1080()
    }
}

/// Timing repetitions for best-of-N measurement loops (1 in smoke mode).
pub fn timing_reps() -> usize {
    if smoke_mode() {
        1
    } else {
        5
    }
}

/// A deterministic test frame for simulator-backed experiments.
pub fn test_frame(geom: &ImageGeometry, seed: u64) -> Image {
    Image::from_fn(geom.width, geom.height, |x, y| {
        sample_pattern(TestPattern::Noise, seed, x, y)
    })
}

/// Prints a markdown table: one row per algorithm, one column per style,
/// with a trailing `Average` row — the shape of the paper's bar charts.
pub fn print_matrix(
    title: &str,
    unit: &str,
    algos: &[Algorithm],
    rows: &[Vec<Option<f64>>],
    styles: &[DesignStyle],
) {
    println!("\n## {title} ({unit})\n");
    print!("| Algorithm |");
    for s in styles {
        print!(" {} |", s.label());
    }
    println!();
    print!("|---|");
    for _ in styles {
        print!("---|");
    }
    println!();
    let mut sums = vec![(0.0, 0usize); styles.len()];
    for (a, row) in algos.iter().zip(rows) {
        print!("| {} |", a.name());
        for (i, v) in row.iter().enumerate() {
            match v {
                Some(v) => {
                    print!(" {v:.1} |");
                    sums[i].0 += v;
                    sums[i].1 += 1;
                }
                None => print!(" — |"),
            }
        }
        println!();
    }
    print!("| **Average** |");
    for (s, n) in &sums {
        if *n > 0 {
            print!(" **{:.1}** |", s / *n as f64);
        } else {
            print!(" — |");
        }
    }
    println!();
}

/// Percentage reduction of `ours` relative to `base` (positive = ours
/// smaller).
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    100.0 * (base - ours) / base
}

/// One measured (netlist-interpreted) power point: analytic,
/// measured-ungated and measured-gated power plus the interpreter's
/// gated-off cycle count.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredPoint {
    /// Analytic memory power (`Design::memory_power_mw`), mW.
    pub analytic_mem_mw: f64,
    /// Analytic total power (`Design::total_power_mw`), mW.
    pub analytic_total_mw: f64,
    /// Measured memory power of the netlist as emitted, mW.
    pub measured_mem_mw: f64,
    /// Measured total power of the netlist as emitted, mW.
    pub measured_total_mw: f64,
    /// Measured total power of the clock-gated netlist, mW.
    pub gated_total_mw: f64,
    /// Measured memory power of the clock-gated netlist, mW.
    pub gated_mem_mw: f64,
    /// Read-port cycles the gating pass removed (interpreter-counted).
    pub gated_off_cycles: u64,
}

impl MeasuredPoint {
    /// Gating saving on measured total power, percent.
    pub fn gating_saving_pct(&self) -> f64 {
        reduction_pct(self.measured_total_mw, self.gated_total_mw)
    }
}

/// Measures one (algorithm × style) point by interpreting its netlist,
/// on a height-reduced frame: access *rates* are height-invariant (the
/// raster pattern repeats row by row, the same argument
/// `exp_power_breakdown` uses) and the per-block macro configurations
/// (rows per block, used bits per row) depend only on the frame width,
/// so the mW figures match the full-height design while interpretation
/// stays fast. Access statistics are first annotated from the cycle
/// simulator so the analytic column uses exact rates.
pub fn measure_point(
    alg: Algorithm,
    style: DesignStyle,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> MeasuredPoint {
    let short = ImageGeometry {
        width: geom.width,
        height: geom.height.min(64),
        pixel_bits: geom.pixel_bits,
    };
    let mut plan = generate(alg, style, &short, backend);
    let input = test_frame(&short, 23);
    let sim = imagen_sim::simulate_and_annotate(
        &plan.dag,
        &mut plan.design,
        std::slice::from_ref(&input),
    )
    .expect("simulation");
    assert!(
        sim.port_violations.is_empty(),
        "{} {}: {:?}",
        alg.name(),
        style.label(),
        sim.port_violations
    );
    let m = imagen_power::measure_pipeline(
        &plan.dag,
        &plan.design,
        &imagen_rtl::BitWidths::default(),
        std::slice::from_ref(&input),
    )
    .expect("interpretation");
    MeasuredPoint {
        analytic_mem_mw: plan.design.memory_power_mw(),
        analytic_total_mw: plan.design.total_power_mw(),
        measured_mem_mw: m.ungated.memory_mw(),
        measured_total_mw: m.ungated.total_mw(),
        gated_total_mw: m.gated.total_mw(),
        gated_mem_mw: m.gated.memory_mw(),
        gated_off_cycles: m.gated_off_cycles(),
    }
}

/// Prints the measured (netlist-interpreted) memory-power counterpart
/// of an analytic figure matrix — one [`measure_point`] per applicable
/// (algorithm × style) — followed by the average clock-gating saving.
/// Shared by `fig8b` and `fig9b`.
pub fn print_measured_matrix(
    title: &str,
    algos: &[Algorithm],
    geom: &ImageGeometry,
    backend: MemBackend,
) {
    let mut measured = Vec::new();
    let mut savings: Vec<f64> = Vec::new();
    for alg in algos {
        let mut row = Vec::new();
        for style in STYLES {
            if style == DesignStyle::OursLc && !lc_available(geom, backend) {
                row.push(None);
                continue;
            }
            let p = measure_point(*alg, style, geom, backend);
            row.push(Some(p.measured_mem_mw));
            savings.push(reduction_pct(p.measured_mem_mw, p.gated_mem_mw));
        }
        measured.push(row);
    }
    print_matrix(title, "mW", algos, &measured, &STYLES);
    println!(
        "\nClock gating (imagen-power) removes on average {:.1}% of the measured memory power.",
        savings.iter().sum::<f64>() / savings.len().max(1) as f64
    );
}

/// Runs the SRAM/power matrix for a geometry and returns
/// `(algos, sram rows, mem-power rows, eval points)`.
#[allow(clippy::type_complexity)]
pub fn figure_matrix(
    geom: &ImageGeometry,
    backend: MemBackend,
) -> (
    Vec<Algorithm>,
    Vec<Vec<Option<f64>>>,
    Vec<Vec<Option<f64>>>,
    Vec<Vec<EvalPoint>>,
) {
    let algos: Vec<Algorithm> = Algorithm::all().to_vec();
    let mut sram = Vec::new();
    let mut power = Vec::new();
    let mut points = Vec::new();
    for alg in &algos {
        let evals = evaluate(*alg, geom, backend);
        let mut srow = Vec::new();
        let mut prow = Vec::new();
        for style in STYLES {
            match evals.iter().find(|e| e.style == style) {
                Some(e) => {
                    srow.push(Some(e.sram_kb));
                    prow.push(Some(e.mem_power_mw));
                }
                None => {
                    srow.push(None);
                    prow.push(None);
                }
            }
        }
        sram.push(srow);
        power.push(prow);
        points.push(evals);
    }
    (algos, sram, power, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_produces_all_styles_at_320p() {
        // Use a scaled-down geometry with the same structure to keep the
        // test fast; LC availability mirrors 320p (blocks hold 2+ rows).
        let geom = ImageGeometry {
            width: 48,
            height: 32,
            pixel_bits: 16,
        };
        let backend = MemBackend::Asic {
            block_bits: 2 * geom.row_bits(),
        };
        assert!(lc_available(&geom, backend));
        let evals = evaluate(Algorithm::UnsharpM, &geom, backend);
        assert_eq!(evals.len(), 5);
        // Qualitative orderings the paper reports:
        let by = |s: DesignStyle| evals.iter().find(|e| e.style == s).unwrap();
        assert!(
            by(DesignStyle::FixyNn).sram_kb >= by(DesignStyle::Ours).sram_kb,
            "FixyNN uses most SRAM"
        );
        assert!(
            by(DesignStyle::Soda).sram_kb <= by(DesignStyle::Ours).sram_kb,
            "SODA undercuts Ours on SRAM"
        );
        assert!(
            by(DesignStyle::OursLc).sram_kb < by(DesignStyle::Ours).sram_kb,
            "LC reduces SRAM"
        );
    }

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(100.0, 72.0) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn smoke_mode_off_values() {
        for (v, expect) in [
            (Some("1"), true),
            (Some("yes"), true),
            (Some("0"), false),
            (Some("false"), false),
            (Some("off"), false),
            (Some(""), false),
            (Some(" 0 "), false),
            (None, false),
        ] {
            assert_eq!(smoke_value(v), expect, "IMAGEN_SMOKE={v:?}");
        }
    }

    #[test]
    fn smoke_geometries_preserve_lc_structure() {
        // The shrunken frames must keep the paper's coalescing structure:
        // available at "320p" scale, unavailable at "1080p" scale on both
        // backends.
        assert!(lc_available(&SMOKE_GEOM_320, MemBackend::asic_default()));
        assert!(!lc_available(&SMOKE_GEOM_1080, MemBackend::asic_default()));
        assert!(!lc_available(&SMOKE_GEOM_1080, MemBackend::Fpga));
    }
}
