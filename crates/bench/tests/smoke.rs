//! Smoke checks for the paper-figure binaries: each experiment must start,
//! produce output and exit 0 on a tiny input (`IMAGEN_SMOKE=1`).
//!
//! This guards the whole experiment surface — any binary that stops
//! compiling fails `cargo build`, and any binary that panics on its
//! shrunken workload fails here, without CI paying for the full
//! paper-scale runs.

use std::process::Command;

fn run_smoke(exe: &str, expect_stdout: &str) {
    let out = Command::new(exe)
        .env("IMAGEN_SMOKE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status.code()
    );
    assert!(
        stdout.contains(expect_stdout),
        "{exe} stdout missing {expect_stdout:?}:\n{stdout}"
    );
}

macro_rules! smoke_tests {
    ($($name:ident => $expect:expr;)*) => {$(
        #[test]
        fn $name() {
            run_smoke(env!(concat!("CARGO_BIN_EXE_", stringify!($name))), $expect);
        }
    )*};
}

smoke_tests! {
    tbl3 => "Tbl. 3";
    exp_bench_snapshot => "imagen-bench-snapshot/1";
    exp_energy => "analytic vs measured";
    exp_interp_speedup => "interpreter speedup geomean";
    exp_throughput => "Sec. 8.1";
    exp_compile_speed => "Sec. 8.2";
    exp_scalability => "Sec. 8.2";
    exp_accel_area => "Sec. 8.3";
    exp_fpga => "Sec. 8.3";
    exp_multi_algo => "Sec. 8.3";
    exp_power_breakdown => "Sec. 8.4";
    fig8a => "Fig. 8a";
    fig8b => "Fig. 8b";
    fig9a => "Fig. 9a";
    fig9b => "Fig. 9b";
    fig10 => "Fig. 10";
}
