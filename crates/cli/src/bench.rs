//! `imagen bench diff` — the benchmark-trajectory comparator.
//!
//! `exp_bench_snapshot` emits one `imagen-bench-snapshot/1` JSON object
//! per PR (`BENCH_<n>.json` at the repository root). This subcommand
//! diffs two snapshots, prints a per-bench table of old/new medians, and
//! exits nonzero when any shared bench slowed down by more than the
//! threshold — the regression gate CI runs against the committed
//! snapshot.
//!
//! Benches present in only one snapshot are reported informationally
//! (the suite is allowed to grow) and never gate. Snapshots taken under
//! different environments (geometry, smoke mode, architecture) are
//! compared with a warning: the numbers are printed but regressions in
//! incomparable runs do not fail the command.

use crate::json::{self, Json};
use crate::{CliError, Options};

/// One flattened bench entry: `group.name` → median ms.
fn flatten(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Obj(members) => {
            for (k, child) in members {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&key, child, out);
            }
        }
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        _ => {}
    }
}

struct Snapshot {
    benches: Vec<(String, f64)>,
    env_line: String,
    comparable_key: String,
}

fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&src).map_err(|e| format!("{path}: {e}"))?;
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "imagen-bench-snapshot/1" {
        return Err(format!(
            "{path}: not an imagen-bench-snapshot/1 file (schema: `{schema}`)"
        ));
    }
    let mut benches = Vec::new();
    match v.get("median_ms") {
        Some(m) => flatten("", m, &mut benches),
        None => return Err(format!("{path}: missing `median_ms`")),
    }
    if benches.is_empty() {
        return Err(format!("{path}: no benches under `median_ms`"));
    }
    let env = v.get("env");
    let field = |key: &str| -> String {
        env.and_then(|e| e.get(key))
            .map(|j| match j {
                Json::Str(s) => s.clone(),
                other => other.to_line(),
            })
            .unwrap_or_else(|| "?".into())
    };
    let geom = env
        .and_then(|e| e.get("geometry"))
        .map(Json::to_line)
        .unwrap_or_else(|| "?".into());
    Ok(Snapshot {
        benches,
        env_line: format!(
            "{} {} smoke={} geometry={}",
            field("arch"),
            field("os"),
            field("smoke"),
            geom
        ),
        // Numbers are only comparable when measured on the same kind of
        // run: same ISA, same smoke flag, same frame geometry.
        comparable_key: format!("{}|{}|{}", field("arch"), field("smoke"), geom),
    })
}

/// `imagen bench diff <old.json> <new.json> [--threshold PCT]`.
pub fn run_bench(opts: &Options) -> Result<(), CliError> {
    let sub = opts.file.as_deref().unwrap_or("");
    if sub != "diff" {
        return Err(CliError::Usage(
            "usage: imagen bench diff <old.json> <new.json> [--threshold PCT]".into(),
        ));
    }
    let [old_path, new_path] = match opts.extra.as_slice() {
        [a, b] => [a.as_str(), b.as_str()],
        _ => {
            return Err(CliError::Usage(
                "bench diff needs exactly two snapshot files".into(),
            ))
        }
    };
    let old = load_snapshot(old_path).map_err(CliError::Usage)?;
    let new = load_snapshot(new_path).map_err(CliError::Usage)?;
    let threshold = opts.threshold;

    let comparable = old.comparable_key == new.comparable_key;
    println!("# bench diff — threshold {threshold}%\n");
    println!("old: {old_path} ({})", old.env_line);
    println!("new: {new_path} ({})", new.env_line);
    if !comparable {
        println!("warning: snapshots come from different environments; regressions are reported but do not gate");
    }
    println!();

    let name_w = old
        .benches
        .iter()
        .chain(&new.benches)
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(8)
        .max("bench".len());
    println!(
        "  {:<name_w$}  {:>10}  {:>10}  {:>8}",
        "bench", "old ms", "new ms", "delta"
    );

    let mut regressions = Vec::new();
    for (key, old_ms) in &old.benches {
        let Some((_, new_ms)) = new.benches.iter().find(|(k, _)| k == key) else {
            println!("  {key:<name_w$}  {old_ms:>10.4}  {:>10}  removed", "-");
            continue;
        };
        let delta_pct = if *old_ms > 0.0 {
            100.0 * (new_ms - old_ms) / old_ms
        } else {
            0.0
        };
        let flag = if delta_pct > threshold {
            regressions.push(format!(
                "{key}: {old_ms:.4} -> {new_ms:.4} ms (+{delta_pct:.1}%)"
            ));
            "  !! regression"
        } else {
            ""
        };
        println!("  {key:<name_w$}  {old_ms:>10.4}  {new_ms:>10.4}  {delta_pct:>+7.1}%{flag}");
    }
    for (key, new_ms) in &new.benches {
        if !old.benches.iter().any(|(k, _)| k == key) {
            println!("  {key:<name_w$}  {:>10}  {new_ms:>10.4}  added", "-");
        }
    }

    println!();
    if regressions.is_empty() {
        println!(
            "no regressions beyond {threshold}% across {} shared bench(es)",
            old.benches
                .iter()
                .filter(|(k, _)| new.benches.iter().any(|(nk, _)| nk == k))
                .count()
        );
        Ok(())
    } else if comparable {
        Err(CliError::Findings(format!(
            "{} bench(es) regressed beyond {threshold}%:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        )))
    } else {
        println!(
            "{} regression(s) in incomparable environments (not gating)",
            regressions.len()
        );
        Ok(())
    }
}
