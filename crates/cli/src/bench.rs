//! `imagen bench diff` — the benchmark-trajectory comparator.
//!
//! `exp_bench_snapshot` emits one `imagen-bench-snapshot/1` JSON object
//! per PR (`BENCH_<n>.json` at the repository root). This subcommand
//! diffs two snapshots, prints a per-bench table of old/new medians, and
//! exits nonzero when any shared bench slowed down by more than the
//! threshold — the regression gate CI runs against the committed
//! snapshot.
//!
//! Benches present in only one snapshot are reported informationally
//! (the suite is allowed to grow) and never gate. Snapshots taken under
//! different environments (geometry, smoke mode, architecture) are
//! compared with a warning: the numbers are printed but regressions in
//! incomparable runs do not fail the command.
//!
//! With **three or more** snapshots the command switches to a history
//! view: one column per snapshot, one row per bench, plus the total
//! drift from the first to the last snapshot. A slow leak — +4% per PR,
//! under any pairwise threshold — is invisible to two-file diffs but
//! obvious across the trajectory. The history view is informational and
//! never gates (gating stays pairwise, against the committed baseline).

use crate::json::{self, Json};
use crate::{CliError, Options};

/// One flattened bench entry: `group.name` → median ms.
fn flatten(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Obj(members) => {
            for (k, child) in members {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&key, child, out);
            }
        }
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        _ => {}
    }
}

struct Snapshot {
    benches: Vec<(String, f64)>,
    env_line: String,
    comparable_key: String,
}

fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v = json::parse(&src).map_err(|e| format!("{path}: {e}"))?;
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "imagen-bench-snapshot/1" {
        return Err(format!(
            "{path}: not an imagen-bench-snapshot/1 file (schema: `{schema}`)"
        ));
    }
    let mut benches = Vec::new();
    match v.get("median_ms") {
        Some(m) => flatten("", m, &mut benches),
        None => return Err(format!("{path}: missing `median_ms`")),
    }
    if benches.is_empty() {
        return Err(format!("{path}: no benches under `median_ms`"));
    }
    let env = v.get("env");
    let field = |key: &str| -> String {
        env.and_then(|e| e.get(key))
            .map(|j| match j {
                Json::Str(s) => s.clone(),
                other => other.to_line(),
            })
            .unwrap_or_else(|| "?".into())
    };
    let geom = env
        .and_then(|e| e.get("geometry"))
        .map(Json::to_line)
        .unwrap_or_else(|| "?".into());
    Ok(Snapshot {
        benches,
        env_line: format!(
            "{} {} smoke={} geometry={}",
            field("arch"),
            field("os"),
            field("smoke"),
            geom
        ),
        // Numbers are only comparable when measured on the same kind of
        // run: same ISA, same smoke flag, same frame geometry.
        comparable_key: format!("{}|{}|{}", field("arch"), field("smoke"), geom),
    })
}

/// `imagen bench diff <old.json> <new.json> [more.json ..] [--threshold PCT]`.
pub fn run_bench(opts: &Options) -> Result<(), CliError> {
    let sub = opts.file.as_deref().unwrap_or("");
    if sub != "diff" {
        return Err(CliError::Usage(
            "usage: imagen bench diff <old.json> <new.json> [more.json ..] [--threshold PCT]"
                .into(),
        ));
    }
    let [old_path, new_path] = match opts.extra.as_slice() {
        [a, b] => [a.as_str(), b.as_str()],
        many if many.len() >= 3 => return run_history(many, opts.threshold),
        _ => {
            return Err(CliError::Usage(
                "bench diff needs at least two snapshot files".into(),
            ))
        }
    };
    let old = load_snapshot(old_path).map_err(CliError::Usage)?;
    let new = load_snapshot(new_path).map_err(CliError::Usage)?;
    let threshold = opts.threshold;

    let comparable = old.comparable_key == new.comparable_key;
    println!("# bench diff — threshold {threshold}%\n");
    println!("old: {old_path} ({})", old.env_line);
    println!("new: {new_path} ({})", new.env_line);
    if !comparable {
        println!("warning: snapshots come from different environments; regressions are reported but do not gate");
    }
    println!();

    let name_w = old
        .benches
        .iter()
        .chain(&new.benches)
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(8)
        .max("bench".len());
    println!(
        "  {:<name_w$}  {:>10}  {:>10}  {:>8}",
        "bench", "old ms", "new ms", "delta"
    );

    let mut regressions = Vec::new();
    for (key, old_ms) in &old.benches {
        let Some((_, new_ms)) = new.benches.iter().find(|(k, _)| k == key) else {
            println!("  {key:<name_w$}  {old_ms:>10.4}  {:>10}  removed", "-");
            continue;
        };
        let delta_pct = if *old_ms > 0.0 {
            100.0 * (new_ms - old_ms) / old_ms
        } else {
            0.0
        };
        let flag = if delta_pct > threshold {
            regressions.push(format!(
                "{key}: {old_ms:.4} -> {new_ms:.4} ms (+{delta_pct:.1}%)"
            ));
            "  !! regression"
        } else {
            ""
        };
        println!("  {key:<name_w$}  {old_ms:>10.4}  {new_ms:>10.4}  {delta_pct:>+7.1}%{flag}");
    }
    for (key, new_ms) in &new.benches {
        if !old.benches.iter().any(|(k, _)| k == key) {
            println!("  {key:<name_w$}  {:>10}  {new_ms:>10.4}  added", "-");
        }
    }

    println!();
    if regressions.is_empty() {
        println!(
            "no regressions beyond {threshold}% across {} shared bench(es)",
            old.benches
                .iter()
                .filter(|(k, _)| new.benches.iter().any(|(nk, _)| nk == k))
                .count()
        );
        Ok(())
    } else if comparable {
        Err(CliError::Findings(format!(
            "{} bench(es) regressed beyond {threshold}%:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        )))
    } else {
        println!(
            "{} regression(s) in incomparable environments (not gating)",
            regressions.len()
        );
        Ok(())
    }
}

/// The ≥3-snapshot history view: per-bench medians across the whole
/// trajectory and the cumulative first→last drift. Informational only.
fn run_history(paths: &[String], threshold: f64) -> Result<(), CliError> {
    let snaps: Vec<(String, Snapshot)> = paths
        .iter()
        .map(|p| {
            load_snapshot(p)
                .map(|s| (p.clone(), s))
                .map_err(CliError::Usage)
        })
        .collect::<Result<_, _>>()?;

    println!("# bench history — {} snapshots\n", snaps.len());
    for (i, (path, s)) in snaps.iter().enumerate() {
        println!("  [{i}] {path} ({})", s.env_line);
    }
    let comparable = snaps
        .iter()
        .all(|(_, s)| s.comparable_key == snaps[0].1.comparable_key);
    if !comparable {
        println!("warning: snapshots come from different environments; drift numbers are indicative only");
    }
    println!();

    // Bench names in first-appearance order across the whole history,
    // so benches added mid-trajectory land after the long-lived ones.
    let mut names: Vec<&str> = Vec::new();
    for (_, s) in &snaps {
        for (k, _) in &s.benches {
            if !names.contains(&k.as_str()) {
                names.push(k);
            }
        }
    }

    let name_w = names
        .iter()
        .map(|k| k.len())
        .max()
        .unwrap_or(8)
        .max("bench".len());
    let mut header = format!("  {:<name_w$}", "bench");
    for i in 0..snaps.len() {
        header.push_str(&format!("  {:>9}", format!("[{i}] ms")));
    }
    header.push_str(&format!("  {:>8}", "drift"));
    println!("{header}");

    let mut drifters = 0usize;
    for name in &names {
        let series: Vec<Option<f64>> = snaps
            .iter()
            .map(|(_, s)| s.benches.iter().find(|(k, _)| k == name).map(|(_, v)| *v))
            .collect();
        let mut row = format!("  {name:<name_w$}");
        for v in &series {
            match v {
                Some(ms) => row.push_str(&format!("  {ms:>9.4}")),
                None => row.push_str(&format!("  {:>9}", "-")),
            }
        }
        // Drift: first recorded value to last recorded value, so a
        // bench absent from the newest snapshot still shows its life.
        let present: Vec<f64> = series.iter().flatten().copied().collect();
        let drift_pct = match (present.first(), present.last()) {
            (Some(&a), Some(&b)) if a > 0.0 && present.len() >= 2 => Some(100.0 * (b - a) / a),
            _ => None,
        };
        match drift_pct {
            Some(d) => {
                let flag = if d > threshold {
                    drifters += 1;
                    "  !! drift"
                } else {
                    ""
                };
                row.push_str(&format!("  {d:>+7.1}%{flag}"));
            }
            None => row.push_str(&format!("  {:>8}", "-")),
        }
        println!("{row}");
    }

    println!();
    if drifters == 0 {
        println!(
            "no cumulative drift beyond {threshold}% across {} bench(es)",
            names.len()
        );
    } else {
        println!(
            "{drifters} bench(es) drifted beyond {threshold}% over the trajectory (informational; pairwise gating unchanged)"
        );
    }
    Ok(())
}
