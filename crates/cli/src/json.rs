//! Minimal JSON for the batch compile server — parser and writer over
//! `std` only (the container vendors no serde).
//!
//! Objects preserve insertion order so emission is deterministic: the
//! same request always yields byte-identical response text, which the
//! serve tests rely on when comparing a threaded run against a
//! sequential one.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer
    /// that `f64` represents *exactly* (≤ 2^53). Larger values already
    /// lost precision in parsing, so accepting them would silently serve
    /// a different number than the client sent — they are rejected like
    /// any other type error.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// Serializes the value on one line.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builder for response objects (ordered, chainable).
#[derive(Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Empty object builder.
    pub fn new() -> ObjBuilder {
        ObjBuilder::default()
    }

    /// Appends a member.
    pub fn push(mut self, key: &str, value: Json) -> ObjBuilder {
        self.0.push((key.to_string(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

/// Deepest accepted array/object nesting. The serve protocol needs ~2
/// levels; the bound exists so a hostile `[[[[...` request line exhausts
/// a counter, not the worker thread's stack.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        at: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.at));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    at: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.at += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected `{want}`, found {other:?}")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.keyword("null", Json::Null),
            Some('t') => self.keyword("true", Json::Bool(true)),
            Some('f') => self.keyword("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.bump();
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => {}
                        Some(']') => return Ok(Json::Arr(items)),
                        other => return Err(format!("expected `,` or `]`, found {other:?}")),
                    }
                }
            }
            Some('{') => {
                self.bump();
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    members.push((key, self.value()?));
                    self.skip_ws();
                    match self.bump() {
                        Some(',') => {}
                        Some('}') => return Ok(Json::Obj(members)),
                        other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.at].iter().collect();
        // Integer literals must be exactly representable in the f64
        // value model (|n| <= 2^53): beyond that, parsing would silently
        // round and the server would act on a different number than the
        // client sent.
        if !text.contains(['.', 'e', 'E']) {
            const MAX_EXACT: i128 = 1 << 53;
            match text.parse::<i128>() {
                Ok(n) if n.abs() <= MAX_EXACT => {}
                _ => {
                    return Err(format!(
                        "integer `{text}` is outside the exactly-representable range"
                    ))
                }
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let src = r#"{"id":7,"cmd":"compile","source":"input a;\noutput b = im(x,y) a(x,y) end","flags":[true,false,null],"f":1.5}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("compile"));
        assert!(v.get("source").unwrap().as_str().unwrap().contains('\n'));
        assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let line = v.to_line();
        assert_eq!(parse(&line).unwrap(), v);
        assert!(!line.contains('\n'), "one physical line");
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(42.0).to_line(), "42");
        assert_eq!(Json::Num(1.25).to_line(), "1.25");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
    }

    #[test]
    fn inexact_integers_rejected() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        // 2^53 + 1 and 2^64 are not exactly representable as f64: the
        // parser rejects them rather than silently rounding/saturating.
        assert!(parse("9007199254740993").is_err());
        assert!(parse("18446744073709551616").is_err());
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        // Non-integer syntax still parses as plain f64.
        assert!(parse("1.5e300").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // A 100k-bracket tower must exhaust the depth counter, not the
        // worker thread's stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let deep_obj = "{\"a\":".repeat(100_000);
        assert!(parse(&deep_obj).is_err());
        // Reasonable nesting is untouched.
        let ok = format!("{}1{}", "[".repeat(32), "]".repeat(32));
        assert!(parse(&ok).is_ok());
    }
}
