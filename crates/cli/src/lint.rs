//! `imagen lint` and `imagen certify` — the static-analysis drivers.
//!
//! `lint` runs the full [`imagen_analysis`] pass stack (DSL lints,
//! width/overflow dataflow, schedule invariants, netlist lints) over one
//! `.imagen` file; with `--prove` it also runs translation validation
//! and merges the certificate's `E05xx`/`W05xx` diagnostics into the
//! report. `certify` runs translation validation alone and prints the
//! per-obligation certificate. Both report as human-readable lines
//! (`--format text`, the default) or one machine-readable JSON object
//! per run (`--format json`), and both exit 1 on findings (errors, or
//! warnings under `--deny warnings`) vs 2 on usage/I-O errors.

use crate::json::{Json, ObjBuilder};
use crate::{CliError, Options};
use imagen_analysis::{
    analyze, certify_dag, AnalysisOptions, AnalysisReport, Certificate, Diagnostic, Locus,
    ProofStatus,
};
use imagen_rtl::BitWidths;

/// Builds the analysis options the lint run assumes from the CLI flags.
pub fn analysis_options(opts: &Options) -> AnalysisOptions {
    let geom = opts.geometry();
    let widths = if opts.wide {
        BitWidths::wide()
    } else {
        BitWidths {
            pixel_bits: geom.pixel_bits,
            acc_bits: (2 * geom.pixel_bits).min(64),
        }
    };
    let input_range = opts.input_range.unwrap_or_else(|| match opts.input_bits {
        Some(bits) => (0, (1i64 << bits.min(62)) - 1),
        None => AnalysisOptions::default().input_range,
    });
    AnalysisOptions {
        geom,
        spec: opts.memory_spec(),
        widths,
        input_range,
    }
}

/// One diagnostic as a JSON object: code, severity, message, and
/// whichever locus members apply.
fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut b = ObjBuilder::new()
        .push("code", Json::Str(d.code.to_string()))
        .push("severity", Json::Str(d.severity.label().to_string()))
        .push("message", Json::Str(d.message.clone()));
    match &d.locus {
        Locus::None => {}
        Locus::Source { line, col } => {
            b = b
                .push("line", Json::Num(*line as f64))
                .push("col", Json::Num(*col as f64));
        }
        Locus::Stage(name) => b = b.push("stage", Json::Str(name.clone())),
        Locus::Net { module, net } => {
            b = b
                .push("module", Json::Str(module.clone()))
                .push("net", Json::Str(net.clone()));
        }
        Locus::Buffer { stage } => b = b.push("buffer_stage", Json::Num(*stage as f64)),
    }
    b.build()
}

/// One certificate as a JSON object: overall status, counts, and the
/// per-obligation verdicts. Shared by `lint --prove`, `certify` and the
/// batch server.
pub fn certificate_json(cert: &Certificate) -> Json {
    let obligations: Vec<Json> = cert
        .obligations
        .iter()
        .map(|o| {
            let mut b = ObjBuilder::new()
                .push("kind", Json::Str(o.kind.label()))
                .push("status", Json::Str(o.status.label().to_string()));
            match &o.status {
                ProofStatus::Proved(mode) => {
                    b = b.push("mode", Json::Str(mode.label().to_string()));
                }
                ProofStatus::Fuzzed { code, samples } => {
                    b = b
                        .push("code", Json::Str(code.to_string()))
                        .push("samples", Json::Num(*samples as f64));
                }
                ProofStatus::Refuted { code, witness } => {
                    b = b
                        .push("code", Json::Str(code.to_string()))
                        .push("witness", Json::Str(witness.clone()));
                }
            }
            b.push("detail", Json::Str(o.detail.clone())).build()
        })
        .collect();
    ObjBuilder::new()
        .push("status", Json::Str(cert.status().to_string()))
        .push("proved", Json::Num(cert.proved() as f64))
        .push("fuzzed", Json::Num(cert.fuzzed() as f64))
        .push("refuted", Json::Num(cert.refuted() as f64))
        .push("pixel_bits", Json::Num(cert.widths.pixel_bits as f64))
        .push("acc_bits", Json::Num(cert.widths.acc_bits as f64))
        .push("obligations", Json::Arr(obligations))
        .build()
}

/// Renders a finished report; shared by the one-shot CLI path and tests.
/// `cert` is the `--prove` certificate when one was produced.
pub fn render_report(
    name: &str,
    report: &AnalysisReport,
    cert: Option<&Certificate>,
    json: bool,
    deny: bool,
) -> (String, bool) {
    let ok = report.errors() == 0 && (!deny || report.warnings() == 0);
    if json {
        let mut b = ObjBuilder::new()
            .push("name", Json::Str(name.to_string()))
            .push("ok", Json::Bool(ok))
            .push("errors", Json::Num(report.errors() as f64))
            .push("warnings", Json::Num(report.warnings() as f64))
            .push("notes", Json::Num(report.notes() as f64))
            .push(
                "certified_overflow_free",
                Json::Bool(report.certified_overflow_free()),
            )
            .push(
                "diagnostics",
                Json::Arr(report.diagnostics.iter().map(diagnostic_json).collect()),
            );
        if let Some(c) = cert {
            b = b.push("certificate", certificate_json(c));
        }
        (b.build().to_line(), ok)
    } else {
        let mut out = String::new();
        for d in &report.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        if let Some(c) = cert {
            out.push_str(&format!(
                "certificate: {} ({} proved, {} fuzzed, {} refuted)\n",
                c.status(),
                c.proved(),
                c.fuzzed(),
                c.refuted()
            ));
        }
        out.push_str(&format!(
            "{name}: {} error(s), {} warning(s), {} note(s)",
            report.errors(),
            report.warnings(),
            report.notes()
        ));
        (out, ok)
    }
}

/// `imagen lint <file.imagen>` entry point.
pub fn run_lint(opts: &Options) -> Result<(), CliError> {
    let (name, src) = crate::load_source(opts)?;
    crate::validate_geometry(&opts.geometry())?;
    match opts.format.as_str() {
        "text" | "json" => {}
        other => {
            return Err(CliError::Usage(format!(
                "--format must be `text` or `json`, not `{other}`"
            )))
        }
    }
    let aopts = analysis_options(opts);
    let mut report = analyze(&name, &src, &aopts);
    // --prove: run translation validation and fold the certificate's
    // diagnostics into the report, so `--deny warnings` and the exit
    // code see refuted/fuzzed obligations like any other finding.
    let mut cert = None;
    if opts.prove && report.errors() == 0 {
        if let Ok(dag) = imagen_dsl::compile(&name, &src) {
            match certify_dag(&dag, &aopts) {
                Ok(c) => {
                    report.diagnostics.extend(c.diagnostics());
                    cert = Some(c);
                }
                Err(d) => report.diagnostics.push(d),
            }
        }
    }
    let (rendered, ok) = render_report(
        &name,
        &report,
        cert.as_ref(),
        opts.format == "json",
        opts.deny_warnings,
    );
    println!("{rendered}");
    if ok {
        Ok(())
    } else {
        Err(CliError::Findings(format!(
            "lint failed: {} error(s), {} warning(s)",
            report.errors(),
            report.warnings()
        )))
    }
}

/// `imagen certify <file.imagen>` entry point: translation validation
/// alone, with the full per-obligation certificate as output.
pub fn run_certify(opts: &Options) -> Result<(), CliError> {
    let (name, src) = crate::load_source(opts)?;
    crate::validate_geometry(&opts.geometry())?;
    match opts.format.as_str() {
        "text" | "json" => {}
        other => {
            return Err(CliError::Usage(format!(
                "--format must be `text` or `json`, not `{other}`"
            )))
        }
    }
    let path = opts.file.as_deref().unwrap_or("pipeline");
    let dag = imagen_dsl::compile(&name, &src)
        .map_err(|e| CliError::Findings(crate::report::render_dsl_error(path, &src, &e)))?;
    let cert =
        certify_dag(&dag, &analysis_options(opts)).map_err(|d| CliError::Findings(d.render()))?;
    if opts.format == "json" {
        let out = ObjBuilder::new()
            .push("name", Json::Str(name.clone()))
            .push("ok", Json::Bool(cert.refuted() == 0))
            .push("certificate", certificate_json(&cert))
            .build();
        println!("{}", out.to_line());
    } else {
        println!("{}", cert.render());
    }
    let ok = cert.refuted() == 0 && (!opts.deny_warnings || cert.fuzzed() == 0);
    if ok {
        Ok(())
    } else {
        Err(CliError::Findings(format!(
            "certificate {}: {} refuted, {} fuzzed obligation(s)",
            cert.status(),
            cert.refuted(),
            cert.fuzzed()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> AnalysisReport {
        analyze("t", src, &AnalysisOptions::default())
    }

    fn arr(v: &Json) -> &[Json] {
        match v {
            Json::Arr(a) => a,
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn clean_report_renders_ok_in_both_formats() {
        let r = report("input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y)) / 4 end");
        let (text, ok) = render_report("t", &r, None, false, true);
        assert!(ok);
        assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
        let (json, ok) = render_report("t", &r, None, true, true);
        assert!(ok);
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("certified_overflow_free"), Some(&Json::Bool(true)));
        assert!(arr(v.get("diagnostics").unwrap()).is_empty());
    }

    #[test]
    fn warnings_fail_only_under_deny() {
        let r = report(
            "input a; dead_end = im(x,y) a(x,y) + 0 end\n\
             output b = im(x,y) a(x,y) end",
        );
        assert!(r.errors() > 0 || r.warnings() > 0);
        let errors = r.errors();
        let (_, ok_lenient) = render_report("t", &r, None, false, false);
        let (_, ok_deny) = render_report("t", &r, None, false, true);
        assert_eq!(ok_lenient, errors == 0);
        assert!(!ok_deny);
    }

    #[test]
    fn json_diagnostics_carry_spans() {
        let r = report("input a;\noutput b = im(x,y) a(x, y - 44) end");
        let (json, _) = render_report("t", &r, None, true, false);
        let v = crate::json::parse(&json).unwrap();
        let diags = arr(v.get("diagnostics").unwrap());
        assert!(!diags.is_empty());
        let d = &diags[0];
        assert_eq!(d.get("code").unwrap().as_str(), Some("W0104"));
        assert_eq!(d.get("severity").unwrap().as_str(), Some("warning"));
        assert_eq!(d.get("line").unwrap().as_u64(), Some(2));
    }
}
