//! `imagen lint` — the static-analysis driver.
//!
//! Runs the full [`imagen_analysis`] pass stack (DSL lints, width/overflow
//! dataflow, schedule invariants, netlist lints) over one `.imagen` file
//! and reports the diagnostics either as human-readable lines (`--format
//! text`, the default) or as one machine-readable JSON object per run
//! (`--format json`). The exit code is nonzero when any error-severity
//! diagnostic fires, or — under `--deny warnings` — when any warning does.

use crate::json::{Json, ObjBuilder};
use crate::Options;
use imagen_analysis::{analyze, AnalysisOptions, AnalysisReport, Diagnostic, Locus};
use imagen_rtl::BitWidths;

/// Builds the analysis options the lint run assumes from the CLI flags.
fn analysis_options(opts: &Options) -> AnalysisOptions {
    let geom = opts.geometry();
    let widths = if opts.wide {
        BitWidths::wide()
    } else {
        BitWidths {
            pixel_bits: geom.pixel_bits,
            acc_bits: (2 * geom.pixel_bits).min(64),
        }
    };
    let input_range = opts.input_range.unwrap_or_else(|| match opts.input_bits {
        Some(bits) => (0, (1i64 << bits.min(62)) - 1),
        None => AnalysisOptions::default().input_range,
    });
    AnalysisOptions {
        geom,
        spec: opts.memory_spec(),
        widths,
        input_range,
    }
}

/// One diagnostic as a JSON object: code, severity, message, and
/// whichever locus members apply.
fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut b = ObjBuilder::new()
        .push("code", Json::Str(d.code.to_string()))
        .push("severity", Json::Str(d.severity.label().to_string()))
        .push("message", Json::Str(d.message.clone()));
    match &d.locus {
        Locus::None => {}
        Locus::Source { line, col } => {
            b = b
                .push("line", Json::Num(*line as f64))
                .push("col", Json::Num(*col as f64));
        }
        Locus::Stage(name) => b = b.push("stage", Json::Str(name.clone())),
        Locus::Net { module, net } => {
            b = b
                .push("module", Json::Str(module.clone()))
                .push("net", Json::Str(net.clone()));
        }
        Locus::Buffer { stage } => b = b.push("buffer_stage", Json::Num(*stage as f64)),
    }
    b.build()
}

/// Renders a finished report; shared by the one-shot CLI path and tests.
pub fn render_report(
    name: &str,
    report: &AnalysisReport,
    json: bool,
    deny: bool,
) -> (String, bool) {
    let ok = report.errors() == 0 && (!deny || report.warnings() == 0);
    if json {
        let out = ObjBuilder::new()
            .push("name", Json::Str(name.to_string()))
            .push("ok", Json::Bool(ok))
            .push("errors", Json::Num(report.errors() as f64))
            .push("warnings", Json::Num(report.warnings() as f64))
            .push("notes", Json::Num(report.notes() as f64))
            .push(
                "certified_overflow_free",
                Json::Bool(report.certified_overflow_free()),
            )
            .push(
                "diagnostics",
                Json::Arr(report.diagnostics.iter().map(diagnostic_json).collect()),
            )
            .build();
        (out.to_line(), ok)
    } else {
        let mut out = String::new();
        for d in &report.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{name}: {} error(s), {} warning(s), {} note(s)",
            report.errors(),
            report.warnings(),
            report.notes()
        ));
        (out, ok)
    }
}

/// `imagen lint <file.imagen>` entry point.
pub fn run_lint(opts: &Options) -> Result<(), String> {
    let (name, src) = crate::load_source(opts)?;
    crate::validate_geometry(&opts.geometry())?;
    match opts.format.as_str() {
        "text" | "json" => {}
        other => return Err(format!("--format must be `text` or `json`, not `{other}`")),
    }
    let report = analyze(&name, &src, &analysis_options(opts));
    let (rendered, ok) = render_report(&name, &report, opts.format == "json", opts.deny_warnings);
    println!("{rendered}");
    if ok {
        Ok(())
    } else {
        Err(format!(
            "lint failed: {} error(s), {} warning(s)",
            report.errors(),
            report.warnings()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> AnalysisReport {
        analyze("t", src, &AnalysisOptions::default())
    }

    fn arr(v: &Json) -> &[Json] {
        match v {
            Json::Arr(a) => a,
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn clean_report_renders_ok_in_both_formats() {
        let r = report("input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y)) / 4 end");
        let (text, ok) = render_report("t", &r, false, true);
        assert!(ok);
        assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");
        let (json, ok) = render_report("t", &r, true, true);
        assert!(ok);
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("certified_overflow_free"), Some(&Json::Bool(true)));
        assert!(arr(v.get("diagnostics").unwrap()).is_empty());
    }

    #[test]
    fn warnings_fail_only_under_deny() {
        let r = report(
            "input a; dead_end = im(x,y) a(x,y) + 0 end\n\
             output b = im(x,y) a(x,y) end",
        );
        assert!(r.errors() > 0 || r.warnings() > 0);
        let errors = r.errors();
        let (_, ok_lenient) = render_report("t", &r, false, false);
        let (_, ok_deny) = render_report("t", &r, false, true);
        assert_eq!(ok_lenient, errors == 0);
        assert!(!ok_deny);
    }

    #[test]
    fn json_diagnostics_carry_spans() {
        let r = report("input a;\noutput b = im(x,y) a(x, y - 44) end");
        let (json, _) = render_report("t", &r, true, false);
        let v = crate::json::parse(&json).unwrap();
        let diags = arr(v.get("diagnostics").unwrap());
        assert!(!diags.is_empty());
        let d = &diags[0];
        assert_eq!(d.get("code").unwrap().as_str(), Some("W0104"));
        assert_eq!(d.get("severity").unwrap().as_str(), Some("warning"));
        assert_eq!(d.get("line").unwrap().as_u64(), Some(2));
    }
}
