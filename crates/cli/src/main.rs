//! `imagen` — the command-line front door to the ImaGen accelerator
//! generator.
//!
//! The library crates compile *any* Darkroom-style pipeline, but until
//! this binary existed only the baked-in Tbl. 3 workloads were reachable
//! (through the experiment binaries). `imagen` exposes the whole stack
//! on user-authored `.imagen` source files:
//!
//! ```text
//! imagen compile <file>   DAG stats, schedule, memory plan, resources, Verilog
//! imagen lint <file>      static analysis: DSL lints, overflow dataflow,
//!                         schedule invariants, netlist lints
//! imagen dse <file>       design-space exploration with a Pareto table
//! imagen sim <file>       golden-model vs netlist-interpreter differential
//! imagen energy <file>    analytic vs activity-measured power
//! imagen serve            JSONL batch compile server (stdin/stdout or TCP)
//! ```
//!
//! Everything is `std`-only; concurrency is `std::thread::scope`, not an
//! async runtime.

mod bench;
mod json;
mod lint;
mod report;
mod serve;

use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use std::process::ExitCode;

const USAGE: &str = "\
imagen — memory- and power-efficient image processing accelerator generator

USAGE:
    imagen <COMMAND> [OPTIONS]

COMMANDS:
    compile <file.imagen>   compile a pipeline: stats, schedule, memory plan,
                            netlist resources (and Verilog via --emit / -o)
    lint <file.imagen>      run the static analyzer: DSL lints, width/overflow
                            dataflow, schedule invariants, netlist lints
    certify <file.imagen>   translation validation: symbolically prove the
                            compiled netlist computes the DSL semantics
                            (per-stage datapath + stream-alignment proofs)
    dse <file.imagen>       explore per-stage DP/DPLC memory configurations
    sim <file.imagen>       differential-test the generated netlist against
                            the golden software model on a seeded frame
    energy <file.imagen>    measure activity-based power vs the analytic model
    serve                   answer JSONL compile/dse requests in batch over
                            stdin/stdout (or TCP with --tcp), fanned over a
                            worker pool sharing one compile cache
    stats <snapshot.json>   render an imagen-metrics/1 snapshot (a serve
                            \"cmd\":\"stats\" response also works) as text
    bench diff <a> <b> [..] compare exp_bench_snapshot JSON files: two files
                            gate regressions beyond --threshold; three or
                            more print drift across the whole trajectory
    help                    print this text

COMMON OPTIONS:
    --width N        frame width in pixels            [default: 64]
    --height N       frame height in pixels           [default: 48]
    --pixel-bits N   bits per pixel                   [default: 16]
    --block-bits N   ASIC SRAM macro capacity, bits   [default: 32768]
    --fpga           target 36 Kbit FPGA BRAMs instead of ASIC macros
    --ports N        ports per memory block           [default: 2]
    --coalesce       enable line coalescing on every line buffer
    --name NAME      pipeline name                    [default: file stem]

COMPILE OPTIONS:
    --emit           print the generated Verilog to stdout
    -o FILE          write the generated Verilog to FILE
    --timing         print compile-phase timings (non-deterministic output)

PROFILE OPTIONS (compile, dse):
    --profile        print a per-phase breakdown (span timings, simplex
                     pivots, cache traffic) after the normal output
    --trace-out FILE write the profile as Chrome trace_event JSON (load in
                     chrome://tracing or Perfetto); implies --profile

LINT / CERTIFY OPTIONS:
    --deny warnings  exit nonzero on warnings, not just errors
    --format F       text | json                      [default: text]
    --input-range L:H  inclusive input pixel range    [default: 0:127]
    --wide           certify against 64/64 datapath widths
    --prove          (lint) also run translation validation and merge the
                     certificate's E05xx/W05xx diagnostics into the report

DSE OPTIONS:
    --strategy S     exhaustive | greedy | random     [default: exhaustive]
    --samples N      random-strategy point budget     [default: 64]
    --seed N         random-strategy seed             [default: 0]
    --threads N      worker threads (0 = all cores)   [default: 0]
    --certify        run translation validation on every Pareto point

SIM / ENERGY OPTIONS:
    --seed N         seed of the generated input frame [default: 0]
    --input-bits N   bits of input noise               [default: 4, or 8 with --wide]
    --wide           interpret at 64/64 datapath widths (sim only)

SERVE OPTIONS:
    --threads N      worker threads (0 = all cores)   [default: 0]
    --tcp ADDR       listen on ADDR (e.g. 127.0.0.1:7878) instead of stdin
    --stats-every N  print a one-line stats summary to stderr every N
                     completed requests (0 = never)   [default: 0]

BENCH OPTIONS:
    --threshold PCT  slowdown (%) that counts as a regression [default: 10]

EXIT CODES:
    0   success / nothing found
    1   findings: lint or certificate diagnostics, a refuted proof
        obligation, or a failed differential
    2   usage or I/O errors: bad flags, unreadable files, bad geometry

The JSONL protocol served by `imagen serve` is documented in README.md
(\"Using the CLI\").
";

/// A CLI failure, split by exit code: `Usage` (bad flags, unreadable
/// input, impossible geometry — exit 2) vs `Findings` (the tools ran and
/// found something wrong with the pipeline — exit 1), so scripts can
/// tell "you invoked me wrong" from "your design is broken".
pub enum CliError {
    /// Operator error: exit code 2.
    Usage(String),
    /// Analysis/differential findings: exit code 1.
    Findings(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Findings(m) => m,
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

/// Everything parsed from the command line.
pub struct Options {
    pub file: Option<String>,
    pub name: Option<String>,
    pub width: u32,
    pub height: u32,
    pub pixel_bits: u32,
    pub block_bits: u64,
    pub fpga: bool,
    pub ports: u32,
    pub coalesce: bool,
    pub emit: bool,
    pub output: Option<String>,
    pub timing: bool,
    pub strategy: String,
    pub samples: usize,
    pub seed: u64,
    pub threads: usize,
    pub input_bits: Option<u32>,
    pub wide: bool,
    pub tcp: Option<String>,
    pub deny_warnings: bool,
    pub format: String,
    pub input_range: Option<(i64, i64)>,
    pub prove: bool,
    pub certify: bool,
    /// Trailing positionals beyond `file` — only the `bench` command
    /// accepts any (the snapshot paths of `bench diff`).
    pub extra: Vec<String>,
    /// `bench diff` regression threshold in percent.
    pub threshold: f64,
    /// `--profile`: print a phase breakdown after compile/dse output.
    pub profile: bool,
    /// `--trace-out FILE`: write the profiled spans as Chrome
    /// trace_event JSON (implies `--profile`).
    pub trace_out: Option<String>,
    /// `serve --stats-every N`: stderr stats line cadence (0 = never).
    pub stats_every: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            file: None,
            name: None,
            width: 64,
            height: 48,
            pixel_bits: 16,
            block_bits: 32768,
            fpga: false,
            ports: 2,
            coalesce: false,
            emit: false,
            output: None,
            timing: false,
            strategy: "exhaustive".into(),
            samples: 64,
            // One seed flag serves both the random DSE strategy and the
            // sim/energy input frames; 0 matches the serve protocol's
            // default so CLI and server runs are comparable.
            seed: 0,
            threads: 0,
            input_bits: None,
            wide: false,
            tcp: None,
            deny_warnings: false,
            format: "text".into(),
            input_range: None,
            prove: false,
            certify: false,
            extra: Vec::new(),
            threshold: 10.0,
            profile: false,
            trace_out: None,
            stats_every: 0,
        }
    }
}

impl Options {
    pub fn geometry(&self) -> ImageGeometry {
        ImageGeometry {
            width: self.width,
            height: self.height,
            pixel_bits: self.pixel_bits,
        }
    }

    pub fn backend(&self) -> MemBackend {
        if self.fpga {
            MemBackend::Fpga
        } else {
            MemBackend::Asic {
                block_bits: self.block_bits,
            }
        }
    }

    pub fn memory_spec(&self) -> MemorySpec {
        let spec = MemorySpec::new(self.backend(), self.ports);
        if self.coalesce {
            spec.with_coalescing()
        } else {
            spec
        }
    }
}

/// Largest frame (pixels) the *frame-allocating* paths accept: `sim` and
/// `energy` materialize whole images per stage, and the batch server must
/// not let one request allocate unbounded buffers. Pure compilation
/// (`compile`/`dse` from the CLI) allocates no frames and is not capped.
pub const MAX_FRAME_PIXELS: u64 = 1 << 24;

/// Validates a requested geometry. Zero dimensions panic deep in the
/// planner, so they are rejected at the door.
pub fn validate_geometry(geom: &ImageGeometry) -> Result<(), String> {
    if geom.width == 0 || geom.height == 0 {
        return Err(format!("geometry {geom}: frame dimensions must be nonzero"));
    }
    if geom.pixel_bits == 0 || geom.pixel_bits > 64 {
        return Err(format!("geometry {geom}: pixel bits must be in 1..=64"));
    }
    Ok(())
}

/// Enforces [`MAX_FRAME_PIXELS`] — called wherever frames actually get
/// allocated (`sim`, `energy`, every serve request).
pub fn validate_frame_budget(geom: &ImageGeometry) -> Result<(), String> {
    if geom.pixels() > MAX_FRAME_PIXELS {
        return Err(format!(
            "geometry {geom}: {} pixels exceed the supported {MAX_FRAME_PIXELS}",
            geom.pixels()
        ));
    }
    Ok(())
}

fn parse_args(args: &[String]) -> Result<(String, Options), String> {
    let mut opts = Options::default();
    let cmd = args
        .first()
        .cloned()
        .ok_or_else(|| "missing command".to_string())?;
    let mut it = args[1..].iter();
    let mut positional: Vec<String> = Vec::new();

    fn value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
        raw.parse()
            .map_err(|_| format!("{flag}: `{raw}` is not a valid value"))
    }

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--width" => opts.width = num(arg, value(arg, &mut it)?)?,
            "--height" => opts.height = num(arg, value(arg, &mut it)?)?,
            "--pixel-bits" => opts.pixel_bits = num(arg, value(arg, &mut it)?)?,
            "--block-bits" => opts.block_bits = num(arg, value(arg, &mut it)?)?,
            "--fpga" => opts.fpga = true,
            "--ports" => opts.ports = num(arg, value(arg, &mut it)?)?,
            "--coalesce" => opts.coalesce = true,
            "--name" => opts.name = Some(value(arg, &mut it)?.clone()),
            "--emit" => opts.emit = true,
            "-o" | "--output" => opts.output = Some(value(arg, &mut it)?.clone()),
            "--timing" => opts.timing = true,
            "--strategy" => opts.strategy = value(arg, &mut it)?.clone(),
            "--samples" => opts.samples = num(arg, value(arg, &mut it)?)?,
            "--seed" => opts.seed = num(arg, value(arg, &mut it)?)?,
            "--threads" => opts.threads = num(arg, value(arg, &mut it)?)?,
            "--input-bits" => opts.input_bits = Some(num(arg, value(arg, &mut it)?)?),
            "--wide" => opts.wide = true,
            "--tcp" => opts.tcp = Some(value(arg, &mut it)?.clone()),
            "--deny" => {
                let what = value(arg, &mut it)?;
                if what != "warnings" {
                    return Err(format!("--deny only supports `warnings`, not `{what}`"));
                }
                opts.deny_warnings = true;
            }
            "--format" => opts.format = value(arg, &mut it)?.clone(),
            "--threshold" => {
                opts.threshold = num(arg, value(arg, &mut it)?)?;
                if opts.threshold.is_nan() || opts.threshold < 0.0 {
                    return Err(format!("--threshold: `{}` must be >= 0", opts.threshold));
                }
            }
            "--prove" => opts.prove = true,
            "--certify" => opts.certify = true,
            "--profile" => opts.profile = true,
            "--trace-out" => {
                opts.trace_out = Some(value(arg, &mut it)?.clone());
                opts.profile = true;
            }
            "--stats-every" => opts.stats_every = num(arg, value(arg, &mut it)?)?,
            "--input-range" => {
                let raw = value(arg, &mut it)?;
                let (lo, hi) = raw
                    .split_once(':')
                    .ok_or_else(|| format!("--input-range: `{raw}` is not LO:HI"))?;
                let lo: i64 = num(arg, lo)?;
                let hi: i64 = num(arg, hi)?;
                if lo > hi {
                    return Err(format!("--input-range: {lo} > {hi}"));
                }
                opts.input_range = Some((lo, hi));
            }
            "-h" | "--help" => return Ok(("help".into(), opts)),
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            _ => positional.push(arg.clone()),
        }
    }
    // `bench` is the one command with trailing positionals (the
    // snapshot paths of `bench diff` — two for a pairwise gate, more
    // for the history view); everything else takes at most a single
    // source file.
    let max_positional = if cmd == "bench" { usize::MAX } else { 1 };
    if positional.len() > max_positional {
        return Err(format!(
            "unexpected argument `{}`",
            positional[max_positional]
        ));
    }
    let mut positional = positional.into_iter();
    opts.file = positional.next();
    opts.extra = positional.collect();
    if opts.ports == 0 {
        return Err("--ports must be at least 1".into());
    }
    Ok((cmd, opts))
}

/// Reads the `.imagen` source named by `opts` and derives the pipeline
/// name (explicit `--name` or the file stem).
fn load_source(opts: &Options) -> Result<(String, String), String> {
    let path = opts
        .file
        .as_deref()
        .ok_or("missing <file.imagen> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = opts.name.clone().unwrap_or_else(|| {
        std::path::Path::new(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "pipeline".into())
    });
    Ok((name, src))
}

/// Loads and front-end-compiles the pipeline named by `opts`, rendering
/// DSL errors with their source span.
pub fn load_pipeline(opts: &Options) -> Result<(String, imagen_ir::Dag), String> {
    let (name, src) = load_source(opts)?;
    let path = opts.file.as_deref().unwrap_or("pipeline");
    let dag =
        imagen_dsl::compile(&name, &src).map_err(|e| report::render_dsl_error(path, &src, &e))?;
    Ok((name, dag))
}

fn dispatch(cmd: &str, opts: &Options) -> Result<(), CliError> {
    // `--profile` wraps the whole compile/dse invocation (front end
    // included) in a span collector and appends the phase breakdown.
    if opts.profile && matches!(cmd, "compile" | "dse") {
        return report::run_profiled(cmd, opts);
    }
    match cmd {
        "help" => {
            print!("{USAGE}");
            Ok(())
        }
        "compile" => {
            let (_, dag) = load_pipeline(opts)?;
            validate_geometry(&opts.geometry())?;
            Ok(report::run_compile(&dag, opts)?)
        }
        "lint" => lint::run_lint(opts),
        "certify" => lint::run_certify(opts),
        "dse" => {
            let (_, dag) = load_pipeline(opts)?;
            validate_geometry(&opts.geometry())?;
            report::run_dse(&dag, opts)
        }
        "sim" => {
            let (_, dag) = load_pipeline(opts)?;
            validate_geometry(&opts.geometry())?;
            validate_frame_budget(&opts.geometry())?;
            report::run_sim(&dag, opts)
        }
        "energy" => {
            let (_, dag) = load_pipeline(opts)?;
            validate_geometry(&opts.geometry())?;
            validate_frame_budget(&opts.geometry())?;
            Ok(report::run_energy(&dag, opts)?)
        }
        "serve" => Ok(serve::run(opts)?),
        "stats" => report::run_stats(opts),
        "bench" => bench::run_bench(opts),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match dispatch(&cmd, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            let e = err.message();
            // Span-rendered errors already end in a newline-formatted block.
            if e.starts_with("error:") {
                eprintln!("{e}");
            } else {
                eprintln!("error: {e}");
            }
            match err {
                CliError::Findings(_) => ExitCode::from(1),
                CliError::Usage(_) => ExitCode::from(2),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_defaults_and_flags() {
        let (cmd, o) = parse_args(&[
            "compile".into(),
            "a.imagen".into(),
            "--width".into(),
            "128".into(),
            "--coalesce".into(),
        ])
        .unwrap();
        assert_eq!(cmd, "compile");
        assert_eq!(o.file.as_deref(), Some("a.imagen"));
        assert_eq!(o.width, 128);
        assert_eq!(o.height, 48);
        assert!(o.coalesce);
        assert!(parse_args(&["compile".into(), "--frob".into()]).is_err());
        assert!(parse_args(&["compile".into(), "--width".into()]).is_err());
        assert!(parse_args(&["compile".into(), "--width".into(), "x".into()]).is_err());
    }

    #[test]
    fn geometry_guard() {
        let ok = ImageGeometry {
            width: 64,
            height: 48,
            pixel_bits: 16,
        };
        assert!(validate_geometry(&ok).is_ok());
        for bad in [
            ImageGeometry { width: 0, ..ok },
            ImageGeometry { height: 0, ..ok },
            ImageGeometry {
                pixel_bits: 0,
                ..ok
            },
            ImageGeometry {
                pixel_bits: 65,
                ..ok
            },
        ] {
            assert!(validate_geometry(&bad).is_err(), "{bad}");
        }
        // The pixel cap applies only where frames are allocated: an 8K
        // geometry is a legitimate *compile* target but over the
        // sim / energy / serve frame budget.
        let large = ImageGeometry {
            width: 7680,
            height: 4320,
            pixel_bits: 16,
        };
        assert!(validate_geometry(&large).is_ok());
        assert!(validate_frame_budget(&large).is_err());
        assert!(validate_frame_budget(&ok).is_ok());
    }
}
