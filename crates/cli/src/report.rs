//! Human-readable renderings of the compiler's artifacts, plus the
//! bodies of the `compile` / `dse` / `sim` / `energy` subcommands.
//!
//! Output is deterministic by construction (no timestamps, no pointer
//! values, no wall-clock durations unless `--timing` asks for them), so
//! the CLI integration tests pin `compile` and `dse` text against golden
//! files.

use crate::json::{self, Json};
use crate::{CliError, Options};
use imagen_analysis::certify_dag_styled;
use imagen_core::Compiler;
use imagen_dse::{explore, ExploreOptions, ExploreStrategy, MeasureMode};
use imagen_ir::{Dag, StageId};
use imagen_obs::Collector;
use imagen_rtl::{build_netlist, interpret, report_resources, BitWidths};
use imagen_sim::{execute, Image};
use std::sync::Arc;

/// Renders a DSL error with its source span:
///
/// ```text
/// error: expected `;`, found `end` at 2:27
///   --> blur.imagen:2:27
///    |
///  2 | output b = im(x,y) a(x,y) end
///    |                           ^
/// ```
pub fn render_dsl_error(path: &str, src: &str, err: &imagen_dsl::DslError) -> String {
    let mut out = format!("error: {err}");
    if let Some(pos) = err.pos() {
        if let Some(line) = src.lines().nth(pos.line as usize - 1) {
            let line = line.replace('\t', " ");
            let gutter = pos.line.to_string();
            let pad = " ".repeat(gutter.len());
            let caret = " ".repeat((pos.col as usize).saturating_sub(1));
            out.push_str(&format!(
                "\n  --> {path}:{}:{}\n {pad} |\n {gutter} | {line}\n {pad} | {caret}^",
                pos.line, pos.col
            ));
        }
    }
    out
}

fn header(dag: &Dag, opts: &Options) -> String {
    let stats = dag.stats();
    let backend = if opts.fpga {
        "FPGA 36 Kbit BRAMs".to_string()
    } else {
        format!("ASIC {}-bit blocks", opts.block_bits)
    };
    format!(
        "# {}\n\npipeline : {} stages, {} edges, {} multi-consumer, max stencil height {}\ngeometry : {}\nmemory   : {backend}, {} port(s), coalescing {}\n",
        dag.name(),
        stats.stages,
        stats.edges,
        stats.multi_consumer_stages,
        stats.max_stencil_height,
        opts.geometry(),
        opts.ports,
        if opts.coalesce { "on" } else { "off" },
    )
}

/// `imagen compile`: the full Fig. 5 flow on one pipeline.
pub fn run_compile(dag: &Dag, opts: &Options) -> Result<(), String> {
    let out = Compiler::new(opts.geometry(), opts.memory_spec())
        .compile_dag(dag)
        .map_err(|e| e.to_string())?;
    let plan = &out.plan;
    let design = &plan.design;

    let mut text = header(dag, opts);
    text.push_str(&format!("style    : {}\n", design.style.label()));

    text.push_str("\n## Schedule (ILP start cycles)\n\n");
    // The rate column appears only on multirate pipelines, so unit-rate
    // `compile` output stays byte-identical to its golden pins.
    let multirate = plan.dag.is_multirate();
    for (id, stage) in plan.dag.stages() {
        if multirate {
            text.push_str(&format!(
                "  {:<12} @ {:<8} rate {}\n",
                stage.name(),
                plan.schedule.start(id),
                stage.rate()
            ));
        } else {
            text.push_str(&format!(
                "  {:<12} @ {}\n",
                stage.name(),
                plan.schedule.start(id)
            ));
        }
    }

    text.push_str("\n## Line buffers\n\n");
    for buf in &design.buffers {
        let name = plan.dag.stage(StageId::from_index(buf.stage)).name();
        text.push_str(&format!(
            "  {:<12} {} rows ({} physical) in {} block(s), {} rows/block\n",
            name,
            buf.logical_rows,
            buf.phys_rows,
            buf.blocks.len(),
            buf.rows_per_block
        ));
    }

    text.push_str("\n## Cost model\n\n");
    text.push_str(&format!(
        "  SRAM allocated : {:.3} KB over {} block(s)\n",
        design.sram_kb(),
        design.block_count()
    ));
    text.push_str(&format!(
        "  total area     : {:.4} mm2\n",
        design.total_area_mm2()
    ));
    text.push_str(&format!(
        "  total power    : {:.3} mW\n",
        design.total_power_mw()
    ));
    text.push_str(&format!(
        "  latency        : {} cycles/frame\n",
        plan.schedule.latency(&plan.dag, opts.width, opts.height)
    ));

    let res = report_resources(&out.netlist);
    text.push_str("\n## Netlist resources\n\n");
    text.push_str(&format!(
        "  SRAM macros    : {} ({} bits)\n  flip-flops     : {} bits\n  operators      : {} add, {} mul, {} div, {} cmp, {} mux\n",
        res.sram_blocks,
        res.sram_bits,
        res.flipflop_bits,
        res.adders,
        res.multipliers,
        res.dividers,
        res.comparators,
        res.muxes
    ));

    let verilog_lines = out.verilog.lines().count();
    text.push_str(&format!(
        "\n## Verilog\n\n  {} lines (use --emit or -o FILE for the text)\n",
        verilog_lines
    ));

    print!("{text}");
    if opts.timing {
        println!(
            "\ncompile time: {:.2} ms (front end {:.2} + optimize {:.2} + codegen {:.2})",
            out.timing.total_us() as f64 / 1e3,
            out.timing.frontend_us as f64 / 1e3,
            out.timing.optimize_us as f64 / 1e3,
            out.timing.codegen_us as f64 / 1e3
        );
    }
    if opts.emit {
        println!("\n{}", out.verilog);
    }
    if let Some(path) = &opts.output {
        std::fs::write(path, &out.verilog).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {verilog_lines} lines of Verilog to {path}");
    }
    Ok(())
}

/// `imagen compile --profile` / `imagen dse --profile`: the same
/// subcommand wrapped in a span collector covering the *whole*
/// invocation (front end included), with a phase-breakdown trailer and
/// an optional Chrome trace file. The trailer is non-deterministic by
/// nature (wall-clock durations), like `--timing`.
pub fn run_profiled(cmd: &str, opts: &Options) -> Result<(), CliError> {
    let collector = Arc::new(Collector::new());
    let pivots_before = imagen_ilp::stats::pivot_count();
    let result = imagen_obs::with_collector(&collector, || -> Result<(), CliError> {
        let (_, dag) = crate::load_pipeline(opts)?;
        crate::validate_geometry(&opts.geometry())?;
        match cmd {
            "compile" => Ok(run_compile(&dag, opts)?),
            _ => run_dse(&dag, opts),
        }
    });
    let pivots = imagen_ilp::stats::pivot_count() - pivots_before;

    let totals = collector.phase_totals();
    println!("\n## Profile (non-deterministic)\n");
    if totals.is_empty() {
        println!("  no spans recorded");
    } else {
        let name_w = totals
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(5)
            .max("phase".len());
        println!("  {:<name_w$}  {:>6}  {:>12}", "phase", "calls", "total ms");
        for t in &totals {
            println!(
                "  {:<name_w$}  {:>6}  {:>12.3}",
                t.name,
                t.count,
                t.total_ns as f64 / 1e6
            );
        }
    }
    println!("  simplex pivots : {pivots}");
    if let Some(path) = &opts.trace_out {
        let trace = collector.chrome_trace_json(&format!("imagen {cmd}"));
        std::fs::write(path, trace)
            .map_err(|e| CliError::Usage(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    result
}

/// `imagen stats <snapshot.json>`: render an `imagen-metrics/1` snapshot
/// (as exported by the serve `"cmd":"stats"` response, whose `metrics`
/// member is accepted directly) as text tables.
pub fn run_stats(opts: &Options) -> Result<(), CliError> {
    let path = opts
        .file
        .as_deref()
        .ok_or_else(|| CliError::Usage("missing <snapshot.json> argument".into()))?;
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let v = json::parse(&src).map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
    // Accept either a bare metrics snapshot or a serve stats response
    // that embeds one under `metrics`.
    let snap = match v.get("metrics") {
        Some(m) => m.clone(),
        None => v,
    };
    let schema = snap.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != imagen_obs::SNAPSHOT_SCHEMA {
        return Err(CliError::Usage(format!(
            "{path}: not an {} snapshot (schema: `{schema}`)",
            imagen_obs::SNAPSHOT_SCHEMA
        )));
    }

    let members = |key: &str| -> Vec<(String, Json)> {
        match snap.get(key) {
            Some(Json::Obj(m)) => m.clone(),
            _ => Vec::new(),
        }
    };
    let mut text = format!("# imagen stats — {path}\n");
    let counters = members("counters");
    let gauges = members("gauges");
    if !counters.is_empty() || !gauges.is_empty() {
        let name_w = counters
            .iter()
            .chain(&gauges)
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(4)
            .max("name".len());
        text.push_str("\n## Counters and gauges\n\n");
        for (k, v) in counters.iter().chain(&gauges) {
            text.push_str(&format!("  {k:<name_w$}  {}\n", v.to_line()));
        }
    }
    let hists = members("histograms");
    if !hists.is_empty() {
        let name_w = hists
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(4)
            .max("histogram".len());
        text.push_str(&format!(
            "\n## Histograms\n\n  {:<name_w$}  {:>8}  {:>10}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "histogram", "count", "mean", "min", "p50", "p90", "p99", "max"
        ));
        for (k, h) in &hists {
            let f = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
            let (count, sum) = (f("count"), f("sum"));
            let mean = if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            };
            text.push_str(&format!(
                "  {k:<name_w$}  {count:>8}  {mean:>10.1}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                f("min"),
                f("p50"),
                f("p90"),
                f("p99"),
                f("max")
            ));
        }
    }
    // Derived: cache hit rate, when the snapshot carries cache traffic.
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };
    let (hits, misses) = (counter("cache.hits"), counter("cache.misses"));
    if hits + misses > 0 {
        text.push_str(&format!(
            "\ncache hit rate: {:.1}% ({hits} hit(s), {misses} miss(es))\n",
            100.0 * hits as f64 / (hits + misses) as f64
        ));
    }
    print!("{text}");
    Ok(())
}

/// Largest accepted random-strategy budget — the same 2^16 points the
/// exhaustive guard allows. Beyond the explored space's size, `explore`
/// falls back to full enumeration, so an uncapped `samples` would let
/// one request sweep a 2^20+ space the exhaustive guard exists to
/// reject.
pub(crate) const MAX_DSE_SAMPLES: usize = 1 << 16;

/// One strategy-name parser for the CLI and the batch server, so the two
/// front ends cannot drift apart.
pub(crate) fn parse_strategy(
    label: &str,
    samples: usize,
    seed: u64,
) -> Result<ExploreStrategy, String> {
    match label {
        "exhaustive" => Ok(ExploreStrategy::Exhaustive),
        "greedy" => Ok(ExploreStrategy::Greedy),
        "random" => {
            if samples > MAX_DSE_SAMPLES {
                return Err(format!("samples capped at {MAX_DSE_SAMPLES}"));
            }
            Ok(ExploreStrategy::Random { samples, seed })
        }
        other => Err(format!(
            "unknown strategy `{other}` (expected exhaustive, greedy, or random)"
        )),
    }
}

/// Rejects exhaustive sweeps whose point count would be absurd; shared by
/// the CLI and the batch server.
pub(crate) fn check_exhaustive_size(
    strategy: ExploreStrategy,
    buffered_stages: usize,
) -> Result<(), String> {
    if matches!(strategy, ExploreStrategy::Exhaustive) && buffered_stages > 16 {
        return Err(format!(
            "{buffered_stages} buffered stages make 2^{buffered_stages} exhaustive points; use strategy random or greedy"
        ));
    }
    Ok(())
}

/// `imagen dse`: walk the per-stage DP/DPLC space, print every point and
/// the Pareto frontier; with `--certify`, translation-validate each
/// frontier design before reporting it.
pub fn run_dse(dag: &Dag, opts: &Options) -> Result<(), CliError> {
    let strategy = parse_strategy(&opts.strategy, opts.samples, opts.seed)?;
    check_exhaustive_size(strategy, dag.buffered_stages().len())?;
    let bits = opts.input_bits.unwrap_or(4);
    let res = explore(
        dag,
        &opts.geometry(),
        opts.backend(),
        ExploreOptions {
            strategy,
            threads: opts.threads,
            measure: MeasureMode::Noise {
                seed: opts.seed,
                bits,
            },
        },
    )
    .map_err(|e| e.to_string())?;

    let mut text = header(dag, opts);
    let names: Vec<&str> = res
        .buffered_stages
        .iter()
        .map(|&s| dag.stage(StageId::from_index(s)).name())
        .collect();
    text.push_str(&format!(
        "strategy : {}\nbuffers  : {}\n\n## Design space ({} points)\n\n",
        opts.strategy,
        names.join(", "),
        res.points.len()
    ));

    let frontier = res.pareto_front();
    let choice_width = res
        .points
        .iter()
        .map(|p| choices_label(p).len())
        .max()
        .unwrap_or(8)
        .max("choices".len());
    text.push_str(&format!(
        "  point  {:<cw$}  {:>9}  {:>9}  {:>9}  {:>10}  {:>9}  pareto\n",
        "choices",
        "SRAM KB",
        "area mm2",
        "power mW",
        "meas mW",
        "gated mW",
        cw = choice_width
    ));
    for (i, p) in res.points.iter().enumerate() {
        let (meas, gated) = match p.measured {
            Some(m) => (
                format!("{:.3}", m.power_mw),
                format!("{:.3}", m.gated_power_mw),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        text.push_str(&format!(
            "  {i:>5}  {:<cw$}  {:>9.3}  {:>9.4}  {:>9.3}  {meas:>10}  {gated:>9}  {}\n",
            choices_label(p),
            p.sram_kb,
            p.area_mm2,
            p.power_mw,
            if frontier.contains(&i) { "*" } else { "" },
            cw = choice_width
        ));
    }
    text.push_str(&format!(
        "\nPareto frontier: {} of {} points ({})\n",
        frontier.len(),
        res.points.len(),
        frontier
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    // The measured-energy axis (netlist-interpreted, default-on) has its
    // own frontier: area vs measured energy per frame.
    let measured_front = res.pareto_front_by(|p| {
        (
            p.area_mm2,
            p.measured.map_or(f64::NAN, |m| m.energy_pj_per_frame),
        )
    });
    if !measured_front.is_empty() {
        text.push_str(&format!(
            "Measured frontier (area vs pJ/frame): {} of {} points ({})\n",
            measured_front.len(),
            res.points.len(),
            measured_front
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    // --profile: the sweep's work counters (the span breakdown itself is
    // printed by `run_profiled` after this returns).
    if opts.profile {
        let s = res.stats;
        let hit_rate = if s.points_priced == 0 {
            0.0
        } else {
            100.0 * s.cache_hits as f64 / s.points_priced as f64
        };
        text.push_str(&format!(
            "\n## Sweep work\n\n  points priced  : {}\n  cache hits     : {} ({hit_rate:.1}%)\n  cache misses   : {}\n  simplex pivots : {}\n",
            s.points_priced, s.cache_hits, s.cache_misses, s.simplex_pivots
        ));
    }

    // --certify: translation-validate every frontier design. Each point
    // chooses its own memory spec (DP vs DPLC per buffer), so the
    // certificate runs against that point's spec and design style.
    let mut refuted_points = 0usize;
    if opts.certify {
        text.push_str(&format!(
            "\n## Frontier certificates ({} points)\n\n",
            frontier.len()
        ));
        for &i in &frontier {
            let point = &res.points[i];
            let mut aopts = crate::lint::analysis_options(opts);
            aopts.spec = res.spec_of(point, opts.backend());
            let line = match certify_dag_styled(dag, &aopts, point.design.style) {
                Ok(cert) => {
                    if cert.refuted() > 0 {
                        refuted_points += 1;
                    }
                    format!(
                        "  point {i:>5}  {:<8}  {} proved, {} fuzzed, {} refuted",
                        cert.status(),
                        cert.proved(),
                        cert.fuzzed(),
                        cert.refuted()
                    )
                }
                Err(d) => {
                    refuted_points += 1;
                    format!("  point {i:>5}  error     {}", d.render())
                }
            };
            text.push_str(&line);
            text.push('\n');
        }
    }
    print!("{text}");
    if refuted_points > 0 {
        return Err(CliError::Findings(format!(
            "{refuted_points} frontier point(s) failed certification"
        )));
    }
    Ok(())
}

fn choices_label(p: &imagen_dse::DsePoint) -> String {
    p.choices
        .iter()
        .map(|c| c.label())
        .collect::<Vec<_>>()
        .join(",")
}

/// Deterministic noise frame, `bits`-bit unsigned pixels — the shared
/// stimulus convention of `imagen_algos` ([`imagen_algos::noise_bits`]).
pub(crate) fn noise_frame(geom: &imagen_mem::ImageGeometry, seed: u64, bits: u32) -> Image {
    Image::from_fn(geom.width, geom.height, move |x, y| {
        imagen_algos::noise_bits(seed, x, y, bits)
    })
}

fn check_frame_contains_stencil(dag: &Dag, opts: &Options) -> Result<(), String> {
    let stats = dag.stats();
    let max_width = dag
        .edges()
        .map(|(_, e)| e.window().width())
        .max()
        .unwrap_or(1);
    if opts.height < stats.max_stencil_height + 4 || opts.width < max_width + 4 {
        return Err(format!(
            "frame {}x{} is too small for the {}x{} stencil; use --width/--height at least {}x{}",
            opts.width,
            opts.height,
            max_width,
            stats.max_stencil_height,
            max_width + 4,
            stats.max_stencil_height + 4
        ));
    }
    Ok(())
}

fn input_frames(dag: &Dag, opts: &Options, bits: u32) -> Vec<Image> {
    let inputs = dag.stages().filter(|(_, s)| s.is_input()).count();
    (0..inputs)
        .map(|i| noise_frame(&opts.geometry(), opts.seed.wrapping_add(i as u64), bits))
        .collect()
}

/// `imagen sim`: golden executor vs netlist interpreter on a seeded frame.
pub fn run_sim(dag: &Dag, opts: &Options) -> Result<(), CliError> {
    check_frame_contains_stencil(dag, opts)?;
    let out = Compiler::new(opts.geometry(), opts.memory_spec())
        .compile_dag(dag)
        .map_err(|e| e.to_string())?;
    let widths = if opts.wide {
        BitWidths::wide()
    } else {
        BitWidths::default()
    };
    // At hardware widths, keep inputs narrow enough that no kernel
    // intermediate escapes the pixel datapath (same convention as the
    // differential test suite); at wide widths the datapath is the model.
    let bits = opts.input_bits.unwrap_or(if opts.wide { 8 } else { 4 });
    let inputs = input_frames(dag, opts, bits);

    let golden = execute(&out.plan.dag, &inputs).map_err(|e| e.to_string())?;
    let net = build_netlist(&out.plan.dag, &out.plan.design, &widths);
    let run = interpret(&net, &inputs).map_err(|e| e.to_string())?;

    let mut text = header(dag, opts);
    text.push_str(&format!(
        "widths   : {}/{} bits\ninput    : seed {}, {} bits, {} frame(s)\n\n## Differential\n\n",
        widths.pixel_bits,
        widths.acc_bits,
        opts.seed,
        bits,
        inputs.len()
    ));
    text.push_str(&format!(
        "  interpreter ran {} cycles, latency {}, {} SRAM reads, {} SRAM writes\n",
        run.cycles, run.latency, run.sram_reads, run.sram_writes
    ));

    let mut compared = 0usize;
    let mut mismatched = 0usize;
    for (stage, img) in &run.output_images {
        let gold = golden.stage(StageId::from_index(*stage));
        let diff = img.diff_count(gold);
        compared += (img.width() * img.height()) as usize;
        mismatched += diff;
        text.push_str(&format!(
            "  stage {:<12} {}\n",
            out.plan.dag.stage(StageId::from_index(*stage)).name(),
            if diff == 0 {
                "bit-exact".to_string()
            } else {
                format!("{diff} mismatched pixel(s)")
            }
        ));
    }
    text.push_str(&format!(
        "\nverdict: {} ({} output stream(s), {} pixels compared)\n",
        if mismatched == 0 { "PASS" } else { "FAIL" },
        run.output_images.len(),
        compared
    ));
    print!("{text}");
    if mismatched > 0 {
        return Err(CliError::Findings(format!(
            "netlist diverges from the golden model on {mismatched} pixel(s)"
        )));
    }
    Ok(())
}

/// `imagen energy`: analytic vs activity-measured power on a seeded frame.
pub fn run_energy(dag: &Dag, opts: &Options) -> Result<(), String> {
    check_frame_contains_stencil(dag, opts)?;
    let out = Compiler::new(opts.geometry(), opts.memory_spec())
        .compile_dag(dag)
        .map_err(|e| e.to_string())?;
    let bits = opts.input_bits.unwrap_or(4);
    let inputs = input_frames(dag, opts, bits);
    let m = imagen_power::measure_netlist(&out.netlist, &out.plan.design, &inputs)
        .map_err(|e| e.to_string())?;
    let design = &out.plan.design;

    let mut text = header(dag, opts);
    text.push_str(&format!(
        "input    : seed {}, {bits} bits, {} frame(s)\n\n## Power (analytic model vs interpreted activity)\n\n",
        opts.seed,
        inputs.len()
    ));
    let rows = [
        (
            "total power mW",
            design.total_power_mw(),
            m.ungated.total_mw(),
        ),
        (
            "memory power mW",
            design.memory_power_mw(),
            m.ungated.memory_mw(),
        ),
    ];
    text.push_str(&format!(
        "  {:<16} {:>10} {:>10} {:>8}\n",
        "", "analytic", "measured", "ratio"
    ));
    for (label, a, b) in rows {
        text.push_str(&format!(
            "  {label:<16} {a:>10.3} {b:>10.3} {:>8.3}\n",
            if a > 0.0 { b / a } else { f64::NAN }
        ));
    }
    text.push_str(&format!(
        "\n  energy/frame   : {:.1} pJ ({:.1} dynamic + {:.1} static)\n",
        m.ungated.energy_pj_per_frame(),
        m.ungated.dynamic_pj_per_frame(),
        m.ungated.static_pj_per_frame()
    ));
    text.push_str(&format!(
        "  clock gating   : {:.3} mW -> {:.3} mW ({:.2}% of dynamic energy, {} read-port cycles gated off)\n",
        m.ungated.total_mw(),
        m.gated.total_mw(),
        m.gating_saving_pct(),
        m.gated_off_cycles()
    ));

    text.push_str("\n## Per-buffer activity (ungated)\n\n");
    text.push_str(&format!(
        "  {:<12} {:>8} {:>8} {:>8} {:>12} {:>10}\n",
        "buffer", "reads", "writes", "idle", "dynamic pJ", "static mW"
    ));
    for b in &m.ungated.buffers {
        text.push_str(&format!(
            "  {:<12} {:>8} {:>8} {:>8} {:>12.1} {:>10.4}\n",
            out.plan.dag.stage(StageId::from_index(b.stage)).name(),
            b.reads,
            b.writes,
            b.idle_reads,
            b.dynamic_pj,
            b.static_mw
        ));
    }
    print!("{text}");
    Ok(())
}
