//! `imagen serve` — a JSONL batch compile server.
//!
//! One request per line, one response per line, responses in request
//! order. The batch is fanned over a `std::thread::scope` worker pool
//! whose workers share one [`imagen_core::CompileCache`] and a map of
//! live [`imagen_core::Session`]s keyed by (pipeline fingerprint,
//! geometry): identical pipelines recompile from the warm cache in
//! microseconds (PR 2's memoization), and results are byte-identical to
//! a sequential run regardless of worker count.
//!
//! ## Protocol
//!
//! Request members (defaults in brackets):
//!
//! ```text
//! id          any value, echoed verbatim                     [null]
//! cmd         "compile" | "dse" | "ping"                     (required)
//! source      DSL program text                               (required)
//! name        pipeline name                                  ["pipeline"]
//! width, height, pixel_bits                                  [64, 48, 16]
//! block_bits  ASIC macro capacity, bits                      [32768]
//! fpga        target FPGA BRAMs                              [false]
//! ports       ports per block                                [2]
//! coalesce    coalesce every line buffer                     [false]
//! emit        include the Verilog text (compile)             [false]
//! strategy    "exhaustive" | "greedy" | "random" (dse)       ["exhaustive"]
//! samples     random-strategy budget (dse)                   [64]
//! seed        random-strategy seed (dse)                     [0]
//! timing      include "elapsed_us" (non-deterministic!)      [false]
//! deny_warnings  reject compiles with lint warnings          [false]
//! ```
//!
//! Every compile request is admission-checked by the cheap front half of
//! the static analyzer ([`imagen_analysis::front_lints`]: parse, DSL
//! lints, lower, width/overflow dataflow — no planning) before it can
//! occupy a worker: lint *errors* always reject, lint *warnings* reject
//! under `deny_warnings`, and successful compile responses carry the
//! observed `lint_warnings` / `lint_notes` counts.
//!
//! Success: `{"id":...,"ok":true,...}`, including the translation-
//! validation verdict for the compiled design (`certificate_status`
//! plus the full per-obligation `certificate` object; certificates are
//! memoized per (pipeline, geometry, spec) alongside the compile
//! cache). Failure:
//! `{"id":...,"ok":false,"error":"...","line":L,"col":C}` (span members
//! only when the error has one).

use crate::json::{self, Json, ObjBuilder};
use crate::{validate_frame_budget, validate_geometry, Options};
use imagen_core::{CompileCache, Session};
use imagen_dse::{explore, ExploreOptions, ExploreStrategy};
use imagen_ir::StageId;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_obs::{Collector, Counter, Gauge, Histogram, Metrics};
use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Session map key: (pipeline fingerprint, width, height, pixel bits).
type SessionKey = (u64, u32, u32, u32);

/// Certificate memo key: session key + the memory-spec identity the
/// request chose (backend kind, block bits, ports, coalescing).
type CertKey = (SessionKey, bool, u64, u32, bool);

/// Live sessions a long-running server keeps at most. Every session
/// pins its DAG, constraint skeleton and memoized design points (via
/// the shared cache), so a client streaming ever-new pipelines must not
/// grow the server without bound: crossing the cap drops the whole
/// generation (sessions *and* cache) and starts a fresh one — requests
/// in flight keep their `Arc`s alive until they finish.
const MAX_LIVE_SESSIONS: usize = 64;

/// Shared server state: one compile cache, one session per (pipeline,
/// geometry) seen — both bounded by [`MAX_LIVE_SESSIONS`].
pub struct Hub {
    state: Mutex<HubState>,
    /// The server's metrics registry. Registered cells live in
    /// [`HubStats`] handles so the request hot path never takes the
    /// registry mutex; the registry itself only serves `"cmd":"stats"`
    /// snapshots and the periodic stderr line.
    metrics: Metrics,
    stats: HubStats,
    /// `--stats-every N`: print a stats line to stderr every N
    /// completed requests (0 = never).
    stats_every: u64,
}

/// Pre-registered metric handles — one atomic op each on the hot path.
struct HubStats {
    req_total: Counter,
    req_compile: Counter,
    req_dse: Counter,
    req_ping: Counter,
    req_stats: Counter,
    req_other: Counter,
    errors: Counter,
    admission_rejected: Counter,
    inflight: Gauge,
    queue_wait_us: Histogram,
    handle_us: Histogram,
    /// Mirrored from the current-generation [`CompileCache`] (see
    /// [`CompileCache::with_observers`]): cumulative across generation
    /// rollovers, readable without the hub state lock.
    cache_hits: Counter,
    cache_misses: Counter,
    rollovers: Counter,
}

impl HubStats {
    fn register(metrics: &Metrics) -> HubStats {
        HubStats {
            req_total: metrics.counter("requests.total"),
            req_compile: metrics.counter("requests.compile"),
            req_dse: metrics.counter("requests.dse"),
            req_ping: metrics.counter("requests.ping"),
            req_stats: metrics.counter("requests.stats"),
            req_other: metrics.counter("requests.other"),
            errors: metrics.counter("errors"),
            admission_rejected: metrics.counter("admission.rejected"),
            inflight: metrics.gauge("inflight"),
            queue_wait_us: metrics.histogram("queue_wait_us"),
            handle_us: metrics.histogram("handle_us"),
            cache_hits: metrics.counter("cache.hits"),
            cache_misses: metrics.counter("cache.misses"),
            rollovers: metrics.counter("generation.rollovers"),
        }
    }
}

struct HubState {
    cache: Arc<CompileCache>,
    sessions: HashMap<SessionKey, Arc<Session>>,
    /// Memoized translation-validation certificates, keyed by
    /// (session key, memory-spec identity). A certificate is a pure
    /// function of (dag, geometry, spec), so warm recompiles reuse it
    /// instead of re-proving — the warm path stays microseconds.
    certs: HashMap<CertKey, Json>,
    /// Bumped on every rollover, so a session built (outside the lock)
    /// against a retired cache is never installed into the new
    /// generation.
    generation: u64,
}

impl Hub {
    pub fn new() -> Hub {
        let metrics = Metrics::new();
        let stats = HubStats::register(&metrics);
        Hub {
            state: Mutex::new(HubState {
                cache: Arc::new(CompileCache::with_observers(
                    stats.cache_hits.clone(),
                    stats.cache_misses.clone(),
                )),
                sessions: HashMap::new(),
                certs: HashMap::new(),
                generation: 0,
            }),
            metrics,
            stats,
            stats_every: 0,
        }
    }

    /// Sets the `--stats-every` cadence (0 = never).
    pub fn with_stats_every(mut self, every: u64) -> Hub {
        self.stats_every = every;
        self
    }

    /// `(hits, misses)` of the compile cache, cumulative across
    /// generation rollovers. Reads registry counters the cache mirrors
    /// into — no hub state lock, so a stats probe never contends with
    /// the compile hot path.
    pub fn cache_stats(&self) -> (usize, usize) {
        (
            self.stats.cache_hits.get() as usize,
            self.stats.cache_misses.get() as usize,
        )
    }

    /// One-line operational summary for the periodic `--stats-every`
    /// stderr heartbeat.
    fn stats_line(&self) -> String {
        let s = &self.stats;
        let (hits, misses) = self.cache_stats();
        let hit_rate = if hits + misses == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", 100.0 * hits as f64 / (hits + misses) as f64)
        };
        let h = s.handle_us.snapshot();
        let q = s.queue_wait_us.snapshot();
        format!(
            "stats: req={} (compile={} dse={} ping={} stats={} other={}) \
             errors={} rejected={} inflight={} \
             queue_us[p50/p99]={}/{} handle_us[p50/p99]={}/{} \
             cache={hits}/{misses} ({hit_rate}) rollovers={}",
            s.req_total.get(),
            s.req_compile.get(),
            s.req_dse.get(),
            s.req_ping.get(),
            s.req_stats.get(),
            s.req_other.get(),
            s.errors.get(),
            s.admission_rejected.get(),
            s.inflight.get(),
            q.p50,
            q.p99,
            h.p50,
            h.p99,
            s.rollovers.get(),
        )
    }

    /// The memoized certificate for `key`, if this generation proved
    /// one already.
    fn cert(&self, key: &CertKey) -> Option<Json> {
        self.state
            .lock()
            .expect("hub state")
            .certs
            .get(key)
            .cloned()
    }

    /// Memoizes a freshly proved certificate (bounded with the session
    /// map: the rollover that clears sessions clears these too).
    fn remember_cert(&self, key: CertKey, cert: Json) {
        let mut state = self.state.lock().expect("hub state");
        if state.certs.len() >= 4 * MAX_LIVE_SESSIONS {
            state.certs.clear();
        }
        state.certs.insert(key, cert);
    }

    /// Number of live sessions (bounded by [`MAX_LIVE_SESSIONS`]).
    #[cfg(test)]
    fn live_sessions(&self) -> usize {
        self.state.lock().expect("hub state").sessions.len()
    }

    /// The session for `(dag, geom)`, building it on first sight. The
    /// constraint-skeleton build runs outside the state lock so
    /// concurrent requests for distinct pipelines never serialize on it.
    fn session(&self, dag: &imagen_ir::Dag, geom: ImageGeometry) -> Arc<Session> {
        let key = (dag.fingerprint(), geom.width, geom.height, geom.pixel_bits);
        let (cache, generation) = {
            let state = self.state.lock().expect("hub state");
            if let Some(s) = state.sessions.get(&key) {
                return s.clone();
            }
            (state.cache.clone(), state.generation)
        };
        let built = Arc::new(Session::with_cache(dag, geom, cache));
        let mut state = self.state.lock().expect("hub state");
        if state.sessions.len() >= MAX_LIVE_SESSIONS {
            state.sessions.clear();
            state.certs.clear();
            // The new generation's cache mirrors into the same registry
            // counters, so cache_stats() stays cumulative.
            state.cache = Arc::new(CompileCache::with_observers(
                self.stats.cache_hits.clone(),
                self.stats.cache_misses.clone(),
            ));
            state.generation += 1;
            self.stats.rollovers.add(1);
        }
        if state.generation != generation {
            // The generation rolled over while `built` was under
            // construction (by us above, or by a racing thread): `built`
            // points at a retired cache, so serve it to this request but
            // never install it — the map must only hold sessions of the
            // current generation. Skeleton rebuild on the next request
            // for this pipeline is cheap relative to a compile, and this
            // runs only around rollovers.
            return built;
        }
        state.sessions.entry(key).or_insert(built).clone()
    }
}

fn get_u64(req: &Json, key: &str, default: u64) -> Result<u64, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// Like [`get_u64`] but rejects values above `u32::MAX` instead of
/// truncating them — a request for a 2^32+1-pixel-wide frame must fail,
/// not silently compile a 1-pixel one.
fn get_u32(req: &Json, key: &str, default: u32) -> Result<u32, String> {
    let v = get_u64(req, key, default as u64)?;
    u32::try_from(v).map_err(|_| format!("`{key}` must be at most {}", u32::MAX))
}

fn get_bool(req: &Json, key: &str) -> Result<bool, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

struct Request {
    name: String,
    source: String,
    geom: ImageGeometry,
    backend: MemBackend,
    ports: u32,
    coalesce: bool,
    emit: bool,
    deny_warnings: bool,
    strategy: ExploreStrategy,
    strategy_label: String,
}

fn parse_request(req: &Json) -> Result<Request, String> {
    let source = req
        .get("source")
        .and_then(Json::as_str)
        .ok_or("`source` (string) is required")?
        .to_string();
    let name = req
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("pipeline")
        .to_string();
    let geom = ImageGeometry {
        width: get_u32(req, "width", 64)?,
        height: get_u32(req, "height", 48)?,
        pixel_bits: get_u32(req, "pixel_bits", 16)?,
    };
    validate_geometry(&geom)?;
    // Servers bound per-request allocations even for pure compiles: the
    // session map keeps DAG/skeleton state alive across requests.
    validate_frame_budget(&geom)?;
    let backend = if get_bool(req, "fpga")? {
        MemBackend::Fpga
    } else {
        MemBackend::Asic {
            block_bits: get_u64(req, "block_bits", 32768)?,
        }
    };
    if backend.block_bits() == 0 {
        return Err("`block_bits` must be positive".into());
    }
    let ports = get_u32(req, "ports", 2)?;
    if ports == 0 {
        return Err("`ports` must be at least 1".into());
    }
    let strategy_label = req
        .get("strategy")
        .and_then(Json::as_str)
        .unwrap_or("exhaustive")
        .to_string();
    let samples = get_u64(req, "samples", 64)?;
    let samples = usize::try_from(samples).map_err(|_| "`samples` is too large".to_string())?;
    let strategy =
        crate::report::parse_strategy(&strategy_label, samples, get_u64(req, "seed", 0)?)?;
    Ok(Request {
        name,
        source,
        geom,
        backend,
        ports,
        coalesce: get_bool(req, "coalesce")?,
        emit: get_bool(req, "emit")?,
        deny_warnings: get_bool(req, "deny_warnings")?,
        strategy,
        strategy_label,
    })
}

fn error_response(id: Json, msg: String, pos: Option<imagen_dsl::Pos>) -> Json {
    let mut b = ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(false))
        .push("error", Json::Str(msg));
    if let Some(p) = pos {
        b = b
            .push("line", Json::Num(p.line as f64))
            .push("col", Json::Num(p.col as f64));
    }
    b.build()
}

/// Runs the cheap front half of the analyzer as an admission check.
/// Returns the rejection response, or the (warnings, notes) counts to
/// mirror into the success payload.
fn lint_admission(id: &Json, r: &Request, spec: &MemorySpec) -> Result<(usize, usize), Json> {
    let aopts = imagen_analysis::AnalysisOptions {
        geom: r.geom,
        spec: spec.clone(),
        widths: imagen_rtl::BitWidths {
            pixel_bits: r.geom.pixel_bits,
            acc_bits: (2 * r.geom.pixel_bits).min(64),
        },
        input_range: imagen_analysis::AnalysisOptions::default().input_range,
    };
    let lint = imagen_analysis::front_lints(&r.name, &r.source, &aopts);
    let pos_of = |d: &imagen_analysis::Diagnostic| match d.locus {
        imagen_analysis::Locus::Source { line, col } => Some(imagen_dsl::Pos { line, col }),
        _ => None,
    };
    if let Some(d) = lint
        .diagnostics
        .iter()
        .find(|d| d.severity == imagen_analysis::Severity::Error)
    {
        return Err(error_response(id.clone(), d.message.clone(), pos_of(d)));
    }
    if r.deny_warnings {
        if let Some(d) = lint
            .diagnostics
            .iter()
            .find(|d| d.severity == imagen_analysis::Severity::Warning)
        {
            return Err(error_response(
                id.clone(),
                format!("denied warning[{}]: {}", d.code, d.message),
                pos_of(d),
            ));
        }
    }
    Ok((lint.warnings(), lint.notes()))
}

fn compile_response(id: Json, r: &Request, hub: &Hub) -> Json {
    let mut spec = MemorySpec::new(r.backend, r.ports);
    if r.coalesce {
        spec = spec.with_coalescing();
    }
    let (lint_warnings, lint_notes) = match lint_admission(&id, r, &spec) {
        Ok(counts) => counts,
        Err(resp) => {
            hub.stats.admission_rejected.add(1);
            return resp;
        }
    };
    let dag = match imagen_dsl::compile(&r.name, &r.source) {
        Ok(dag) => dag,
        Err(e) => return error_response(id, e.to_string(), e.pos()),
    };
    let session = hub.session(&dag, r.geom);
    let out = match session.compile(&spec, None) {
        Ok(out) => out,
        Err(e) => return error_response(id, e.to_string(), None),
    };
    let stats = dag.stats();
    let design = &out.plan.design;
    let mut b = ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(true))
        .push("name", Json::Str(dag.name().to_string()))
        .push("stages", Json::Num(stats.stages as f64))
        .push("edges", Json::Num(stats.edges as f64))
        .push(
            "multi_consumer",
            Json::Num(stats.multi_consumer_stages as f64),
        )
        .push("style", Json::Str(design.style.label().to_string()))
        .push("sram_kb", Json::Num(design.sram_kb()))
        .push("blocks", Json::Num(design.block_count() as f64))
        .push("area_mm2", Json::Num(design.total_area_mm2()))
        .push("power_mw", Json::Num(design.total_power_mw()))
        .push(
            "latency_cycles",
            Json::Num(
                out.plan
                    .schedule
                    .latency(&out.plan.dag, r.geom.width, r.geom.height) as f64,
            ),
        )
        .push(
            "verilog_lines",
            Json::Num(out.verilog.lines().count() as f64),
        )
        .push("lint_warnings", Json::Num(lint_warnings as f64))
        .push("lint_notes", Json::Num(lint_notes as f64));
    // Translation validation: every compile response carries the
    // certificate verdict for the netlist it just handed back. The dag
    // must be the *planned* dag (relay stages included), and the widths
    // come from the netlist itself. Certificates are pure in
    // (dag, geometry, spec), so the hub memoizes them alongside the
    // compile cache and warm recompiles skip the prover.
    let (is_fpga, block_bits) = match r.backend {
        MemBackend::Fpga => (true, 0),
        MemBackend::Asic { block_bits } => (false, block_bits),
    };
    let cert_key: CertKey = (
        (
            dag.fingerprint(),
            r.geom.width,
            r.geom.height,
            r.geom.pixel_bits,
        ),
        is_fpga,
        block_bits,
        r.ports,
        r.coalesce,
    );
    let cert_json = hub.cert(&cert_key).unwrap_or_else(|| {
        let aopts = imagen_analysis::AnalysisOptions {
            geom: r.geom,
            spec: spec.clone(),
            widths: out.netlist.widths,
            input_range: imagen_analysis::AnalysisOptions::default().input_range,
        };
        let cert = imagen_analysis::certify_netlist(&out.plan.dag, &out.netlist, &aopts);
        let j = crate::lint::certificate_json(&cert);
        hub.remember_cert(cert_key, j.clone());
        j
    });
    let status = cert_json
        .get("status")
        .and_then(|s| s.as_str())
        .unwrap_or("unknown")
        .to_string();
    b = b
        .push("certificate_status", Json::Str(status))
        .push("certificate", cert_json);
    if r.emit {
        b = b.push("verilog", Json::Str(out.verilog.clone()));
    }
    b.build()
}

fn dse_response(id: Json, r: &Request, hub: &Hub) -> Json {
    let dag = match imagen_dsl::compile(&r.name, &r.source) {
        Ok(dag) => dag,
        Err(e) => return error_response(id, e.to_string(), e.pos()),
    };
    if let Err(e) = crate::report::check_exhaustive_size(r.strategy, dag.buffered_stages().len()) {
        return error_response(id, e, None);
    }
    // DSE owns its fan-out; each request explores sequentially so the
    // serve worker pool stays the only concurrency level.
    let res = match explore(
        &dag,
        &r.geom,
        r.backend,
        ExploreOptions {
            strategy: r.strategy,
            threads: 1,
            ..ExploreOptions::default()
        },
    ) {
        Ok(res) => res,
        Err(e) => return error_response(id, e.to_string(), None),
    };
    let _ = hub; // dse builds its own session; the hub serves compiles
    let frontier = res.pareto_front();
    let names: Vec<Json> = res
        .buffered_stages
        .iter()
        .map(|&s| Json::Str(dag.stage(StageId::from_index(s)).name().to_string()))
        .collect();
    let points: Vec<Json> = frontier
        .iter()
        .map(|&i| {
            let p = &res.points[i];
            ObjBuilder::new()
                .push("point", Json::Num(i as f64))
                .push(
                    "choices",
                    Json::Str(
                        p.choices
                            .iter()
                            .map(|c| c.label())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                )
                .push("sram_kb", Json::Num(p.sram_kb))
                .push("area_mm2", Json::Num(p.area_mm2))
                .push("power_mw", Json::Num(p.power_mw))
                // Measured (netlist-interpreted) energy, default-on.
                .push(
                    "measured_power_mw",
                    p.measured.map_or(Json::Null, |m| Json::Num(m.power_mw)),
                )
                .push(
                    "measured_gated_mw",
                    p.measured
                        .map_or(Json::Null, |m| Json::Num(m.gated_power_mw)),
                )
                .push(
                    "energy_pj_per_frame",
                    p.measured
                        .map_or(Json::Null, |m| Json::Num(m.energy_pj_per_frame)),
                )
                .build()
        })
        .collect();
    ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(true))
        .push("name", Json::Str(dag.name().to_string()))
        .push("strategy", Json::Str(r.strategy_label.clone()))
        .push("buffers", Json::Arr(names))
        .push("points", Json::Num(res.points.len() as f64))
        .push("pareto", Json::Arr(points))
        .build()
}

/// The `"cmd":"stats"` response: the operational numbers a daemon
/// operator wants first (request mix, errors, latency percentiles,
/// cache hit rate), plus the full `imagen-metrics/1` snapshot under
/// `metrics` — the exact object `imagen stats` renders. Snapshot reads
/// race live writers by design; every cell is an independent atomic.
fn stats_response(id: Json, hub: &Hub) -> Json {
    let snap = hub.metrics.snapshot();
    let counter = |name: &str| Json::Num(snap.counter(name) as f64);
    let hist_obj = |name: &str| {
        let h = snap
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| *h)
            .unwrap_or_default();
        ObjBuilder::new()
            .push("count", Json::Num(h.count as f64))
            .push("mean_us", Json::Num(h.mean()))
            .push("p50_us", Json::Num(h.p50 as f64))
            .push("p90_us", Json::Num(h.p90 as f64))
            .push("p99_us", Json::Num(h.p99 as f64))
            .push("max_us", Json::Num(h.max as f64))
            .build()
    };
    let inflight = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "inflight")
        .map_or(0, |(_, v)| *v);
    let (hits, misses) = hub.cache_stats();
    let hit_rate = if hits + misses == 0 {
        Json::Null
    } else {
        Json::Num(hits as f64 / (hits + misses) as f64)
    };
    let live_sessions = hub.state.lock().expect("hub state").sessions.len();
    ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(true))
        .push(
            "requests",
            ObjBuilder::new()
                .push("total", counter("requests.total"))
                .push("compile", counter("requests.compile"))
                .push("dse", counter("requests.dse"))
                .push("ping", counter("requests.ping"))
                .push("stats", counter("requests.stats"))
                .push("other", counter("requests.other"))
                .build(),
        )
        .push("errors", counter("errors"))
        .push("admission_rejected", counter("admission.rejected"))
        .push("inflight", Json::Num(inflight as f64))
        .push("queue_wait", hist_obj("queue_wait_us"))
        .push("handle_time", hist_obj("handle_us"))
        .push(
            "cache",
            ObjBuilder::new()
                .push("hits", Json::Num(hits as f64))
                .push("misses", Json::Num(misses as f64))
                .push("hit_rate", hit_rate)
                .build(),
        )
        .push("generation_rollovers", counter("generation.rollovers"))
        .push("live_sessions", Json::Num(live_sessions as f64))
        .push(
            "metrics",
            json::parse(&snap.to_json()).unwrap_or(Json::Null),
        )
        .build()
}

/// Answers one request line (tests drive the server through this; the
/// batch and TCP paths go through [`handle_at`] with an enqueue time).
#[cfg(test)]
fn handle(line: &str, hub: &Hub) -> Json {
    handle_at(line, hub, None)
}

/// Answers one request line picked off a queue; `enqueued` (when the
/// line entered the queue) feeds the queue-wait histogram.
fn handle_at(line: &str, hub: &Hub, enqueued: Option<Instant>) -> Json {
    let t0 = Instant::now();
    if let Some(at) = enqueued {
        hub.stats
            .queue_wait_us
            .record(at.elapsed().as_micros() as u64);
    }
    hub.stats.inflight.add(1);
    let resp = handle_inner(line, hub, t0);
    if resp.get("ok") == Some(&Json::Bool(false)) {
        hub.stats.errors.add(1);
    }
    hub.stats.inflight.sub(1);
    hub.stats.handle_us.record(t0.elapsed().as_micros() as u64);
    hub.stats.req_total.add(1);
    if hub.stats_every > 0 && hub.stats.req_total.get().is_multiple_of(hub.stats_every) {
        eprintln!("{}", hub.stats_line());
    }
    resp
}

fn handle_inner(line: &str, hub: &Hub, t0: Instant) -> Json {
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(Json::Null, format!("bad request JSON: {e}"), None),
    };
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let timing = match get_bool(&req, "timing") {
        Ok(t) => t,
        Err(e) => return error_response(id, e, None),
    };
    let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("");
    match cmd {
        "compile" => &hub.stats.req_compile,
        "dse" => &hub.stats.req_dse,
        "ping" => &hub.stats.req_ping,
        "stats" => &hub.stats.req_stats,
        _ => &hub.stats.req_other,
    }
    .add(1);
    let mut resp = match cmd {
        "ping" => ObjBuilder::new()
            .push("id", id)
            .push("ok", Json::Bool(true))
            .push("pong", Json::Bool(true))
            .build(),
        "stats" => stats_response(id, hub),
        "compile" | "dse" => match parse_request(&req) {
            Err(e) => error_response(id, e, None),
            Ok(r) => {
                let run = || {
                    if cmd == "compile" {
                        compile_response(id.clone(), &r, hub)
                    } else {
                        dse_response(id.clone(), &r, hub)
                    }
                };
                if timing {
                    // `timing` folds into the span infrastructure: the
                    // request runs under its own collector and the
                    // response carries the per-phase breakdown.
                    let collector = Arc::new(Collector::new());
                    let mut resp = imagen_obs::with_collector(&collector, run);
                    if let Json::Obj(members) = &mut resp {
                        let phases: Vec<(String, Json)> = collector
                            .phase_totals()
                            .iter()
                            .map(|t| (t.name.to_string(), Json::Num((t.total_ns / 1_000) as f64)))
                            .collect();
                        members.push(("phase_us".into(), Json::Obj(phases)));
                    }
                    resp
                } else {
                    run()
                }
            }
        },
        "" => error_response(id, "`cmd` (string) is required".into(), None),
        other => error_response(id, format!("unknown cmd `{other}`"), None),
    };
    if timing {
        if let Json::Obj(members) = &mut resp {
            members.push((
                "elapsed_us".into(),
                Json::Num(t0.elapsed().as_micros() as f64),
            ));
        }
    }
    resp
}

fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Answers a batch of request lines on up to `threads` scoped workers.
/// The response vector is in request order and byte-identical to a
/// sequential (`threads == 1`) run.
pub fn run_batch(lines: &[String], threads: usize, hub: &Hub) -> Vec<String> {
    let workers = effective_threads(threads).min(lines.len().max(1));
    let slots: Vec<Mutex<Option<String>>> = lines.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Whole batch "enqueues" at once: queue-wait measures how long a
    // line waited for a free worker.
    let enqueued = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= lines.len() {
                    break;
                }
                let resp = handle_at(&lines[i], hub, Some(enqueued)).to_line();
                *slots[i].lock().expect("slot") = Some(resp);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("worker filled slot"))
        .collect()
}

/// `imagen serve` entry point.
pub fn run(opts: &Options) -> Result<(), String> {
    let hub = Arc::new(Hub::new().with_stats_every(opts.stats_every));
    match &opts.tcp {
        None => {
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|e| format!("reading stdin: {e}"))?;
            let lines: Vec<String> = input
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(String::from)
                .collect();
            let responses = run_batch(&lines, opts.threads, &hub);
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            for r in &responses {
                writeln!(w, "{r}").map_err(|e| format!("writing stdout: {e}"))?;
            }
            w.flush().map_err(|e| e.to_string())?;
            let (hits, misses) = hub.cache_stats();
            eprintln!(
                "served {} request(s) on {} worker(s); compile cache: {hits} hit(s), {misses} miss(es)",
                responses.len(),
                effective_threads(opts.threads).min(lines.len().max(1))
            );
            Ok(())
        }
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("listening {local}");
            std::io::stdout().flush().ok();
            let threads = opts.threads;
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("accept: {e}");
                        continue;
                    }
                };
                let hub = hub.clone();
                std::thread::spawn(move || serve_connection(stream, &hub, threads));
            }
            Ok(())
        }
    }
}

/// One TCP connection: requests stream through the same worker-pool
/// shape as stdin batches (`--threads` means the same thing in both
/// modes), and responses stream back *in request order* as soon as each
/// is ready — a reassembly writer holds out-of-order completions.
fn serve_connection(stream: std::net::TcpStream, hub: &Hub, threads: usize) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{peer}: clone: {e}");
            return;
        }
    });
    let mut writer = std::io::BufWriter::new(stream);
    let workers = effective_threads(threads);
    std::thread::scope(|scope| {
        let (work_tx, work_rx) = std::sync::mpsc::channel::<(usize, String, Instant)>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, String)>();
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || loop {
                let item = work_rx.lock().expect("work queue").recv();
                let Ok((i, line, at)) = item else { break };
                let resp = handle_at(&line, hub, Some(at)).to_line();
                if done_tx.send((i, resp)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);
        scope.spawn(move || {
            let mut pending: HashMap<usize, String> = HashMap::new();
            let mut next = 0usize;
            while let Ok((i, resp)) = done_rx.recv() {
                pending.insert(i, resp);
                while let Some(r) = pending.remove(&next) {
                    if writeln!(writer, "{r}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                    next += 1;
                }
            }
        });
        let mut n = 0usize;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{peer}: read: {e}");
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            if work_tx.send((n, line, Instant::now())).is_err() {
                break;
            }
            n += 1;
        }
        drop(work_tx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLUR: &str = "input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y)) / 4 end";

    fn req(extra: &str) -> String {
        format!(
            r#"{{"id":1,"cmd":"compile","name":"blur","source":"{BLUR}","width":32,"height":24{extra}}}"#
        )
    }

    #[test]
    fn compile_request_round_trip() {
        let hub = Hub::new();
        let resp = handle(&req(""), &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("stages").unwrap().as_u64(), Some(2));
        assert!(resp.get("verilog").is_none());
        let resp = handle(&req(r#","emit":true"#), &hub);
        assert!(resp
            .get("verilog")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("module"));
    }

    #[test]
    fn errors_carry_spans() {
        let hub = Hub::new();
        let bad =
            r#"{"id":"x","cmd":"compile","source":"input a;\noutput b = im(x,y) c(x,y) end"}"#;
        let resp = handle(bad, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("id").unwrap().as_str(), Some("x"));
        assert_eq!(resp.get("line").unwrap().as_u64(), Some(2));
        assert!(resp.get("error").unwrap().as_str().unwrap().contains('c'));
    }

    #[test]
    fn malformed_inputs_answer_instead_of_crashing() {
        let hub = Hub::new();
        for line in [
            "",
            "not json",
            "{}",
            r#"{"cmd":"frob"}"#,
            r#"{"cmd":"compile"}"#,
            r#"{"cmd":"compile","source":"input"}"#,
            r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) end","width":0}"#,
            r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) end","ports":0}"#,
            r#"{"cmd":"dse","source":"input a; output b = im(x,y) a(x,y) end","strategy":"frob"}"#,
            // u32 overflow must reject, not silently truncate to width 1.
            r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) end","width":4294967297}"#,
            // Type errors on `timing` answer like every other field.
            r#"{"cmd":"ping","timing":"yes"}"#,
            // Random-budget DoS: a giant samples value must reject, not
            // fall back to enumerating the full design space.
            r#"{"cmd":"dse","source":"input a; output b = im(x,y) a(x,y) end","strategy":"random","samples":1000000000}"#,
        ] {
            let resp = handle(line, &hub);
            assert_eq!(
                resp.get("ok"),
                Some(&Json::Bool(false)),
                "line {line:?} must fail gracefully"
            );
        }
    }

    #[test]
    fn session_map_stays_bounded() {
        // Stream more distinct pipelines than the cap: the hub must roll
        // the generation over instead of growing forever.
        let hub = Hub::new();
        for i in 0..(MAX_LIVE_SESSIONS + 5) {
            let line = format!(
                r#"{{"id":{i},"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) + {i} end","width":16,"height":12}}"#
            );
            let resp = handle(&line, &hub);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "request {i}");
        }
        assert!(
            hub.live_sessions() <= MAX_LIVE_SESSIONS,
            "{} live sessions exceed the cap",
            hub.live_sessions()
        );
        // And the rolled-over hub still serves (and re-warms) correctly.
        let line = r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) + 0 end","width":16,"height":12}"#;
        let cold = handle(line, &hub);
        let warm = handle(line, &hub);
        assert_eq!(cold, warm);
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let lines: Vec<String> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    format!(r#"{{"id":{i},"cmd":"ping"}}"#)
                } else {
                    req("").replace(r#""id":1"#, &format!(r#""id":{i}"#))
                }
            })
            .collect();
        let sequential = run_batch(&lines, 1, &Hub::new());
        let threaded = run_batch(&lines, 4, &Hub::new());
        assert_eq!(sequential, threaded, "byte-identical across worker counts");
        for (i, resp) in sequential.iter().enumerate() {
            let v = json::parse(resp).unwrap();
            assert_eq!(v.get("id").unwrap().as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn lint_admission_gates_and_annotates_compiles() {
        let hub = Hub::new();
        // Clean pipeline: zero lint counts in the success payload.
        let resp = handle(&req(""), &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("lint_warnings").unwrap().as_u64(), Some(0));
        assert_eq!(resp.get("lint_notes").unwrap().as_u64(), Some(0));
        // `a << 9` truncates at the 16-bit output: a note, still admitted.
        let noisy = r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) << 9 end","width":32,"height":24}"#;
        let resp = handle(noisy, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("lint_notes").unwrap().as_u64(), Some(1));
        // A constant-foldable subexpression is a warning: admitted by
        // default, rejected (naming the code) under deny_warnings.
        let warny = r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) * (2 + 3 * 4) end","width":32,"height":24}"#;
        let resp = handle(warny, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("lint_warnings").unwrap().as_u64(), Some(1));
        let denied = format!(
            "{},\"deny_warnings\":true}}",
            warny.strip_suffix('}').unwrap()
        );
        let resp = handle(&denied, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let msg = resp.get("error").unwrap().as_str().unwrap();
        assert!(msg.contains("W0105"), "{msg}");
    }

    #[test]
    fn warm_cache_recompile_is_measurably_faster() {
        let hub = Hub::new();
        let line = req(r#","timing":true"#);
        let cold = handle(&line, &hub);
        let warm = handle(&line, &hub);
        let cold_us = cold.get("elapsed_us").unwrap().as_u64().unwrap();
        let warm_us = warm.get("elapsed_us").unwrap().as_u64().unwrap();
        let (hits, _) = hub.cache_stats();
        assert!(hits >= 1, "second request hit the shared cache");
        assert!(
            warm_us * 2 < cold_us.max(1),
            "warm recompile ({warm_us} us) not measurably faster than cold ({cold_us} us)"
        );
        // And the deterministic payloads are identical. `phase_us` is
        // timing data too (and the warm path runs fewer phases).
        let strip = |v: &Json| match v {
            Json::Obj(m) => Json::Obj(
                m.iter()
                    .filter(|(k, _)| k != "elapsed_us" && k != "phase_us")
                    .cloned()
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert_eq!(strip(&cold), strip(&warm));
    }

    #[test]
    fn timing_responses_carry_phase_breakdown() {
        let hub = Hub::new();
        let resp = handle(&req(r#","timing":true"#), &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let Some(Json::Obj(phases)) = resp.get("phase_us") else {
            panic!("timing compile response must carry phase_us");
        };
        let names: Vec<&str> = phases.iter().map(|(k, _)| k.as_str()).collect();
        for expect in [
            "frontend.parse",
            "frontend.lower",
            "plan.skeleton",
            "ilp.solve",
            "netlist.build",
            "emit",
        ] {
            assert!(
                names.contains(&expect),
                "missing phase {expect} in {names:?}"
            );
        }
        // Untimed responses stay exactly as before: no timing members.
        let resp = handle(&req(""), &hub);
        assert!(resp.get("phase_us").is_none());
        assert!(resp.get("elapsed_us").is_none());
    }

    #[test]
    fn stats_cmd_reports_request_mix_and_latency() {
        let hub = Hub::new();
        // A mixed workload: cold compile, warm recompile, ping, a
        // failure, and an unknown command.
        assert_eq!(handle(&req(""), &hub).get("ok"), Some(&Json::Bool(true)));
        assert_eq!(handle(&req(""), &hub).get("ok"), Some(&Json::Bool(true)));
        handle(r#"{"cmd":"ping"}"#, &hub);
        handle(r#"{"cmd":"compile"}"#, &hub);
        handle(r#"{"cmd":"frob"}"#, &hub);
        let resp = handle(r#"{"id":"s","cmd":"stats"}"#, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("id").unwrap().as_str(), Some("s"));
        let reqs = resp.get("requests").unwrap();
        assert_eq!(reqs.get("total").unwrap().as_u64(), Some(5));
        assert_eq!(reqs.get("compile").unwrap().as_u64(), Some(3));
        assert_eq!(reqs.get("ping").unwrap().as_u64(), Some(1));
        assert_eq!(reqs.get("stats").unwrap().as_u64(), Some(1));
        assert_eq!(reqs.get("other").unwrap().as_u64(), Some(1));
        assert_eq!(resp.get("errors").unwrap().as_u64(), Some(2));
        // The stats request itself is in flight while it snapshots.
        assert_eq!(resp.get("inflight").unwrap().as_u64(), Some(1));
        let cache = resp.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("hit_rate"), Some(&Json::Num(0.5)));
        let handle_time = resp.get("handle_time").unwrap();
        assert_eq!(handle_time.get("count").unwrap().as_u64(), Some(5));
        assert!(handle_time.get("p50_us").unwrap().as_u64().is_some());
        assert!(handle_time.get("p99_us").unwrap().as_u64().is_some());
        // The embedded registry snapshot round-trips the schema tag.
        let metrics = resp.get("metrics").unwrap();
        assert_eq!(
            metrics.get("schema").unwrap().as_str(),
            Some(imagen_obs::SNAPSHOT_SCHEMA)
        );
    }

    #[test]
    fn batch_mode_feeds_queue_wait_histogram() {
        let hub = Hub::new();
        let lines: Vec<String> = (0..4)
            .map(|i| format!(r#"{{"id":{i},"cmd":"ping"}}"#))
            .collect();
        run_batch(&lines, 2, &hub);
        let snap = hub.metrics.snapshot();
        let (_, q) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "queue_wait_us")
            .expect("queue_wait_us registered");
        assert_eq!(q.count, 4, "every batch line records a queue wait");
    }
}
