//! `imagen serve` — a JSONL batch compile server.
//!
//! One request per line, one response per line, responses in request
//! order. The batch is fanned over a `std::thread::scope` worker pool
//! whose workers share one [`imagen_core::CompileCache`] and a map of
//! live [`imagen_core::Session`]s keyed by (pipeline fingerprint,
//! geometry): identical pipelines recompile from the warm cache in
//! microseconds (PR 2's memoization), and results are byte-identical to
//! a sequential run regardless of worker count.
//!
//! ## Protocol
//!
//! Request members (defaults in brackets):
//!
//! ```text
//! id          any value, echoed verbatim                     [null]
//! cmd         "compile" | "dse" | "ping"                     (required)
//! source      DSL program text                               (required)
//! name        pipeline name                                  ["pipeline"]
//! width, height, pixel_bits                                  [64, 48, 16]
//! block_bits  ASIC macro capacity, bits                      [32768]
//! fpga        target FPGA BRAMs                              [false]
//! ports       ports per block                                [2]
//! coalesce    coalesce every line buffer                     [false]
//! emit        include the Verilog text (compile)             [false]
//! strategy    "exhaustive" | "greedy" | "random" (dse)       ["exhaustive"]
//! samples     random-strategy budget (dse)                   [64]
//! seed        random-strategy seed (dse)                     [0]
//! timing      include "elapsed_us" (non-deterministic!)      [false]
//! deny_warnings  reject compiles with lint warnings          [false]
//! ```
//!
//! Every compile request is admission-checked by the cheap front half of
//! the static analyzer ([`imagen_analysis::front_lints`]: parse, DSL
//! lints, lower, width/overflow dataflow — no planning) before it can
//! occupy a worker: lint *errors* always reject, lint *warnings* reject
//! under `deny_warnings`, and successful compile responses carry the
//! observed `lint_warnings` / `lint_notes` counts.
//!
//! Success: `{"id":...,"ok":true,...}`, including the translation-
//! validation verdict for the compiled design (`certificate_status`
//! plus the full per-obligation `certificate` object; certificates are
//! memoized per (pipeline, geometry, spec) alongside the compile
//! cache). Failure:
//! `{"id":...,"ok":false,"error":"...","line":L,"col":C}` (span members
//! only when the error has one).

use crate::json::{self, Json, ObjBuilder};
use crate::{validate_frame_budget, validate_geometry, Options};
use imagen_core::{CompileCache, Session};
use imagen_dse::{explore, ExploreOptions, ExploreStrategy};
use imagen_ir::StageId;
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Session map key: (pipeline fingerprint, width, height, pixel bits).
type SessionKey = (u64, u32, u32, u32);

/// Certificate memo key: session key + the memory-spec identity the
/// request chose (backend kind, block bits, ports, coalescing).
type CertKey = (SessionKey, bool, u64, u32, bool);

/// Live sessions a long-running server keeps at most. Every session
/// pins its DAG, constraint skeleton and memoized design points (via
/// the shared cache), so a client streaming ever-new pipelines must not
/// grow the server without bound: crossing the cap drops the whole
/// generation (sessions *and* cache) and starts a fresh one — requests
/// in flight keep their `Arc`s alive until they finish.
const MAX_LIVE_SESSIONS: usize = 64;

/// Shared server state: one compile cache, one session per (pipeline,
/// geometry) seen — both bounded by [`MAX_LIVE_SESSIONS`].
pub struct Hub {
    state: Mutex<HubState>,
}

struct HubState {
    cache: Arc<CompileCache>,
    sessions: HashMap<SessionKey, Arc<Session>>,
    /// Memoized translation-validation certificates, keyed by
    /// (session key, memory-spec identity). A certificate is a pure
    /// function of (dag, geometry, spec), so warm recompiles reuse it
    /// instead of re-proving — the warm path stays microseconds.
    certs: HashMap<CertKey, Json>,
    /// Bumped on every rollover, so a session built (outside the lock)
    /// against a retired cache is never installed into the new
    /// generation.
    generation: u64,
}

impl Hub {
    pub fn new() -> Hub {
        Hub {
            state: Mutex::new(HubState {
                cache: Arc::new(CompileCache::new()),
                sessions: HashMap::new(),
                certs: HashMap::new(),
                generation: 0,
            }),
        }
    }

    /// `(hits, misses)` of the current-generation cache.
    pub fn cache_stats(&self) -> (usize, usize) {
        self.state.lock().expect("hub state").cache.stats()
    }

    /// The memoized certificate for `key`, if this generation proved
    /// one already.
    fn cert(&self, key: &CertKey) -> Option<Json> {
        self.state
            .lock()
            .expect("hub state")
            .certs
            .get(key)
            .cloned()
    }

    /// Memoizes a freshly proved certificate (bounded with the session
    /// map: the rollover that clears sessions clears these too).
    fn remember_cert(&self, key: CertKey, cert: Json) {
        let mut state = self.state.lock().expect("hub state");
        if state.certs.len() >= 4 * MAX_LIVE_SESSIONS {
            state.certs.clear();
        }
        state.certs.insert(key, cert);
    }

    /// Number of live sessions (bounded by [`MAX_LIVE_SESSIONS`]).
    #[cfg(test)]
    fn live_sessions(&self) -> usize {
        self.state.lock().expect("hub state").sessions.len()
    }

    /// The session for `(dag, geom)`, building it on first sight. The
    /// constraint-skeleton build runs outside the state lock so
    /// concurrent requests for distinct pipelines never serialize on it.
    fn session(&self, dag: &imagen_ir::Dag, geom: ImageGeometry) -> Arc<Session> {
        let key = (dag.fingerprint(), geom.width, geom.height, geom.pixel_bits);
        let (cache, generation) = {
            let state = self.state.lock().expect("hub state");
            if let Some(s) = state.sessions.get(&key) {
                return s.clone();
            }
            (state.cache.clone(), state.generation)
        };
        let built = Arc::new(Session::with_cache(dag, geom, cache));
        let mut state = self.state.lock().expect("hub state");
        if state.sessions.len() >= MAX_LIVE_SESSIONS {
            state.sessions.clear();
            state.certs.clear();
            state.cache = Arc::new(CompileCache::new());
            state.generation += 1;
        }
        if state.generation != generation {
            // The generation rolled over while `built` was under
            // construction (by us above, or by a racing thread): `built`
            // points at a retired cache, so serve it to this request but
            // never install it — the map must only hold sessions of the
            // current generation. Skeleton rebuild on the next request
            // for this pipeline is cheap relative to a compile, and this
            // runs only around rollovers.
            return built;
        }
        state.sessions.entry(key).or_insert(built).clone()
    }
}

fn get_u64(req: &Json, key: &str, default: u64) -> Result<u64, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// Like [`get_u64`] but rejects values above `u32::MAX` instead of
/// truncating them — a request for a 2^32+1-pixel-wide frame must fail,
/// not silently compile a 1-pixel one.
fn get_u32(req: &Json, key: &str, default: u32) -> Result<u32, String> {
    let v = get_u64(req, key, default as u64)?;
    u32::try_from(v).map_err(|_| format!("`{key}` must be at most {}", u32::MAX))
}

fn get_bool(req: &Json, key: &str) -> Result<bool, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("`{key}` must be a boolean")),
    }
}

struct Request {
    name: String,
    source: String,
    geom: ImageGeometry,
    backend: MemBackend,
    ports: u32,
    coalesce: bool,
    emit: bool,
    deny_warnings: bool,
    strategy: ExploreStrategy,
    strategy_label: String,
}

fn parse_request(req: &Json) -> Result<Request, String> {
    let source = req
        .get("source")
        .and_then(Json::as_str)
        .ok_or("`source` (string) is required")?
        .to_string();
    let name = req
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("pipeline")
        .to_string();
    let geom = ImageGeometry {
        width: get_u32(req, "width", 64)?,
        height: get_u32(req, "height", 48)?,
        pixel_bits: get_u32(req, "pixel_bits", 16)?,
    };
    validate_geometry(&geom)?;
    // Servers bound per-request allocations even for pure compiles: the
    // session map keeps DAG/skeleton state alive across requests.
    validate_frame_budget(&geom)?;
    let backend = if get_bool(req, "fpga")? {
        MemBackend::Fpga
    } else {
        MemBackend::Asic {
            block_bits: get_u64(req, "block_bits", 32768)?,
        }
    };
    if backend.block_bits() == 0 {
        return Err("`block_bits` must be positive".into());
    }
    let ports = get_u32(req, "ports", 2)?;
    if ports == 0 {
        return Err("`ports` must be at least 1".into());
    }
    let strategy_label = req
        .get("strategy")
        .and_then(Json::as_str)
        .unwrap_or("exhaustive")
        .to_string();
    let samples = get_u64(req, "samples", 64)?;
    let samples = usize::try_from(samples).map_err(|_| "`samples` is too large".to_string())?;
    let strategy =
        crate::report::parse_strategy(&strategy_label, samples, get_u64(req, "seed", 0)?)?;
    Ok(Request {
        name,
        source,
        geom,
        backend,
        ports,
        coalesce: get_bool(req, "coalesce")?,
        emit: get_bool(req, "emit")?,
        deny_warnings: get_bool(req, "deny_warnings")?,
        strategy,
        strategy_label,
    })
}

fn error_response(id: Json, msg: String, pos: Option<imagen_dsl::Pos>) -> Json {
    let mut b = ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(false))
        .push("error", Json::Str(msg));
    if let Some(p) = pos {
        b = b
            .push("line", Json::Num(p.line as f64))
            .push("col", Json::Num(p.col as f64));
    }
    b.build()
}

/// Runs the cheap front half of the analyzer as an admission check.
/// Returns the rejection response, or the (warnings, notes) counts to
/// mirror into the success payload.
fn lint_admission(id: &Json, r: &Request, spec: &MemorySpec) -> Result<(usize, usize), Json> {
    let aopts = imagen_analysis::AnalysisOptions {
        geom: r.geom,
        spec: spec.clone(),
        widths: imagen_rtl::BitWidths {
            pixel_bits: r.geom.pixel_bits,
            acc_bits: (2 * r.geom.pixel_bits).min(64),
        },
        input_range: imagen_analysis::AnalysisOptions::default().input_range,
    };
    let lint = imagen_analysis::front_lints(&r.name, &r.source, &aopts);
    let pos_of = |d: &imagen_analysis::Diagnostic| match d.locus {
        imagen_analysis::Locus::Source { line, col } => Some(imagen_dsl::Pos { line, col }),
        _ => None,
    };
    if let Some(d) = lint
        .diagnostics
        .iter()
        .find(|d| d.severity == imagen_analysis::Severity::Error)
    {
        return Err(error_response(id.clone(), d.message.clone(), pos_of(d)));
    }
    if r.deny_warnings {
        if let Some(d) = lint
            .diagnostics
            .iter()
            .find(|d| d.severity == imagen_analysis::Severity::Warning)
        {
            return Err(error_response(
                id.clone(),
                format!("denied warning[{}]: {}", d.code, d.message),
                pos_of(d),
            ));
        }
    }
    Ok((lint.warnings(), lint.notes()))
}

fn compile_response(id: Json, r: &Request, hub: &Hub) -> Json {
    let mut spec = MemorySpec::new(r.backend, r.ports);
    if r.coalesce {
        spec = spec.with_coalescing();
    }
    let (lint_warnings, lint_notes) = match lint_admission(&id, r, &spec) {
        Ok(counts) => counts,
        Err(resp) => return resp,
    };
    let dag = match imagen_dsl::compile(&r.name, &r.source) {
        Ok(dag) => dag,
        Err(e) => return error_response(id, e.to_string(), e.pos()),
    };
    let session = hub.session(&dag, r.geom);
    let out = match session.compile(&spec, None) {
        Ok(out) => out,
        Err(e) => return error_response(id, e.to_string(), None),
    };
    let stats = dag.stats();
    let design = &out.plan.design;
    let mut b = ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(true))
        .push("name", Json::Str(dag.name().to_string()))
        .push("stages", Json::Num(stats.stages as f64))
        .push("edges", Json::Num(stats.edges as f64))
        .push(
            "multi_consumer",
            Json::Num(stats.multi_consumer_stages as f64),
        )
        .push("style", Json::Str(design.style.label().to_string()))
        .push("sram_kb", Json::Num(design.sram_kb()))
        .push("blocks", Json::Num(design.block_count() as f64))
        .push("area_mm2", Json::Num(design.total_area_mm2()))
        .push("power_mw", Json::Num(design.total_power_mw()))
        .push(
            "latency_cycles",
            Json::Num(
                out.plan
                    .schedule
                    .latency(&out.plan.dag, r.geom.width, r.geom.height) as f64,
            ),
        )
        .push(
            "verilog_lines",
            Json::Num(out.verilog.lines().count() as f64),
        )
        .push("lint_warnings", Json::Num(lint_warnings as f64))
        .push("lint_notes", Json::Num(lint_notes as f64));
    // Translation validation: every compile response carries the
    // certificate verdict for the netlist it just handed back. The dag
    // must be the *planned* dag (relay stages included), and the widths
    // come from the netlist itself. Certificates are pure in
    // (dag, geometry, spec), so the hub memoizes them alongside the
    // compile cache and warm recompiles skip the prover.
    let (is_fpga, block_bits) = match r.backend {
        MemBackend::Fpga => (true, 0),
        MemBackend::Asic { block_bits } => (false, block_bits),
    };
    let cert_key: CertKey = (
        (
            dag.fingerprint(),
            r.geom.width,
            r.geom.height,
            r.geom.pixel_bits,
        ),
        is_fpga,
        block_bits,
        r.ports,
        r.coalesce,
    );
    let cert_json = hub.cert(&cert_key).unwrap_or_else(|| {
        let aopts = imagen_analysis::AnalysisOptions {
            geom: r.geom,
            spec: spec.clone(),
            widths: out.netlist.widths,
            input_range: imagen_analysis::AnalysisOptions::default().input_range,
        };
        let cert = imagen_analysis::certify_netlist(&out.plan.dag, &out.netlist, &aopts);
        let j = crate::lint::certificate_json(&cert);
        hub.remember_cert(cert_key, j.clone());
        j
    });
    let status = cert_json
        .get("status")
        .and_then(|s| s.as_str())
        .unwrap_or("unknown")
        .to_string();
    b = b
        .push("certificate_status", Json::Str(status))
        .push("certificate", cert_json);
    if r.emit {
        b = b.push("verilog", Json::Str(out.verilog.clone()));
    }
    b.build()
}

fn dse_response(id: Json, r: &Request, hub: &Hub) -> Json {
    let dag = match imagen_dsl::compile(&r.name, &r.source) {
        Ok(dag) => dag,
        Err(e) => return error_response(id, e.to_string(), e.pos()),
    };
    if let Err(e) = crate::report::check_exhaustive_size(r.strategy, dag.buffered_stages().len()) {
        return error_response(id, e, None);
    }
    // DSE owns its fan-out; each request explores sequentially so the
    // serve worker pool stays the only concurrency level.
    let res = match explore(
        &dag,
        &r.geom,
        r.backend,
        ExploreOptions {
            strategy: r.strategy,
            threads: 1,
            ..ExploreOptions::default()
        },
    ) {
        Ok(res) => res,
        Err(e) => return error_response(id, e.to_string(), None),
    };
    let _ = hub; // dse builds its own session; the hub serves compiles
    let frontier = res.pareto_front();
    let names: Vec<Json> = res
        .buffered_stages
        .iter()
        .map(|&s| Json::Str(dag.stage(StageId::from_index(s)).name().to_string()))
        .collect();
    let points: Vec<Json> = frontier
        .iter()
        .map(|&i| {
            let p = &res.points[i];
            ObjBuilder::new()
                .push("point", Json::Num(i as f64))
                .push(
                    "choices",
                    Json::Str(
                        p.choices
                            .iter()
                            .map(|c| c.label())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                )
                .push("sram_kb", Json::Num(p.sram_kb))
                .push("area_mm2", Json::Num(p.area_mm2))
                .push("power_mw", Json::Num(p.power_mw))
                // Measured (netlist-interpreted) energy, default-on.
                .push(
                    "measured_power_mw",
                    p.measured.map_or(Json::Null, |m| Json::Num(m.power_mw)),
                )
                .push(
                    "measured_gated_mw",
                    p.measured
                        .map_or(Json::Null, |m| Json::Num(m.gated_power_mw)),
                )
                .push(
                    "energy_pj_per_frame",
                    p.measured
                        .map_or(Json::Null, |m| Json::Num(m.energy_pj_per_frame)),
                )
                .build()
        })
        .collect();
    ObjBuilder::new()
        .push("id", id)
        .push("ok", Json::Bool(true))
        .push("name", Json::Str(dag.name().to_string()))
        .push("strategy", Json::Str(r.strategy_label.clone()))
        .push("buffers", Json::Arr(names))
        .push("points", Json::Num(res.points.len() as f64))
        .push("pareto", Json::Arr(points))
        .build()
}

/// Answers one request line.
pub fn handle(line: &str, hub: &Hub) -> Json {
    let t0 = Instant::now();
    let req = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(Json::Null, format!("bad request JSON: {e}"), None),
    };
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let timing = match get_bool(&req, "timing") {
        Ok(t) => t,
        Err(e) => return error_response(id, e, None),
    };
    let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("");
    let mut resp = match cmd {
        "ping" => ObjBuilder::new()
            .push("id", id)
            .push("ok", Json::Bool(true))
            .push("pong", Json::Bool(true))
            .build(),
        "compile" | "dse" => match parse_request(&req) {
            Err(e) => error_response(id, e, None),
            Ok(r) => {
                if cmd == "compile" {
                    compile_response(id, &r, hub)
                } else {
                    dse_response(id, &r, hub)
                }
            }
        },
        "" => error_response(id, "`cmd` (string) is required".into(), None),
        other => error_response(id, format!("unknown cmd `{other}`"), None),
    };
    if timing {
        if let Json::Obj(members) = &mut resp {
            members.push((
                "elapsed_us".into(),
                Json::Num(t0.elapsed().as_micros() as f64),
            ));
        }
    }
    resp
}

fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Answers a batch of request lines on up to `threads` scoped workers.
/// The response vector is in request order and byte-identical to a
/// sequential (`threads == 1`) run.
pub fn run_batch(lines: &[String], threads: usize, hub: &Hub) -> Vec<String> {
    let workers = effective_threads(threads).min(lines.len().max(1));
    let slots: Vec<Mutex<Option<String>>> = lines.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= lines.len() {
                    break;
                }
                let resp = handle(&lines[i], hub).to_line();
                *slots[i].lock().expect("slot") = Some(resp);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("worker filled slot"))
        .collect()
}

/// `imagen serve` entry point.
pub fn run(opts: &Options) -> Result<(), String> {
    let hub = Arc::new(Hub::new());
    match &opts.tcp {
        None => {
            let mut input = String::new();
            std::io::stdin()
                .read_to_string(&mut input)
                .map_err(|e| format!("reading stdin: {e}"))?;
            let lines: Vec<String> = input
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(String::from)
                .collect();
            let responses = run_batch(&lines, opts.threads, &hub);
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            for r in &responses {
                writeln!(w, "{r}").map_err(|e| format!("writing stdout: {e}"))?;
            }
            w.flush().map_err(|e| e.to_string())?;
            let (hits, misses) = hub.cache_stats();
            eprintln!(
                "served {} request(s) on {} worker(s); compile cache: {hits} hit(s), {misses} miss(es)",
                responses.len(),
                effective_threads(opts.threads).min(lines.len().max(1))
            );
            Ok(())
        }
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            println!("listening {local}");
            std::io::stdout().flush().ok();
            let threads = opts.threads;
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("accept: {e}");
                        continue;
                    }
                };
                let hub = hub.clone();
                std::thread::spawn(move || serve_connection(stream, &hub, threads));
            }
            Ok(())
        }
    }
}

/// One TCP connection: requests stream through the same worker-pool
/// shape as stdin batches (`--threads` means the same thing in both
/// modes), and responses stream back *in request order* as soon as each
/// is ready — a reassembly writer holds out-of-order completions.
fn serve_connection(stream: std::net::TcpStream, hub: &Hub, threads: usize) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{peer}: clone: {e}");
            return;
        }
    });
    let mut writer = std::io::BufWriter::new(stream);
    let workers = effective_threads(threads);
    std::thread::scope(|scope| {
        let (work_tx, work_rx) = std::sync::mpsc::channel::<(usize, String)>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, String)>();
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || loop {
                let item = work_rx.lock().expect("work queue").recv();
                let Ok((i, line)) = item else { break };
                let resp = handle(&line, hub).to_line();
                if done_tx.send((i, resp)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);
        scope.spawn(move || {
            let mut pending: HashMap<usize, String> = HashMap::new();
            let mut next = 0usize;
            while let Ok((i, resp)) = done_rx.recv() {
                pending.insert(i, resp);
                while let Some(r) = pending.remove(&next) {
                    if writeln!(writer, "{r}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                    next += 1;
                }
            }
        });
        let mut n = 0usize;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("{peer}: read: {e}");
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            if work_tx.send((n, line)).is_err() {
                break;
            }
            n += 1;
        }
        drop(work_tx);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLUR: &str = "input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y)) / 4 end";

    fn req(extra: &str) -> String {
        format!(
            r#"{{"id":1,"cmd":"compile","name":"blur","source":"{BLUR}","width":32,"height":24{extra}}}"#
        )
    }

    #[test]
    fn compile_request_round_trip() {
        let hub = Hub::new();
        let resp = handle(&req(""), &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("stages").unwrap().as_u64(), Some(2));
        assert!(resp.get("verilog").is_none());
        let resp = handle(&req(r#","emit":true"#), &hub);
        assert!(resp
            .get("verilog")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("module"));
    }

    #[test]
    fn errors_carry_spans() {
        let hub = Hub::new();
        let bad =
            r#"{"id":"x","cmd":"compile","source":"input a;\noutput b = im(x,y) c(x,y) end"}"#;
        let resp = handle(bad, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("id").unwrap().as_str(), Some("x"));
        assert_eq!(resp.get("line").unwrap().as_u64(), Some(2));
        assert!(resp.get("error").unwrap().as_str().unwrap().contains('c'));
    }

    #[test]
    fn malformed_inputs_answer_instead_of_crashing() {
        let hub = Hub::new();
        for line in [
            "",
            "not json",
            "{}",
            r#"{"cmd":"frob"}"#,
            r#"{"cmd":"compile"}"#,
            r#"{"cmd":"compile","source":"input"}"#,
            r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) end","width":0}"#,
            r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) end","ports":0}"#,
            r#"{"cmd":"dse","source":"input a; output b = im(x,y) a(x,y) end","strategy":"frob"}"#,
            // u32 overflow must reject, not silently truncate to width 1.
            r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) end","width":4294967297}"#,
            // Type errors on `timing` answer like every other field.
            r#"{"cmd":"ping","timing":"yes"}"#,
            // Random-budget DoS: a giant samples value must reject, not
            // fall back to enumerating the full design space.
            r#"{"cmd":"dse","source":"input a; output b = im(x,y) a(x,y) end","strategy":"random","samples":1000000000}"#,
        ] {
            let resp = handle(line, &hub);
            assert_eq!(
                resp.get("ok"),
                Some(&Json::Bool(false)),
                "line {line:?} must fail gracefully"
            );
        }
    }

    #[test]
    fn session_map_stays_bounded() {
        // Stream more distinct pipelines than the cap: the hub must roll
        // the generation over instead of growing forever.
        let hub = Hub::new();
        for i in 0..(MAX_LIVE_SESSIONS + 5) {
            let line = format!(
                r#"{{"id":{i},"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) + {i} end","width":16,"height":12}}"#
            );
            let resp = handle(&line, &hub);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "request {i}");
        }
        assert!(
            hub.live_sessions() <= MAX_LIVE_SESSIONS,
            "{} live sessions exceed the cap",
            hub.live_sessions()
        );
        // And the rolled-over hub still serves (and re-warms) correctly.
        let line = r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) + 0 end","width":16,"height":12}"#;
        let cold = handle(line, &hub);
        let warm = handle(line, &hub);
        assert_eq!(cold, warm);
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let lines: Vec<String> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    format!(r#"{{"id":{i},"cmd":"ping"}}"#)
                } else {
                    req("").replace(r#""id":1"#, &format!(r#""id":{i}"#))
                }
            })
            .collect();
        let sequential = run_batch(&lines, 1, &Hub::new());
        let threaded = run_batch(&lines, 4, &Hub::new());
        assert_eq!(sequential, threaded, "byte-identical across worker counts");
        for (i, resp) in sequential.iter().enumerate() {
            let v = json::parse(resp).unwrap();
            assert_eq!(v.get("id").unwrap().as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn lint_admission_gates_and_annotates_compiles() {
        let hub = Hub::new();
        // Clean pipeline: zero lint counts in the success payload.
        let resp = handle(&req(""), &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("lint_warnings").unwrap().as_u64(), Some(0));
        assert_eq!(resp.get("lint_notes").unwrap().as_u64(), Some(0));
        // `a << 9` truncates at the 16-bit output: a note, still admitted.
        let noisy = r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) << 9 end","width":32,"height":24}"#;
        let resp = handle(noisy, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("lint_notes").unwrap().as_u64(), Some(1));
        // A constant-foldable subexpression is a warning: admitted by
        // default, rejected (naming the code) under deny_warnings.
        let warny = r#"{"cmd":"compile","source":"input a; output b = im(x,y) a(x,y) * (2 + 3 * 4) end","width":32,"height":24}"#;
        let resp = handle(warny, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("lint_warnings").unwrap().as_u64(), Some(1));
        let denied = format!(
            "{},\"deny_warnings\":true}}",
            warny.strip_suffix('}').unwrap()
        );
        let resp = handle(&denied, &hub);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let msg = resp.get("error").unwrap().as_str().unwrap();
        assert!(msg.contains("W0105"), "{msg}");
    }

    #[test]
    fn warm_cache_recompile_is_measurably_faster() {
        let hub = Hub::new();
        let line = req(r#","timing":true"#);
        let cold = handle(&line, &hub);
        let warm = handle(&line, &hub);
        let cold_us = cold.get("elapsed_us").unwrap().as_u64().unwrap();
        let warm_us = warm.get("elapsed_us").unwrap().as_u64().unwrap();
        let (hits, _) = hub.cache_stats();
        assert!(hits >= 1, "second request hit the shared cache");
        assert!(
            warm_us * 2 < cold_us.max(1),
            "warm recompile ({warm_us} us) not measurably faster than cold ({cold_us} us)"
        );
        // And the deterministic payloads are identical.
        let strip = |v: &Json| match v {
            Json::Obj(m) => Json::Obj(
                m.iter()
                    .filter(|(k, _)| k != "elapsed_us")
                    .cloned()
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert_eq!(strip(&cold), strip(&warm));
    }
}
