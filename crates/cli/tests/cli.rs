//! Integration tests of the `imagen` binary: golden-pinned `compile` and
//! `dse` text, the on-disk `.imagen` example corpus, and span-rendered
//! error reporting.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn imagen(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_imagen"))
        .current_dir(repo_root())
        .args(args)
        .output()
        .expect("spawn imagen")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "imagen failed ({:?})\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

/// The seven Tbl. 3 pipelines live on disk as `.imagen` files — the CLI's
/// example corpus — and must stay verbatim copies of the canonical
/// sources in `imagen_algos` (modulo the leading blank line).
#[test]
fn example_corpus_matches_canonical_sources() {
    for alg in imagen_algos::Algorithm::all() {
        let stem = alg.name().to_lowercase().replace('-', "_");
        let path = repo_root().join(format!("examples/{stem}.imagen"));
        let on_disk =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            on_disk,
            alg.dsl_source().trim_start(),
            "{} drifted from imagen_algos::Algorithm::{:?}",
            path.display(),
            alg
        );
    }
}

/// Every `.imagen` file under examples/ (the 7 Tbl. 3 programs plus the
/// user-authored quickstart) compiles through the real binary.
#[test]
fn every_example_compiles_through_the_binary() {
    let dir = repo_root().join("examples");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("imagen") {
            continue;
        }
        count += 1;
        let rel = format!("examples/{}", path.file_name().unwrap().to_string_lossy());
        let out = imagen(&["compile", &rel]);
        let text = stdout_of(&out);
        assert!(text.contains("## Verilog"), "{rel}:\n{text}");
    }
    assert!(count >= 10, "expected the full corpus, found {count} files");
}

/// The multirate pyramid examples are corpus members in good standing:
/// they lint clean under `--deny warnings`, and their lowered DAGs
/// survive a print → reparse round trip with identical fingerprints
/// (rate modifiers included).
#[test]
fn pyramid_examples_round_trip_and_lint_clean() {
    for stem in ["gaussian_pyramid", "laplacian_pyramid"] {
        let rel = format!("examples/{stem}.imagen");
        let out = imagen(&["lint", &rel, "--deny", "warnings"]);
        stdout_of(&out);

        let src = std::fs::read_to_string(repo_root().join(&rel)).unwrap();
        let dag = imagen_dsl::compile(stem, &src).unwrap();
        assert!(dag.is_multirate(), "{stem} should be multirate");
        let printed = imagen_dsl::to_dsl(&dag);
        let again = imagen_dsl::compile(stem, &printed).unwrap();
        assert_eq!(
            dag.fingerprint(),
            again.fingerprint(),
            "{stem}: print -> reparse fingerprint drift\n{printed}"
        );
    }
}

/// The compiled DAG of each on-disk example is the *identical* pipeline
/// (same fingerprint) as the library's built-in build — files and code
/// cannot drift apart silently.
#[test]
fn example_corpus_fingerprints_match_builtins() {
    for alg in imagen_algos::Algorithm::all() {
        let stem = alg.name().to_lowercase().replace('-', "_");
        let src =
            std::fs::read_to_string(repo_root().join(format!("examples/{stem}.imagen"))).unwrap();
        let dag = imagen_dsl::compile(alg.name(), &src).unwrap();
        assert_eq!(
            dag.fingerprint(),
            alg.build().fingerprint(),
            "{} on disk is not the built-in pipeline",
            alg.name()
        );
    }
}

fn assert_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("golden/{name}"));
    if std::env::var("IMAGEN_BLESS").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} (IMAGEN_BLESS=1 to create): {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "{} drifted; rerun with IMAGEN_BLESS=1 if the change is intended",
        path.display()
    );
}

#[test]
fn compile_text_pinned_on_unsharp_m() {
    let out = imagen(&[
        "compile",
        "examples/unsharp_m.imagen",
        "--name",
        "Unsharp-m",
    ]);
    assert_golden("compile_unsharp_m.txt", &stdout_of(&out));
}

#[test]
fn dse_text_pinned_on_unsharp_m() {
    let out = imagen(&[
        "dse",
        "examples/unsharp_m.imagen",
        "--name",
        "Unsharp-m",
        "--block-bits",
        "2048",
    ]);
    assert_golden("dse_unsharp_m.txt", &stdout_of(&out));
}

#[test]
fn emitted_verilog_matches_library_output() {
    let dir = std::env::temp_dir().join(format!("imagen_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v_path = dir.join("unsharp.v");
    let out = imagen(&[
        "compile",
        "examples/unsharp_m.imagen",
        "--name",
        "Unsharp-m",
        "-o",
        v_path.to_str().unwrap(),
    ]);
    stdout_of(&out);
    let via_cli = std::fs::read_to_string(&v_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let geom = imagen_mem::ImageGeometry {
        width: 64,
        height: 48,
        pixel_bits: 16,
    };
    let spec = imagen_mem::MemorySpec::new(imagen_mem::MemBackend::Asic { block_bits: 32768 }, 2);
    let via_lib = imagen_core::Compiler::new(geom, spec)
        .compile_dag(&imagen_algos::Algorithm::UnsharpM.build())
        .unwrap()
        .verilog;
    assert_eq!(via_cli, via_lib, "CLI and library emit different RTL");
}

#[test]
fn sim_and_energy_run_on_an_example() {
    let out = imagen(&["sim", "examples/sobel.imagen"]);
    let text = stdout_of(&out);
    assert!(text.contains("verdict: PASS"), "{text}");
    let out = imagen(&["energy", "examples/sobel.imagen"]);
    let text = stdout_of(&out);
    assert!(text.contains("analytic"), "{text}");
    assert!(text.contains("clock gating"), "{text}");
}

#[test]
fn dsl_errors_render_with_source_spans() {
    let dir = std::env::temp_dir().join(format!("imagen_cli_err_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.imagen");
    std::fs::write(&path, "input a;\noutput b = im(x,y) a(x,y end\n").unwrap();
    let out = imagen(&["compile", path.to_str().unwrap()]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("bad.imagen:2:"), "span present: {stderr}");
    assert!(
        stderr.contains("output b = im(x,y) a(x,y end"),
        "source line shown: {stderr}"
    );
    assert!(stderr.contains('^'), "caret shown: {stderr}");
}

#[test]
fn degenerate_geometry_is_a_clean_error() {
    for args in [
        vec!["compile", "examples/sobel.imagen", "--width", "0"],
        vec!["compile", "examples/sobel.imagen", "--pixel-bits", "0"],
        vec!["compile", "examples/sobel.imagen", "--ports", "0"],
        vec!["sim", "examples/xcorr_m.imagen", "--height", "12"],
    ] {
        let out = imagen(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?} panicked:\n{stderr}");
    }
}

/// Exit-code contract: 0 = clean, 1 = findings (lint/certify/sim), 2 =
/// usage or I/O errors. Pinned through the real binary so scripts and CI
/// can branch on the distinction.
#[test]
fn exit_codes_split_findings_from_usage_errors() {
    let dir = std::env::temp_dir().join(format!("imagen_cli_exit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dirty = dir.join("dirty.imagen");
    std::fs::write(
        &dirty,
        "input a;\ndead = im(x,y) a(x,y) + 0 end\noutput b = im(x,y) a(x,y) end\n",
    )
    .unwrap();

    // Findings (unused stage + x+0 identity) under --deny warnings -> 1.
    let out = imagen(&["lint", dirty.to_str().unwrap(), "--deny", "warnings"]);
    assert_eq!(out.status.code(), Some(1), "lint findings must exit 1");

    // The same file without --deny lints clean -> 0.
    let out = imagen(&["lint", dirty.to_str().unwrap()]);
    let code = out.status.code();
    assert!(
        code == Some(0) || code == Some(1),
        "lint exit code out of contract: {code:?}"
    );

    // Missing file -> 2 (I/O, not a finding).
    let out = imagen(&["lint", "examples/no_such_file.imagen"]);
    assert_eq!(out.status.code(), Some(2), "missing file must exit 2");

    // Unknown flag -> 2 (usage).
    let out = imagen(&["lint", dirty.to_str().unwrap(), "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");

    // Bad --format value -> 2 (usage).
    let out = imagen(&["lint", dirty.to_str().unwrap(), "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "bad --format must exit 2");

    std::fs::remove_dir_all(&dir).ok();
}

/// `imagen certify` proves the whole obligation set on a Tbl. 3 pipeline
/// and reports it per obligation; JSON mode carries the same verdicts.
#[test]
fn certify_proves_an_example_in_both_formats() {
    let out = imagen(&["certify", "examples/unsharp_m.imagen"]);
    let text = stdout_of(&out);
    assert!(text.contains("proved"), "{text}");
    assert!(!text.contains("refuted: 1"), "{text}");

    let out = imagen(&["certify", "examples/unsharp_m.imagen", "--format", "json"]);
    let line = stdout_of(&out);
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"status\":\"proved\""), "{line}");
    assert!(line.contains("\"refuted\":0"), "{line}");
    assert!(line.contains("\"obligations\":["), "{line}");
}

/// `imagen lint --prove` folds the certificate into the lint report and
/// stays clean (exit 0) on the paper corpus.
#[test]
fn lint_prove_merges_certificate_into_report() {
    let out = imagen(&["lint", "examples/harris_s.imagen", "--prove"]);
    let text = stdout_of(&out);
    assert!(text.contains("certificate: proved"), "{text}");

    let out = imagen(&[
        "lint",
        "examples/harris_s.imagen",
        "--prove",
        "--format",
        "json",
    ]);
    let line = stdout_of(&out);
    assert!(line.contains("\"certificate\":{"), "{line}");
    assert!(line.contains("\"status\":\"proved\""), "{line}");
}

/// `imagen dse --certify` certifies every Pareto-frontier design.
#[test]
fn dse_certify_validates_the_frontier() {
    let out = imagen(&[
        "dse",
        "examples/unsharp_m.imagen",
        "--block-bits",
        "2048",
        "--certify",
    ]);
    let text = stdout_of(&out);
    assert!(text.contains("## Frontier certificates"), "{text}");
    assert!(text.contains("proved"), "{text}");
    assert!(!text.contains("refuted: 1"), "{text}");
}

/// `imagen bench diff`: no-regression self-diff exits 0, a slowed-down
/// bench beyond the threshold exits 1 naming the offender, and benches
/// only present on one side never gate.
#[test]
fn bench_diff_flags_regressions() {
    let dir = std::env::temp_dir().join(format!("imagen_cli_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = |interp: f64, extra: &str| {
        format!(
            "{{\"schema\":\"imagen-bench-snapshot/1\",\
             \"env\":{{\"rustc\":\"rustc x\",\"arch\":\"x86_64\",\"os\":\"linux\",\
             \"threads\":8,\"smoke\":false,\
             \"geometry\":{{\"width\":120,\"height\":80,\"pixel_bits\":16}},\"reps\":7}},\
             \"median_ms\":{{\"netlist_interp\":{{\"build\":1.0,\"interpret\":{interp}}},\
             \"activity_interp\":{{\"interpret_traced\":4.0{extra}}}}}}}"
        )
    };
    let old = dir.join("old.json");
    let new_ok = dir.join("new_ok.json");
    let new_bad = dir.join("new_bad.json");
    std::fs::write(&old, snap(2.0, "")).unwrap();
    // +5% on interpret plus a brand-new bench: under the 10% default, passes.
    std::fs::write(&new_ok, snap(2.1, ",\"interpret_gated_traced\":5.0")).unwrap();
    // +50% on interpret: a regression.
    std::fs::write(&new_bad, snap(3.0, "")).unwrap();
    let (old, new_ok, new_bad) = (
        old.to_str().unwrap().to_string(),
        new_ok.to_str().unwrap().to_string(),
        new_bad.to_str().unwrap().to_string(),
    );

    let out = imagen(&["bench", "diff", &old, &new_ok]);
    let text = stdout_of(&out);
    assert!(text.contains("no regressions"), "{text}");
    assert!(text.contains("added"), "{text}");

    let out = imagen(&["bench", "diff", &old, &new_bad]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("netlist_interp.interpret"), "{err}");

    // A looser threshold waves the same pair through.
    let out = imagen(&["bench", "diff", &old, &new_bad, "--threshold", "75"]);
    assert!(out.status.success(), "75% threshold should pass");

    // Three or more snapshots switch to the (non-gating) history view:
    // the cumulative +50% drift is flagged but the exit stays 0.
    let out = imagen(&["bench", "diff", &old, &new_ok, &new_bad]);
    let text = stdout_of(&out);
    assert!(text.contains("# bench history — 3 snapshots"), "{text}");
    assert!(text.contains("!! drift"), "{text}");
    assert!(text.contains("pairwise gating unchanged"), "{text}");
    // A bench added mid-trajectory shows "-" for snapshots without it.
    assert!(text.contains("interpret_gated_traced"), "{text}");

    // Usage errors: wrong arity, wrong subcommand, wrong schema.
    assert_eq!(imagen(&["bench", "diff", &old]).status.code(), Some(2));
    assert_eq!(imagen(&["bench", &old, &new_ok]).status.code(), Some(2));
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{\"schema\":\"nope\"}").unwrap();
    assert_eq!(
        imagen(&["bench", "diff", junk.to_str().unwrap(), &old])
            .status
            .code(),
        Some(2)
    );
    std::fs::remove_dir_all(&dir).ok();
}
