//! Integration tests of `imagen serve`: concurrent JSONL batches over
//! stdin/stdout and TCP, pinned byte-identical to sequential runs.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

const BLUR: &str = "input a; output b = im(x,y) (a(x-1,y) + 2*a(x,y) + a(x+1,y)) / 4 end";
const CHAIN: &str =
    "input a; b = im(x,y) (a(x,y-1)+a(x,y+1))/2 end output c = im(x,y) (b(x,y-1)+b(x,y+1))/2 end";

/// A mixed batch of ≥8 compile/dse/ping requests (the CI smoke shape).
fn mixed_batch() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..10 {
        lines.push(match i % 4 {
            0 => format!(
                r#"{{"id":{i},"cmd":"compile","name":"blur","source":"{BLUR}","width":32,"height":24}}"#
            ),
            1 => format!(
                r#"{{"id":{i},"cmd":"dse","name":"chain","source":"{CHAIN}","width":32,"height":24,"block_bits":1024}}"#
            ),
            2 => format!(
                r#"{{"id":{i},"cmd":"compile","name":"blur","source":"{BLUR}","width":32,"height":24,"coalesce":true}}"#
            ),
            _ => format!(r#"{{"id":{i},"cmd":"ping"}}"#),
        });
    }
    lines
}

fn serve_stdin(lines: &[String], threads: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_imagen"))
        .args(["serve", "--threads", threads])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn imagen serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all((lines.join("\n") + "\n").as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "serve failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(String::from)
        .collect()
}

#[test]
fn concurrent_batch_matches_sequential_byte_for_byte() {
    let lines = mixed_batch();
    let sequential = serve_stdin(&lines, "1");
    let concurrent = serve_stdin(&lines, "4");
    assert_eq!(sequential.len(), lines.len(), "one response per request");
    assert_eq!(
        sequential, concurrent,
        "4-worker batch must be byte-identical to the sequential run"
    );
    for (i, resp) in concurrent.iter().enumerate() {
        assert!(
            resp.contains(&format!("\"id\":{i}")),
            "response {i} out of order: {resp}"
        );
        assert!(resp.contains("\"ok\":true"), "request {i} failed: {resp}");
    }
}

#[test]
fn warm_cache_beats_cold_through_the_binary() {
    // Same compile request twice, sequentially, with timing: the second
    // answer must come from the shared session cache, measurably faster.
    let line = format!(
        r#"{{"id":0,"cmd":"compile","name":"blur","source":"{BLUR}","width":48,"height":32,"timing":true}}"#
    );
    let responses = serve_stdin(&[line.clone(), line], "1");
    let us = |resp: &str| -> u64 {
        let key = "\"elapsed_us\":";
        let at = resp.find(key).expect("elapsed_us present") + key.len();
        resp[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let (cold, warm) = (us(&responses[0]), us(&responses[1]));
    assert!(
        warm * 2 < cold.max(1),
        "warm recompile ({warm} us) not measurably faster than cold ({cold} us)"
    );
}

struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn tcp_mode_serves_concurrent_connections() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_imagen"))
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn imagen serve --tcp");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let guard = ServerGuard(child);
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let handles: Vec<_> = (0..4)
        .map(|client| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut stream = std::net::TcpStream::connect(&addr).unwrap();
                let mut lines = Vec::new();
                for i in 0..2 {
                    let id = client * 100 + i;
                    lines.push(format!(
                        r#"{{"id":{id},"cmd":"compile","name":"blur","source":"{BLUR}","width":32,"height":24}}"#
                    ));
                }
                stream
                    .write_all((lines.join("\n") + "\n").as_bytes())
                    .unwrap();
                stream
                    .shutdown(std::net::Shutdown::Write)
                    .unwrap();
                let reader = BufReader::new(stream);
                let responses: Vec<String> =
                    reader.lines().map(|l| l.unwrap()).collect();
                assert_eq!(responses.len(), 2, "client {client}");
                for (i, resp) in responses.iter().enumerate() {
                    let id = client * 100 + i;
                    assert!(resp.contains(&format!("\"id\":{id}")), "{resp}");
                    assert!(resp.contains("\"ok\":true"), "{resp}");
                }
                responses
            })
        })
        .collect();
    let mut all: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    drop(guard);
    // Every client got the same deterministic payload (ids aside).
    let strip_id = |line: &str| -> String {
        let at = line.find(",\"ok\"").unwrap();
        line[at..].to_string()
    };
    let first = strip_id(&all[0][0]);
    for responses in &mut all {
        for resp in responses {
            assert_eq!(strip_id(resp), first, "payload drift across connections");
        }
    }
}

/// Every successful compile response carries the translation-validation
/// certificate: an overall status plus the per-obligation verdicts.
#[test]
fn compile_responses_carry_a_proved_certificate() {
    let line = format!(
        r#"{{"id":0,"cmd":"compile","name":"blur","source":"{BLUR}","width":32,"height":24}}"#
    );
    let responses = serve_stdin(&[line], "1");
    let resp = &responses[0];
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"certificate_status\":\"proved\""), "{resp}");
    assert!(resp.contains("\"certificate\":{"), "{resp}");
    assert!(resp.contains("\"refuted\":0"), "{resp}");
    assert!(resp.contains("\"obligations\":["), "{resp}");
}

/// A `"cmd":"stats"` probe after a concurrent mixed batch answers with
/// the operational numbers (through the real binary, threaded).
#[test]
fn stats_cmd_answers_after_a_concurrent_batch() {
    let mut lines = mixed_batch();
    lines.push(r#"{"id":"s","cmd":"stats"}"#.to_string());
    let responses = serve_stdin(&lines, "4");
    let stats = responses.last().unwrap();
    assert!(stats.contains("\"id\":\"s\""), "{stats}");
    assert!(stats.contains("\"ok\":true"), "{stats}");
    for key in [
        "\"requests\":{",
        "\"errors\":",
        "\"admission_rejected\":",
        "\"inflight\":",
        "\"queue_wait\":{",
        "\"handle_time\":{",
        "\"p50_us\":",
        "\"p99_us\":",
        "\"cache\":{",
        "\"hit_rate\":",
        "\"generation_rollovers\":",
        "\"metrics\":{\"schema\":\"imagen-metrics/1\"",
    ] {
        assert!(stats.contains(key), "missing {key} in {stats}");
    }
    // BLUR compiles twice in the batch (ids 0, 4, 8 share a pipeline):
    // the shared cache must have seen at least one hit by stats time.
    assert!(stats.contains("\"hits\":"), "{stats}");
}

/// The registry hammer: writer threads pound every cell kind while
/// readers snapshot concurrently. Lives in this file so the TSan CI
/// job (`-p imagen-cli --test serve`) instruments it; the assertions
/// check the invariants that survive racing reads.
#[test]
fn metrics_registry_survives_concurrent_hammering() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let metrics = imagen_obs::Metrics::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let metrics = &metrics;
            let stop = &stop;
            scope.spawn(move || {
                // Get-or-create races registration on purpose: all four
                // threads must end up sharing the same cells.
                let c = metrics.counter("hammer.count");
                let g = metrics.gauge("hammer.gauge");
                let h = metrics.histogram("hammer.hist");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.add(1);
                    g.add(1);
                    h.record(i % 10_000);
                    g.sub(1);
                    i += 1;
                }
            });
        }
        let metrics = &metrics;
        for _ in 0..50 {
            let snap = metrics.snapshot();
            // Quantiles computed from one frozen bucket read are
            // ordered; min/max race individual records and are not.
            if let Some((_, h)) = snap.histograms.iter().find(|(n, _)| n == "hammer.hist") {
                if h.count > 0 {
                    assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
                }
            }
            let _ = snap.to_json();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let snap = metrics.snapshot();
    assert!(snap.counter("hammer.count") > 0);
    let gauge = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "hammer.gauge")
        .map(|(_, v)| *v);
    assert_eq!(gauge, Some(0), "every add() paired with a sub()");
}

/// Span tracing under a shared collector across threads, TSan-checked:
/// concurrent guards record into one sink without a data race.
#[test]
fn span_collector_merges_threads_race_free() {
    use std::sync::Arc;
    let collector = Arc::new(imagen_obs::Collector::new());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let collector = Arc::clone(&collector);
            scope.spawn(move || {
                imagen_obs::with_collector(&collector, || {
                    for _ in 0..100 {
                        let _outer = imagen_obs::span("outer");
                        let _inner = imagen_obs::span("inner");
                    }
                });
            });
        }
    });
    let totals = collector.phase_totals();
    let count_of = |name: &str| {
        totals
            .iter()
            .find(|t| t.name == name)
            .map_or(0, |t| t.count)
    };
    assert_eq!(count_of("outer"), 400);
    assert_eq!(count_of("inner"), 400);
}
