//! # imagen-core
//!
//! The [ImaGen] compiler (the full Fig. 5 flow): DSL source or IR DAG in,
//! schedule + line-buffer configuration + synthesizable Verilog out.
//!
//! ```text
//! DSL ──front end──▶ DAG ──(line coalescing)──▶ constraints ──ILP──▶
//!   schedule ──▶ line-buffer config ──▶ RTL
//! ```
//!
//! The heavy lifting lives in the subsystem crates (`imagen-dsl`,
//! `imagen-schedule`, `imagen-mem`, `imagen-rtl`); this crate wires them
//! into a single [`Compiler`] with per-phase timing — the measurements
//! behind the paper's Sec. 8.2 compilation-speed results.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352
//!
//! # Examples
//!
//! ```
//! use imagen_core::Compiler;
//! use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
//!
//! let geom = ImageGeometry { width: 64, height: 48, pixel_bits: 16 };
//! let spec = MemorySpec::new(MemBackend::Asic { block_bits: 4096 }, 2);
//! let out = Compiler::new(geom, spec).compile_source("blur", "
//!     input raw;
//!     output blur = im(x,y)
//!         (raw(x-1,y) + 2*raw(x,y) + raw(x+1,y)) >> 2
//!     end
//! ")?;
//! assert!(out.plan.design.sram_kb() > 0.0);
//! assert!(out.verilog.contains("module imagen_top_blur"));
//! # Ok::<(), imagen_core::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod session;

pub use session::{CompileCache, Session};

use imagen_dsl::DslError;
use imagen_ir::Dag;
use imagen_mem::{DesignStyle, ImageGeometry, MemorySpec};
use imagen_schedule::{plan_design, Plan, PlanError, ScheduleOptions};
use std::fmt;
use std::time::Instant;

pub use imagen_schedule::SizeObjective;

/// Compilation failure: front end or optimizer.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// DSL parsing/lowering failed.
    Dsl(DslError),
    /// Scheduling/planning failed.
    Plan(PlanError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Dsl(e) => write!(f, "{e}"),
            CompileError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<DslError> for CompileError {
    fn from(e: DslError) -> Self {
        CompileError::Dsl(e)
    }
}

impl From<PlanError> for CompileError {
    fn from(e: PlanError) -> Self {
        CompileError::Plan(e)
    }
}

/// Per-phase wall-clock times of one compilation, microseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompileTiming {
    /// DSL parse + lower (zero when compiling a prebuilt DAG).
    pub frontend_us: u128,
    /// Constraint formulation + ILP + buffer planning.
    pub optimize_us: u128,
    /// Verilog emission.
    pub codegen_us: u128,
}

impl CompileTiming {
    /// Total compilation time, microseconds.
    pub fn total_us(&self) -> u128 {
        self.frontend_us + self.optimize_us + self.codegen_us
    }
}

/// The result of a compilation.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// The plan: working DAG, schedule, priced design.
    pub plan: Plan,
    /// The elaborated netlist the Verilog is printed from (shared with
    /// the session cache; also the input to `imagen_rtl::interpret` and
    /// `imagen_rtl::verify_structure`).
    pub netlist: std::sync::Arc<imagen_rtl::Netlist>,
    /// Synthesizable Verilog for the design.
    pub verilog: String,
    /// Per-phase timing.
    pub timing: CompileTiming,
}

/// The ImaGen compiler: geometry + memory spec + options.
#[derive(Clone, Debug)]
pub struct Compiler {
    geom: ImageGeometry,
    spec: MemorySpec,
    opts: ScheduleOptions,
    style: DesignStyle,
}

impl Compiler {
    /// Creates a compiler for the given frame geometry and memory spec.
    pub fn new(geom: ImageGeometry, spec: MemorySpec) -> Compiler {
        // Label the output by whether the spec ever coalesces.
        let style = if spec.ever_coalesces(&geom) {
            DesignStyle::OursLc
        } else {
            DesignStyle::Ours
        };
        Compiler {
            geom,
            spec,
            opts: ScheduleOptions::default(),
            style,
        }
    }

    /// Overrides the scheduling options (pruning, objective, budgets).
    pub fn with_options(mut self, opts: ScheduleOptions) -> Compiler {
        self.opts = opts;
        self
    }

    /// Overrides the design style label.
    pub fn with_style(mut self, style: DesignStyle) -> Compiler {
        self.style = style;
        self
    }

    /// The frame geometry.
    pub fn geometry(&self) -> &ImageGeometry {
        &self.geom
    }

    /// The memory specification.
    pub fn memory_spec(&self) -> &MemorySpec {
        &self.spec
    }

    /// Compiles DSL source text end to end.
    ///
    /// # Errors
    ///
    /// [`CompileError`] from the front end or the optimizer.
    pub fn compile_source(&self, name: &str, src: &str) -> Result<CompileOutput, CompileError> {
        let t0 = Instant::now();
        let dag = {
            let _s = imagen_obs::span("frontend");
            imagen_dsl::compile(name, src)?
        };
        let frontend_us = t0.elapsed().as_micros();
        let mut out = self.compile_dag(&dag)?;
        out.timing.frontend_us = frontend_us;
        Ok(out)
    }

    /// Compiles a prebuilt DAG.
    ///
    /// # Errors
    ///
    /// [`CompileError::Plan`] from the optimizer.
    pub fn compile_dag(&self, dag: &Dag) -> Result<CompileOutput, CompileError> {
        let t1 = Instant::now();
        let plan = {
            let _s = imagen_obs::span("plan");
            plan_design(dag, &self.geom, &self.spec, self.opts, self.style)?
        };
        let optimize_us = t1.elapsed().as_micros();

        let t2 = Instant::now();
        let netlist = {
            let _s = imagen_obs::span("netlist.build");
            imagen_rtl::build_netlist(&plan.dag, &plan.design, &imagen_rtl::BitWidths::default())
        };
        let verilog = {
            let _s = imagen_obs::span("emit");
            imagen_rtl::emit_verilog(&netlist)
        };
        let codegen_us = t2.elapsed().as_micros();

        Ok(CompileOutput {
            plan,
            netlist: std::sync::Arc::new(netlist),
            verilog,
            timing: CompileTiming {
                frontend_us: 0,
                optimize_us,
                codegen_us,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_algos::Algorithm;
    use imagen_mem::MemBackend;

    fn small() -> (ImageGeometry, MemorySpec) {
        let geom = ImageGeometry {
            width: 48,
            height: 32,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            2,
        );
        (geom, spec)
    }

    #[test]
    fn all_algorithms_compile() {
        let (geom, spec) = small();
        let c = Compiler::new(geom, spec);
        for alg in Algorithm::all() {
            let out = c
                .compile_dag(&alg.build())
                .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
            assert!(out.plan.design.sram_kb() > 0.0, "{}", alg.name());
            let report = imagen_rtl::verify_all(&out.netlist);
            assert!(report.is_clean(), "{} RTL: {:?}", alg.name(), report.errors);
        }
    }

    #[test]
    fn coalescing_spec_changes_style() {
        let (geom, spec) = small();
        let c = Compiler::new(geom, spec.clone().with_coalescing());
        let out = c.compile_dag(&Algorithm::UnsharpM.build()).unwrap();
        assert_eq!(out.plan.design.style, DesignStyle::OursLc);
        let c = Compiler::new(geom, spec);
        let out = c.compile_dag(&Algorithm::UnsharpM.build()).unwrap();
        assert_eq!(out.plan.design.style, DesignStyle::Ours);
    }

    #[test]
    fn timing_recorded() {
        let (geom, spec) = small();
        let c = Compiler::new(geom, spec);
        let out = c
            .compile_source(
                "blur",
                "input a; output b = im(x,y) (a(x,y-1)+a(x,y)+a(x,y+1))/3 end",
            )
            .unwrap();
        assert!(out.timing.optimize_us > 0);
        assert!(out.timing.total_us() >= out.timing.optimize_us);
    }

    #[test]
    fn dsl_errors_surface() {
        let (geom, spec) = small();
        let c = Compiler::new(geom, spec);
        let err = c.compile_source("bad", "input a; output b = im(x,y) c(x,y) end");
        assert!(matches!(err, Err(CompileError::Dsl(_))));
    }
}
