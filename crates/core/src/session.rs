//! Reusable compile sessions with memoization — the multi-point entry
//! into the compiler.
//!
//! A one-shot [`Compiler`](crate::Compiler) re-derives everything per
//! call. Design-space exploration (paper Sec. 8.5) instead compiles the
//! *same* DAG under hundreds of memory configurations, where two phases
//! are invariant across points:
//!
//! * the DAG analysis and the spec-independent constraint skeleton
//!   (data dependencies, sync equalities, longest-path bounds) — built
//!   once per [`Session`];
//! * any point already compiled — returned from the [`CompileCache`],
//!   keyed by (DAG fingerprint, geometry, resolved per-stage memory
//!   config, schedule options, style).
//!
//! Sessions are `Sync`: design points can be fanned out over
//! `std::thread::scope` workers sharing one session, and the cache is
//! shared across threads (compilation runs outside the cache lock, so
//! workers never serialize on the solver).

use crate::{CompileError, CompileOutput, CompileTiming};
use imagen_ir::Dag;
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_obs::Counter;
use imagen_schedule::{formulate_skeleton, plan_design_with, ConstraintSkeleton, Plan};
use imagen_schedule::{ScheduleOptions, SizeObjective};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cache key identifying one fully-resolved compile point.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct PointKey {
    dag_fingerprint: u64,
    width: u32,
    height: u32,
    pixel_bits: u32,
    backend: MemBackend,
    /// Resolved `(ports, coalesce factor)` per stage — two specs that
    /// resolve identically compile identically.
    stages: Vec<(u32, u32)>,
    pruning: bool,
    objective: SizeObjective,
    max_subproblems: usize,
    style: DesignStyle,
}

/// One memoized compile: the plan always, the netlist and its Verilog
/// once someone asked for them.
#[derive(Clone)]
struct CacheEntry {
    plan: Arc<Plan>,
    netlist: Option<Arc<imagen_rtl::Netlist>>,
    verilog: Option<Arc<String>>,
    timing: CompileTiming,
}

/// Shared memo store for compiled design points.
///
/// One cache can back several [`Session`]s (the DAG fingerprint is part
/// of the key) and any number of threads.
#[derive(Default)]
pub struct CompileCache {
    entries: Mutex<HashMap<PointKey, CacheEntry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Mirrors of `hits`/`misses` into externally owned metric cells
    /// (detached no-op counters unless [`CompileCache::with_observers`]
    /// wired real ones in). Lets a stats endpoint read cache traffic
    /// lock-free from its registry — and cumulatively across cache
    /// generations, since the registry cell outlives any one cache —
    /// instead of taking whatever lock guards the current cache.
    obs_hits: Counter,
    obs_misses: Counter,
}

impl CompileCache {
    /// Creates an empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Creates an empty cache that additionally mirrors every hit and
    /// miss into the given metric counters (typically registry cells of
    /// an [`imagen_obs::Metrics`]).
    pub fn with_observers(hits: Counter, misses: Counter) -> CompileCache {
        CompileCache {
            obs_hits: hits,
            obs_misses: misses,
            ..CompileCache::default()
        }
    }

    /// Number of memoized design points.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn get(&self, key: &PointKey) -> Option<CacheEntry> {
        let found = self
            .entries
            .lock()
            .expect("cache poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.obs_hits.add(1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.obs_misses.add(1);
            }
        };
        found
    }

    fn insert(&self, key: PointKey, entry: CacheEntry) {
        // Racing workers may compute the same point; keep the first entry
        // (both are identical — compilation is deterministic).
        self.entries
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(entry);
    }
}

// Compile-time thread-safety audit: DSE fans points out over scoped
// threads sharing one `&Session`, and the CLI's batch compile server
// shares sessions and one cache across a worker pool — both require
// `Session`/`CompileCache` to stay `Send + Sync`. Adding a non-`Sync`
// field (an `Rc`, a `RefCell`, a raw pointer) fails right here instead
// of at a distant spawn site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<CompileCache>();
};

/// A compile session: one DAG, one geometry, many memory configurations.
///
/// # Examples
///
/// ```
/// use imagen_core::Session;
/// use imagen_ir::{Dag, Expr};
/// use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
///
/// let mut dag = Dag::new("chain");
/// let k0 = dag.add_input("K0");
/// let k1 = dag.add_stage("K1", &[k0], Expr::sum(
///     (0..3).map(|dy| Expr::tap(0, 0, dy)),
/// )).unwrap();
/// dag.mark_output(k1);
///
/// let geom = ImageGeometry { width: 64, height: 48, pixel_bits: 16 };
/// let session = Session::new(&dag, geom);
/// let spec = MemorySpec::new(MemBackend::Asic { block_bits: 4096 }, 2);
/// let cold = session.price(&spec, None)?;
/// let warm = session.price(&spec, None)?;   // cache hit
/// assert_eq!(cold.design, warm.design);
/// assert_eq!(session.cache().stats(), (1, 1));
/// # Ok::<(), imagen_core::CompileError>(())
/// ```
pub struct Session {
    dag: Dag,
    dag_fingerprint: u64,
    geom: ImageGeometry,
    skeleton: ConstraintSkeleton,
    opts: ScheduleOptions,
    cache: Arc<CompileCache>,
}

impl Session {
    /// Creates a session for `dag` at `geom` with its own fresh cache.
    pub fn new(dag: &Dag, geom: ImageGeometry) -> Session {
        Session::with_cache(dag, geom, Arc::new(CompileCache::new()))
    }

    /// Creates a session backed by an existing (possibly shared) cache.
    pub fn with_cache(dag: &Dag, geom: ImageGeometry, cache: Arc<CompileCache>) -> Session {
        let skeleton = {
            let _s = imagen_obs::span("plan.skeleton");
            formulate_skeleton(dag, geom.width)
        };
        Session {
            dag: dag.clone(),
            dag_fingerprint: dag.fingerprint(),
            skeleton,
            geom,
            opts: ScheduleOptions::default(),
            cache,
        }
    }

    /// Overrides the scheduling options used by this session.
    pub fn with_options(mut self, opts: ScheduleOptions) -> Session {
        self.opts = opts;
        self
    }

    /// The session's DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The session's frame geometry.
    pub fn geometry(&self) -> &ImageGeometry {
        &self.geom
    }

    /// The backing cache (shareable across sessions and threads).
    pub fn cache(&self) -> &Arc<CompileCache> {
        &self.cache
    }

    /// The style a spec is labeled with when none is forced: `Ours+LC`
    /// iff any stage's buffer actually coalesces (the same rule as
    /// [`Compiler::new`](crate::Compiler::new)).
    pub fn infer_style(&self, spec: &MemorySpec) -> DesignStyle {
        if spec.ever_coalesces(&self.geom) {
            DesignStyle::OursLc
        } else {
            DesignStyle::Ours
        }
    }

    fn key_for(&self, spec: &MemorySpec, style: DesignStyle) -> PointKey {
        PointKey {
            dag_fingerprint: self.dag_fingerprint,
            width: self.geom.width,
            height: self.geom.height,
            pixel_bits: self.geom.pixel_bits,
            backend: spec.backend(),
            stages: (0..self.dag.num_stages())
                .map(|i| (spec.ports_for(i), spec.coalesce_factor(i, &self.geom)))
                .collect(),
            pruning: self.opts.pruning,
            objective: self.opts.objective,
            max_subproblems: self.opts.max_subproblems,
            style,
        }
    }

    /// Plans and prices one memory configuration — **without** emitting
    /// RTL. This is the skip-RTL path for design points that only need
    /// area/power; a later [`Session::compile`] of the same point reuses
    /// the cached plan and only adds codegen.
    ///
    /// `style` labels the design; `None` infers it from the spec.
    ///
    /// # Errors
    ///
    /// [`CompileError::Plan`] from the optimizer.
    pub fn price(
        &self,
        spec: &MemorySpec,
        style: Option<DesignStyle>,
    ) -> Result<Arc<Plan>, CompileError> {
        let style = style.unwrap_or_else(|| self.infer_style(spec));
        let key = self.key_for(spec, style);
        if let Some(entry) = self.cache.get(&key) {
            return Ok(entry.plan);
        }
        let entry = self.compute(spec, style)?;
        let plan = entry.plan.clone();
        self.cache.insert(key, entry);
        Ok(plan)
    }

    /// Like [`Session::price`], but a miss is **not** memoized (hits are
    /// still served). For walks that never revisit a configuration —
    /// exhaustive or random sweeps — where caching every point would
    /// only grow the store: a 2^20-point sweep must not pin a million
    /// plans in memory for the session's lifetime.
    ///
    /// # Errors
    ///
    /// [`CompileError::Plan`] from the optimizer.
    pub fn price_transient(
        &self,
        spec: &MemorySpec,
        style: Option<DesignStyle>,
    ) -> Result<Arc<Plan>, CompileError> {
        let style = style.unwrap_or_else(|| self.infer_style(spec));
        let key = self.key_for(spec, style);
        if let Some(entry) = self.cache.get(&key) {
            return Ok(entry.plan);
        }
        Ok(self.compute(spec, style)?.plan)
    }

    /// Returns the elaborated netlist of one memory configuration at
    /// default bit widths, memoized — **without** rendering any Verilog
    /// text. This is the measurement path: design-space exploration
    /// prices points plan-only ([`Session::price`]), then populates
    /// measured energy on demand by interpreting the cached netlist,
    /// and a later [`Session::compile`] of the same point reuses it and
    /// only adds text rendering.
    ///
    /// `style` labels the design; `None` infers it from the spec.
    ///
    /// # Errors
    ///
    /// [`CompileError::Plan`] from the optimizer.
    pub fn netlist(
        &self,
        spec: &MemorySpec,
        style: Option<DesignStyle>,
    ) -> Result<Arc<imagen_rtl::Netlist>, CompileError> {
        let style = style.unwrap_or_else(|| self.infer_style(spec));
        let key = self.key_for(spec, style);
        let entry = match self.cache.get(&key) {
            Some(e) => e,
            None => self.compute(spec, style)?,
        };
        if let Some(n) = entry.netlist {
            return Ok(n); // pure hit: no cache write at all
        }
        let built = {
            let _s = imagen_obs::span("netlist.build");
            Arc::new(imagen_rtl::build_netlist(
                &entry.plan.dag,
                &entry.plan.design,
                &imagen_rtl::BitWidths::default(),
            ))
        };
        // Merge under the lock: a racing compile() may have enriched the
        // entry (netlist + Verilog) since we read it — never clobber a
        // richer concurrent entry, only fill a missing netlist.
        let mut entries = self.cache.entries.lock().expect("cache poisoned");
        let slot = entries.entry(key).or_insert(entry);
        if slot.netlist.is_none() {
            slot.netlist = Some(built);
        }
        Ok(slot.netlist.clone().expect("set above"))
    }

    /// Compiles one memory configuration end to end (plan + Verilog),
    /// memoized. A cache hit from a previous [`Session::price`] call
    /// reuses the plan and only runs codegen (once).
    ///
    /// `style` labels the design; `None` infers it from the spec.
    ///
    /// # Errors
    ///
    /// [`CompileError::Plan`] from the optimizer.
    pub fn compile(
        &self,
        spec: &MemorySpec,
        style: Option<DesignStyle>,
    ) -> Result<CompileOutput, CompileError> {
        let style = style.unwrap_or_else(|| self.infer_style(spec));
        let key = self.key_for(spec, style);
        let mut entry = match self.cache.get(&key) {
            Some(e) => e,
            None => self.compute(spec, style)?,
        };
        if entry.netlist.is_none() || entry.verilog.is_none() {
            let t = Instant::now();
            let netlist = match entry.netlist.clone() {
                Some(n) => n,
                None => {
                    let _s = imagen_obs::span("netlist.build");
                    Arc::new(imagen_rtl::build_netlist(
                        &entry.plan.dag,
                        &entry.plan.design,
                        &imagen_rtl::BitWidths::default(),
                    ))
                }
            };
            let verilog = {
                let _s = imagen_obs::span("emit");
                imagen_rtl::emit_verilog(&netlist)
            };
            entry.timing.codegen_us = t.elapsed().as_micros();
            entry.netlist = Some(netlist);
            entry.verilog = Some(Arc::new(verilog));
        }
        // Re-insert so later calls see plan + netlist + RTL (or_insert
        // keeps the richer existing entry only if one raced in; replace
        // instead).
        self.cache
            .entries
            .lock()
            .expect("cache poisoned")
            .insert(key, entry.clone());
        Ok(CompileOutput {
            plan: (*entry.plan).clone(),
            netlist: entry.netlist.expect("just generated"),
            verilog: (*entry.verilog.expect("just generated")).clone(),
            timing: entry.timing,
        })
    }

    /// Cold path: plan one configuration (no RTL). Runs outside the cache
    /// lock so parallel workers do not serialize on the solver.
    fn compute(&self, spec: &MemorySpec, style: DesignStyle) -> Result<CacheEntry, CompileError> {
        let t = Instant::now();
        let plan = plan_design_with(
            &self.dag,
            &self.skeleton,
            &self.geom,
            spec,
            self.opts,
            style,
        )?;
        let timing = CompileTiming {
            frontend_us: 0,
            optimize_us: t.elapsed().as_micros(),
            codegen_us: 0,
        };
        Ok(CacheEntry {
            plan: Arc::new(plan),
            netlist: None,
            verilog: None,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use imagen_algos::Algorithm;
    use imagen_mem::StageMemConfig;

    fn geom() -> ImageGeometry {
        ImageGeometry {
            width: 48,
            height: 32,
            pixel_bits: 16,
        }
    }

    fn backend() -> MemBackend {
        MemBackend::Asic {
            block_bits: 2 * 48 * 16,
        }
    }

    #[test]
    fn cache_hit_equals_cold_compile() {
        let dag = Algorithm::UnsharpM.build();
        let session = Session::new(&dag, geom());
        let spec = MemorySpec::new(backend(), 2).with_coalescing();

        let cold = session.compile(&spec, None).unwrap();
        let warm = session.compile(&spec, None).unwrap();
        assert_eq!(cold.plan.schedule, warm.plan.schedule);
        assert_eq!(cold.plan.design, warm.plan.design);
        assert_eq!(cold.verilog, warm.verilog);

        // And both equal the one-shot Compiler.
        let one_shot = Compiler::new(geom(), spec).compile_dag(&dag).unwrap();
        assert_eq!(cold.plan.schedule, one_shot.plan.schedule);
        assert_eq!(cold.plan.design, one_shot.plan.design);
        assert_eq!(cold.verilog, one_shot.verilog);
    }

    #[test]
    fn price_then_compile_reuses_plan() {
        let dag = Algorithm::HarrisS.build();
        let session = Session::new(&dag, geom());
        let spec = MemorySpec::new(backend(), 2);
        let plan = session.price(&spec, None).unwrap();
        let (hits, misses) = session.cache().stats();
        assert_eq!((hits, misses), (0, 1));
        let full = session.compile(&spec, None).unwrap();
        assert_eq!(plan.schedule, full.plan.schedule, "compile reused the plan");
        assert_eq!(plan.design, full.plan.design);
        let (hits, _) = session.cache().stats();
        assert_eq!(hits, 1);
        let report = imagen_rtl::verify_all(&full.netlist);
        assert!(report.is_clean(), "{:?}", report.errors);
    }

    #[test]
    fn netlist_is_cached_and_shared_with_compile() {
        let dag = Algorithm::UnsharpM.build();
        let session = Session::new(&dag, geom());
        let spec = MemorySpec::new(backend(), 2);
        let n1 = session.netlist(&spec, None).unwrap();
        let n2 = session.netlist(&spec, None).unwrap();
        assert!(Arc::ptr_eq(&n1, &n2), "second call reuses the cached Arc");
        // compile() reuses the same netlist instead of rebuilding.
        let out = session.compile(&spec, None).unwrap();
        assert!(Arc::ptr_eq(&n1, &out.netlist));
        // And the netlist is the one the emitted text comes from.
        assert_eq!(out.verilog, imagen_rtl::emit_verilog(&n1));
    }

    #[test]
    fn style_inference_matches_compiler() {
        let dag = Algorithm::UnsharpM.build();
        let session = Session::new(&dag, geom());
        let plain = MemorySpec::new(backend(), 2);
        let lc = plain.clone().with_coalescing();
        assert_eq!(session.infer_style(&plain), DesignStyle::Ours);
        assert_eq!(session.infer_style(&lc), DesignStyle::OursLc);
        assert_eq!(
            session.price(&plain, None).unwrap().design.style,
            DesignStyle::Ours
        );
        assert_eq!(
            session.price(&lc, None).unwrap().design.style,
            DesignStyle::OursLc
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let dag = Algorithm::CannyS.build();
        let session = Session::new(&dag, geom());
        let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
        let mut spec_a = MemorySpec::new(backend(), 2);
        let mut spec_b = MemorySpec::new(backend(), 2);
        for &s in &buffered {
            spec_a.set_stage(
                s,
                StageMemConfig {
                    ports: 2,
                    coalesce: false,
                },
            );
            spec_b.set_stage(
                s,
                StageMemConfig {
                    ports: 2,
                    coalesce: true,
                },
            );
        }
        let a = session.price(&spec_a, None).unwrap();
        let b = session.price(&spec_b, None).unwrap();
        assert_ne!(a.design.sram_kb(), b.design.sram_kb());
        assert_eq!(session.cache().len(), 2);
    }

    #[test]
    fn shared_cache_across_sessions() {
        let dag = Algorithm::HarrisS.build();
        let cache = Arc::new(CompileCache::new());
        let s1 = Session::with_cache(&dag, geom(), cache.clone());
        let s2 = Session::with_cache(&dag, geom(), cache.clone());
        let spec = MemorySpec::new(backend(), 2);
        let a = s1.price(&spec, None).unwrap();
        let b = s2.price(&spec, None).unwrap();
        assert_eq!(a.design, b.design);
        assert_eq!(cache.stats(), (1, 1), "second session hit the cache");
    }

    #[test]
    fn parallel_sessions_share_one_cache() {
        let dag = Algorithm::CannyS.build();
        let session = Session::new(&dag, geom());
        let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
        let specs: Vec<MemorySpec> = (0..8u32)
            .map(|mask| {
                let mut spec = MemorySpec::new(backend(), 2);
                for (bit, &s) in buffered.iter().enumerate() {
                    spec.set_stage(
                        s,
                        StageMemConfig {
                            ports: 2,
                            coalesce: mask & (1 << bit) != 0,
                        },
                    );
                }
                spec
            })
            .collect();
        let sequential: Vec<f64> = specs
            .iter()
            .map(|s| session.price(s, None).unwrap().design.sram_kb())
            .collect();

        let fresh = Session::new(&dag, geom());
        let mut parallel = vec![0.0f64; specs.len()];
        std::thread::scope(|scope| {
            for (slot, spec) in parallel.iter_mut().zip(&specs) {
                let fresh = &fresh;
                scope.spawn(move || {
                    *slot = fresh.price(spec, None).unwrap().design.sram_kb();
                });
            }
        });
        assert_eq!(sequential, parallel);
    }
}
