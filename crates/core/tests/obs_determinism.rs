//! Observability must be a pure observer: compiling under an installed
//! span collector produces *byte-identical* output to compiling with no
//! collector at all. Anything less — a phase reordered to make a span
//! nest nicely, a value derived from a timestamp — would make `--profile`
//! runs uncertifiable against production runs.
//!
//! Checked on the seven Tbl. 3 pipelines and on randomly generated
//! pipelines (proptest), comparing the Verilog text, the schedule, and
//! the priced design.

use imagen_algos::Algorithm;
use imagen_core::{CompileOutput, Compiler};
use imagen_ir::{BinOp, Dag, Expr};
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
use imagen_obs::{with_collector, Collector};
use proptest::prelude::*;
use std::sync::Arc;

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 32,
        height: 24,
        pixel_bits: 16,
    }
}

fn spec() -> MemorySpec {
    MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2)
}

/// The deterministic fields of a compile, bit-for-bit.
fn assert_identical(plain: &CompileOutput, traced: &CompileOutput) {
    assert_eq!(plain.verilog, traced.verilog, "Verilog text differs");
    assert_eq!(
        plain.plan.schedule, traced.plan.schedule,
        "schedule differs"
    );
    assert_eq!(plain.plan.design, traced.plan.design, "design differs");
}

#[test]
fn tbl3_pipelines_compile_identically_under_tracing() {
    for alg in Algorithm::all() {
        let dag = alg.build();
        let plain = Compiler::new(geom(), spec()).compile_dag(&dag).unwrap();
        let collector = Arc::new(Collector::new());
        let traced = with_collector(&collector, || {
            Compiler::new(geom(), spec()).compile_dag(&dag).unwrap()
        });
        assert_identical(&plain, &traced);
        // The collector actually observed the compile (this is not a
        // vacuous comparison) and saw the load-bearing phases.
        let phases: Vec<&str> = collector.phase_totals().iter().map(|t| t.name).collect();
        for expect in ["plan", "ilp.solve", "netlist.build", "emit"] {
            assert!(
                phases.contains(&expect),
                "{:?}: phase {expect} missing from {phases:?}",
                alg
            );
        }
    }
}

#[test]
fn source_compiles_identically_under_tracing() {
    // Through the DSL frontend, so frontend.parse/lower run under the
    // collector too.
    for alg in Algorithm::all() {
        let plain = Compiler::new(geom(), spec())
            .compile_source(alg.name(), alg.dsl_source())
            .unwrap();
        let traced = with_collector(&Arc::new(Collector::new()), || {
            Compiler::new(geom(), spec())
                .compile_source(alg.name(), alg.dsl_source())
                .unwrap()
        });
        assert_identical(&plain, &traced);
    }
}

/// SplitMix64 step — reproducible from the proptest seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random stencil expression over producer slot 0.
fn rand_expr(state: &mut u64, depth: u32) -> Expr {
    let tap = |state: &mut u64| {
        Expr::tap(
            0,
            (next(state) % 3) as i32 - 1,
            (next(state) % 3) as i32 - 1,
        )
    };
    if depth == 0 || next(state).is_multiple_of(4) {
        return if next(state).is_multiple_of(3) {
            Expr::Const((next(state) % 17) as i64 - 8)
        } else {
            tap(state)
        };
    }
    let d = depth - 1;
    match next(state) % 5 {
        0 => Expr::bin(BinOp::Add, rand_expr(state, d), rand_expr(state, d)),
        1 => Expr::bin(BinOp::Sub, rand_expr(state, d), rand_expr(state, d)),
        2 => Expr::bin(BinOp::Mul, rand_expr(state, d), tap(state)),
        3 => Expr::bin(BinOp::Min, rand_expr(state, d), rand_expr(state, d)),
        _ => Expr::bin(BinOp::Max, rand_expr(state, d), rand_expr(state, d)),
    }
}

/// A random linear pipeline (every stage taps its producer, so every
/// stage has a stencil and the planner has buffers to place).
fn rand_dag(seed: u64, n_stages: usize) -> Dag {
    let mut state = seed;
    let mut dag = Dag::new("fuzz");
    let mut prev = dag.add_input("K0");
    for i in 0..n_stages {
        let expr = Expr::bin(BinOp::Add, Expr::tap(0, 0, 0), rand_expr(&mut state, 3));
        prev = dag.add_stage(format!("K{}", i + 1), &[prev], expr).unwrap();
    }
    dag.mark_output(prev);
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random pipelines compile byte-identically with and without a
    /// collector installed — including when the traced run goes first
    /// (no order dependence either way).
    #[test]
    fn random_dags_compile_identically_under_tracing(
        seed in 0u64..u64::MAX,
        n_stages in 1usize..4,
        traced_first in 0u64..2,
    ) {
        let traced_first = traced_first == 1;
        let dag = rand_dag(seed, n_stages);
        let compile = || Compiler::new(geom(), spec()).compile_dag(&dag).unwrap();
        let traced_run = || with_collector(&Arc::new(Collector::new()), compile);
        let (plain, traced) = if traced_first {
            let t = traced_run();
            (compile(), t)
        } else {
            (compile(), traced_run())
        };
        prop_assert_eq!(&plain.verilog, &traced.verilog);
        prop_assert_eq!(&plain.plan.schedule, &traced.plan.schedule);
        prop_assert_eq!(&plain.plan.design, &traced.plan.design);
    }
}
