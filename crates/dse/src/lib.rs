//! # imagen-dse
//!
//! Design-space exploration over per-stage memory configurations (paper
//! Sec. 8.5, Fig. 10).
//!
//! Because ImaGen accepts *arbitrary* memory specifications, each stage's
//! line buffer can independently use a dual-port block (DP) or a
//! dual-port block with line coalescing (DPLC). For an algorithm with
//! `N` buffered stages that is a `2^N` design space; [`sweep`] enumerates
//! it, prices every point (area from the SRAM model, power from the
//! access statistics) and [`pareto_front`] extracts the non-dominated
//! designs. The paper's headline observation — the Pareto frontier is
//! *algorithm-specific* (3 points for Canny-m, 2 for Denoise-m, with
//! all-DPLC strictly dominated on Canny-m) — is reproduced by the
//! `fig10` experiment binary.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use imagen_core::{CompileError, Compiler};
use imagen_ir::Dag;
use imagen_mem::{Design, ImageGeometry, MemBackend, MemorySpec, StageMemConfig};

/// Per-stage memory choice explored by the DSE (Sec. 8.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StageChoice {
    /// Dual-port block, one row per block.
    Dp,
    /// Dual-port block with line coalescing.
    Dplc,
}

impl StageChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            StageChoice::Dp => "DP",
            StageChoice::Dplc => "DPLC",
        }
    }
}

/// One evaluated design point.
#[derive(Clone, Debug)]
pub struct DsePoint {
    /// Choice per buffered stage (parallel to `buffered_stages`).
    pub choices: Vec<StageChoice>,
    /// Total accelerator area, mm².
    pub area_mm2: f64,
    /// Total accelerator power, mW.
    pub power_mw: f64,
    /// Allocated SRAM, KB.
    pub sram_kb: f64,
    /// The priced design.
    pub design: Design,
}

impl DsePoint {
    /// Number of stages using DPLC.
    pub fn dplc_count(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| **c == StageChoice::Dplc)
            .count()
    }
}

/// Result of a sweep: all points plus the ids of the buffered stages the
/// choice vectors refer to.
#[derive(Clone, Debug)]
pub struct DseResult {
    /// Stage indices (into the DAG) that own line buffers.
    pub buffered_stages: Vec<usize>,
    /// All evaluated points, in enumeration order (all-DP first, all-DPLC
    /// last).
    pub points: Vec<DsePoint>,
}

impl DseResult {
    /// Indices of the Pareto-optimal points (minimizing area and power).
    pub fn pareto_front(&self) -> Vec<usize> {
        pareto_front(
            &self
                .points
                .iter()
                .map(|p| (p.area_mm2, p.power_mw))
                .collect::<Vec<_>>(),
        )
    }
}

/// Sweeps every per-stage DP/DPLC combination for `dag`.
///
/// # Errors
///
/// Propagates the first [`CompileError`]; individual infeasible points
/// cannot occur for DP/DPLC choices (both are dual-port).
pub fn sweep(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<DseResult, CompileError> {
    let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
    let n = buffered.len();
    assert!(n <= 20, "sweep of 2^{n} points is impractical");
    let mut points = Vec::with_capacity(1 << n);

    for mask in 0u32..(1 << n) {
        let mut spec = MemorySpec::new(backend, 2);
        let mut choices = Vec::with_capacity(n);
        for (bit, &stage) in buffered.iter().enumerate() {
            let choice = if mask & (1 << bit) != 0 {
                StageChoice::Dplc
            } else {
                StageChoice::Dp
            };
            choices.push(choice);
            spec.set_stage(
                stage,
                StageMemConfig {
                    ports: 2,
                    coalesce: choice == StageChoice::Dplc,
                },
            );
        }
        let out = Compiler::new(*geom, spec).compile_dag(dag)?;
        let design = out.plan.design;
        points.push(DsePoint {
            choices,
            area_mm2: design.total_area_mm2(),
            power_mw: design.total_power_mw(),
            sram_kb: design.sram_kb(),
            design,
        });
    }

    Ok(DseResult {
        buffered_stages: buffered,
        points,
    })
}

/// Chooses line coalescing *judiciously*, per buffer: starting from the
/// all-coalesced configuration, greedily reverts any stage whose
/// coalescing does not reduce the allocated SRAM, until a fixpoint.
///
/// This implements the paper's framing that the compiler "judiciously
/// coalesces multiple lines" (Sec. 1): coalescing is a per-buffer choice,
/// and on some pipelines (Xcorr-m's tall windows with two readers) the
/// stronger coalesced-contention constraints cost more rows than the
/// blocks save — exactly the trade-off Fig. 10 explores.
///
/// Returns the chosen per-stage configs and the compiled design.
///
/// # Errors
///
/// Propagates the first [`CompileError`].
pub fn judicious_lc(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<(Vec<(usize, StageChoice)>, imagen_core::CompileOutput), CompileError> {
    let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
    let mut choices: Vec<StageChoice> = vec![StageChoice::Dplc; buffered.len()];

    let compile = |choices: &[StageChoice]| -> Result<imagen_core::CompileOutput, CompileError> {
        let mut spec = MemorySpec::new(backend, 2);
        for (c, &stage) in choices.iter().zip(&buffered) {
            spec.set_stage(
                stage,
                StageMemConfig {
                    ports: 2,
                    coalesce: *c == StageChoice::Dplc,
                },
            );
        }
        Compiler::new(*geom, spec)
            .with_style(imagen_mem::DesignStyle::OursLc)
            .compile_dag(dag)
    };

    let mut best = compile(&choices)?;
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..choices.len() {
            if choices[i] == StageChoice::Dp {
                continue;
            }
            choices[i] = StageChoice::Dp;
            let cand = compile(&choices)?;
            if cand.plan.design.sram_kb() < best.plan.design.sram_kb() {
                best = cand;
                improved = true;
            } else {
                choices[i] = StageChoice::Dplc;
            }
        }
    }
    let cfg = buffered.into_iter().zip(choices).collect();
    Ok((cfg, best))
}

/// Returns the indices of non-dominated points (minimize both axes).
///
/// A point dominates another when it is no worse on both axes and
/// strictly better on at least one.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &(ai, pi)) in points.iter().enumerate() {
        for (j, &(aj, pj)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = aj <= ai && pj <= pi;
            let better = aj < ai || pj < pi;
            if no_worse && better {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_algos::Algorithm;

    fn geom() -> ImageGeometry {
        ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        }
    }

    fn backend() -> MemBackend {
        // Blocks hold two rows, so DPLC is available.
        MemBackend::Asic {
            block_bits: 2 * 32 * 16,
        }
    }

    #[test]
    fn pareto_front_logic() {
        let pts = [(1.0, 5.0), (2.0, 3.0), (3.0, 1.0), (3.0, 3.0), (2.5, 2.9)];
        let front = pareto_front(&pts);
        // (3.0, 3.0) is dominated by (2.0, 3.0); the rest trade off.
        assert_eq!(front, vec![0, 1, 2, 4], "dominated points excluded");
    }

    #[test]
    fn pareto_handles_duplicates() {
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        // Identical points do not dominate each other (no strict better).
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn sweep_explores_full_space() {
        let dag = Algorithm::XcorrM.build(); // 2 buffered stages -> 4 points
        let res = sweep(&dag, &geom(), backend()).unwrap();
        assert_eq!(res.points.len(), 4);
        assert_eq!(res.points[0].dplc_count(), 0, "all-DP first");
        assert_eq!(
            res.points.last().unwrap().dplc_count(),
            res.buffered_stages.len(),
            "all-DPLC last"
        );
        let front = res.pareto_front();
        assert!(!front.is_empty());
        // All-DP must appear on the frontier or be dominated by a cheaper
        // design; either way every frontier point has minimal power among
        // designs of no-larger area.
        for &i in &front {
            for (j, p) in res.points.iter().enumerate() {
                if j == i {
                    continue;
                }
                assert!(
                    !(p.area_mm2 <= res.points[i].area_mm2 && p.power_mw < res.points[i].power_mw),
                    "frontier point {i} dominated by {j}"
                );
            }
        }
    }

    #[test]
    fn dplc_reduces_area_on_chains() {
        // For a deep single-consumer chain, all-DPLC should shrink SRAM
        // (fewer blocks) versus all-DP.
        let dag = Algorithm::CannyS.build();
        let res = sweep_small(&dag);
        let all_dp = &res.points[0];
        let all_dplc = res.points.last().unwrap();
        assert!(
            all_dplc.sram_kb < all_dp.sram_kb,
            "DPLC {} KB vs DP {} KB",
            all_dplc.sram_kb,
            all_dp.sram_kb
        );
    }

    // Canny-s has 8 buffered stages -> 256 points; keep the test fast by
    // sweeping only the extremes.
    fn sweep_small(dag: &imagen_ir::Dag) -> DseResult {
        let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
        let mut points = Vec::new();
        for &all_lc in &[false, true] {
            let mut spec = MemorySpec::new(backend(), 2);
            for &stage in &buffered {
                spec.set_stage(
                    stage,
                    StageMemConfig {
                        ports: 2,
                        coalesce: all_lc,
                    },
                );
            }
            let out = Compiler::new(geom(), spec).compile_dag(dag).unwrap();
            let design = out.plan.design;
            points.push(DsePoint {
                choices: vec![
                    if all_lc {
                        StageChoice::Dplc
                    } else {
                        StageChoice::Dp
                    };
                    buffered.len()
                ],
                area_mm2: design.total_area_mm2(),
                power_mw: design.total_power_mw(),
                sram_kb: design.sram_kb(),
                design,
            });
        }
        DseResult {
            buffered_stages: buffered,
            points,
        }
    }
}
