//! # imagen-dse
//!
//! Design-space exploration over per-stage memory configurations (paper
//! Sec. 8.5, Fig. 10).
//!
//! Because ImaGen accepts *arbitrary* memory specifications, each stage's
//! line buffer can independently use a dual-port block (DP) or a
//! dual-port block with line coalescing (DPLC). For an algorithm with
//! `N` buffered stages that is a `2^N` design space. [`explore`] walks it
//! under a chosen [`ExploreStrategy`]:
//!
//! * [`ExploreStrategy::Exhaustive`] — every configuration, the paper's
//!   Fig. 10 sweep ([`sweep`] is this strategy with default options);
//! * [`ExploreStrategy::Greedy`] — the "judicious coalescing" descent
//!   from all-DPLC ([`judicious_lc`] wraps it);
//! * [`ExploreStrategy::Random`] — budget-capped, deterministically
//!   seeded sampling for spaces too large to enumerate.
//!
//! Evaluation fans out over `std::thread::scope` workers sharing one
//! memoized [`Session`]: the constraint skeleton is built once per DAG,
//! repeated configurations (the greedy walk revisits many) are cache
//! hits, and points are *priced* (area from the SRAM model, power from
//! the access statistics) without generating RTL text nobody reads. Each
//! point additionally carries a [`ResourceReport`] (instantiated SRAM
//! macro bits, flip-flops, datapath operators) as a structural costing
//! axis, computed by `imagen_rtl`'s fast path — the same numbers a full
//! netlist elaboration yields (pinned equal by test), with none of its
//! per-point allocation cost. Results
//! are byte-identical to a sequential walk regardless of thread count.
//!
//! [`pareto_front`] / [`ParetoFront`] extract the non-dominated designs —
//! incrementally, not by the quadratic post-hoc scan. The paper's
//! headline observation — the Pareto frontier is *algorithm-specific*
//! (3 points for Canny-m, 2 for Denoise-m, with all-DPLC strictly
//! dominated on Canny-m) — is reproduced by the `fig10` experiment
//! binary.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use imagen_core::{CompileError, Session};
use imagen_ir::Dag;
use imagen_mem::{Design, DesignStyle, ImageGeometry, MemBackend, MemorySpec, StageMemConfig};
use imagen_rtl::{build_netlist, report_resources_for, BitWidths, InterpError, ResourceReport};
use imagen_schedule::Plan;
use imagen_sim::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Per-stage memory choice explored by the DSE (Sec. 8.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StageChoice {
    /// Dual-port block, one row per block.
    Dp,
    /// Dual-port block with line coalescing.
    Dplc,
}

impl StageChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            StageChoice::Dp => "DP",
            StageChoice::Dplc => "DPLC",
        }
    }
}

/// One evaluated design point.
#[derive(Clone, Debug)]
pub struct DsePoint {
    /// Choice per buffered stage (parallel to `buffered_stages`).
    pub choices: Vec<StageChoice>,
    /// Total accelerator area, mm².
    pub area_mm2: f64,
    /// Total accelerator power, mW.
    pub power_mw: f64,
    /// Allocated SRAM, KB.
    pub sram_kb: f64,
    /// Netlist-derived hardware inventory (instantiated SRAM macro bits,
    /// flip-flops, datapath operators) — the structural costing axis next
    /// to the analytic area/power models. Derived from the same netlist
    /// the RTL is printed from, without generating any Verilog text.
    pub resources: ResourceReport,
    /// Measured (netlist-interpreted) energy. Populated during the sweep
    /// itself under the default [`MeasureMode::Noise`]; `None` only when
    /// the sweep ran with [`MeasureMode::Off`] and nobody has paid for an
    /// on-demand [`DseResult::measure_point`] yet.
    pub measured: Option<MeasuredEnergy>,
    /// The priced design.
    pub design: Design,
}

/// Measured energy/power of one design point, from interpreting the
/// point's cached netlist (`imagen_power`): the analytic `power_mw`
/// axis's activity-measured counterpart.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredEnergy {
    /// Total (dynamic + static) energy per frame, pJ, ungated.
    pub energy_pj_per_frame: f64,
    /// Total measured power at the evaluation clock, mW, ungated.
    pub power_mw: f64,
    /// Total measured power of the clock-gated netlist, mW.
    pub gated_power_mw: f64,
    /// Read-port cycles the gating pass removed (interpreter-counted).
    pub gated_off_cycles: u64,
}

impl MeasuredEnergy {
    /// Power saving of clock gating, percent of the ungated power.
    pub fn gating_saving_pct(&self) -> f64 {
        if self.power_mw <= 0.0 {
            0.0
        } else {
            100.0 * (self.power_mw - self.gated_power_mw) / self.power_mw
        }
    }
}

/// Failure of an on-demand point measurement.
#[derive(Debug)]
pub enum MeasureError {
    /// Planning/compiling the point's netlist failed.
    Compile(CompileError),
    /// Interpreting the netlist failed (e.g. input frame geometry).
    Interp(InterpError),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Compile(e) => write!(f, "{e}"),
            MeasureError::Interp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<CompileError> for MeasureError {
    fn from(e: CompileError) -> Self {
        MeasureError::Compile(e)
    }
}

impl From<InterpError> for MeasureError {
    fn from(e: InterpError) -> Self {
        MeasureError::Interp(e)
    }
}

impl DsePoint {
    /// Number of stages using DPLC.
    pub fn dplc_count(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| **c == StageChoice::Dplc)
            .count()
    }
}

/// Work counters of one [`explore`] run — the numbers `imagen dse
/// --profile` and the serve stats endpoint report per sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Pricing requests issued (cache hits + misses): how many times the
    /// sweep asked for a design point, counting revisits.
    pub points_priced: u64,
    /// Pricing requests served from the session's compile cache.
    pub cache_hits: u64,
    /// Pricing requests that ran the planner.
    pub cache_misses: u64,
    /// Simplex pivots performed process-wide during the sweep (a delta
    /// of [`imagen_ilp::stats::pivot_count`]; with concurrent sweeps in
    /// one process the delta covers all of them).
    pub simplex_pivots: u64,
}

/// Result of a sweep: all points plus the ids of the buffered stages the
/// choice vectors refer to.
#[derive(Clone, Debug)]
pub struct DseResult {
    /// Stage indices (into the DAG) that own line buffers.
    pub buffered_stages: Vec<usize>,
    /// All evaluated points, in enumeration order (for
    /// [`ExploreStrategy::Exhaustive`]: all-DP first, all-DPLC last).
    pub points: Vec<DsePoint>,
    /// Work counters of the run that produced this result.
    pub stats: ExploreStats,
}

impl DseResult {
    /// Indices of the Pareto-optimal points (minimizing area and power)
    /// — [`DseResult::pareto_front_by`] over the default
    /// `(area_mm2, power_mw)` objectives.
    pub fn pareto_front(&self) -> Vec<usize> {
        self.pareto_front_by(|p| (p.area_mm2, p.power_mw))
    }

    /// Indices of the Pareto-optimal points under an arbitrary pair of
    /// minimized objectives — e.g. `(area_mm2, measured energy)` for the
    /// measured frontier. Reuses the incremental NaN-rejecting
    /// [`ParetoFront`]; points whose objectives are non-finite are never
    /// on the frontier.
    pub fn pareto_front_by(&self, objectives: impl Fn(&DsePoint) -> (f64, f64)) -> Vec<usize> {
        let mut front = ParetoFront::new();
        for (i, p) in self.points.iter().enumerate() {
            let (x, y) = objectives(p);
            front.offer(i, x, y);
        }
        front.indices()
    }

    /// The per-stage memory spec a point was explored with — what a
    /// front end needs to replan (and, e.g., certify) any point of the
    /// sweep outside of it.
    pub fn spec_of(&self, point: &DsePoint, backend: MemBackend) -> MemorySpec {
        spec_for(backend, &self.buffered_stages, &point.choices)
    }

    /// Populates (and returns) the measured energy of point `index` by
    /// interpreting its netlist — fetched from `session`'s cache, built
    /// without Verilog if absent — on `input`, under both the ungated
    /// and the clock-gated variants. Memoized on the point: a second
    /// call is free.
    ///
    /// `session` must be a session for the same DAG/geometry the sweep
    /// ran on, and `input` one frame of that geometry per input stream.
    ///
    /// # Errors
    ///
    /// [`MeasureError`] on planning or interpretation failure.
    pub fn measure_point(
        &mut self,
        session: &Session,
        index: usize,
        inputs: &[Image],
    ) -> Result<MeasuredEnergy, MeasureError> {
        if let Some(m) = self.points[index].measured {
            return Ok(m);
        }
        let point = &self.points[index];
        let spec = spec_for(point.design.backend, &self.buffered_stages, &point.choices);
        let net = session.netlist(&spec, Some(point.design.style))?;
        let pm = imagen_power::measure_netlist(&net, &point.design, inputs)?;
        let m = MeasuredEnergy {
            energy_pj_per_frame: pm.ungated.energy_pj_per_frame(),
            power_mw: pm.ungated.total_mw(),
            gated_power_mw: pm.gated.total_mw(),
            gated_off_cycles: pm.gated_off_cycles(),
        };
        self.points[index].measured = Some(m);
        Ok(m)
    }
}

/// How [`explore`] walks the per-stage DP/DPLC space.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExploreStrategy {
    /// Every configuration (`2^N` points; `N <= 20` enforced).
    #[default]
    Exhaustive,
    /// Greedy "judicious coalescing" descent: start all-DPLC, revert any
    /// stage whose coalescing does not reduce allocated SRAM, to a
    /// fixpoint. Points are recorded in first-evaluation order.
    Greedy,
    /// Deterministically seeded random sampling, capped at `samples`
    /// evaluated points. The all-DP and all-DPLC anchors are always
    /// included. Usable when `N` is beyond exhaustive reach (up to the
    /// 64-stage mask width).
    Random {
        /// Evaluation budget (number of distinct points).
        samples: usize,
        /// Seed for the deterministic mask stream.
        seed: u64,
    },
}

/// Whether [`explore`] measures each point's energy while sweeping.
///
/// The netlist interpreter compiles each point to a flat evaluation
/// program and streams the frame through it, which makes full measured
/// sweeps cheap enough to be the default: every [`DsePoint`] comes back
/// with [`DsePoint::measured`] populated, so the measured-energy
/// frontier (`pareto_front_by` over `(area, energy)`) is available
/// without a second pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MeasureMode {
    /// Interpret every point's netlist (ungated and clock-gated) on
    /// deterministic seeded noise frames — one frame per input stream,
    /// stream `i` seeded with `seed + i` (the `imagen_algos::noise_bits`
    /// stimulus convention shared with the CLI).
    Noise {
        /// Base seed of the per-input noise streams.
        seed: u64,
        /// Unsigned bits per noise pixel.
        bits: u32,
    },
    /// Skip measurement: points carry `measured: None` until someone
    /// pays for an on-demand [`DseResult::measure_point`].
    Off,
}

impl Default for MeasureMode {
    fn default() -> Self {
        MeasureMode::Noise { seed: 1, bits: 4 }
    }
}

/// Options for [`explore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreOptions {
    /// The walk strategy.
    pub strategy: ExploreStrategy,
    /// Worker threads for fan-out; `0` uses the machine's available
    /// parallelism. Results do not depend on this value.
    pub threads: usize,
    /// Measured-energy policy; [`MeasureMode::Noise`] (default) measures
    /// every point during the sweep.
    pub measure: MeasureMode,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            strategy: ExploreStrategy::Exhaustive,
            threads: 0,
            measure: MeasureMode::default(),
        }
    }
}

/// Builds the spec selecting `choices` for the given buffered stages.
fn spec_for(backend: MemBackend, buffered: &[usize], choices: &[StageChoice]) -> MemorySpec {
    let mut spec = MemorySpec::new(backend, 2);
    for (c, &stage) in choices.iter().zip(buffered) {
        spec.set_stage(
            stage,
            StageMemConfig {
                ports: 2,
                coalesce: *c == StageChoice::Dplc,
            },
        );
    }
    spec
}

/// Decodes a bitmask into per-stage choices (bit `i` set = stage `i` on
/// DPLC).
fn choices_for(mask: u64, n: usize) -> Vec<StageChoice> {
    (0..n)
        .map(|bit| {
            if mask & (1 << bit) != 0 {
                StageChoice::Dplc
            } else {
                StageChoice::Dp
            }
        })
        .collect()
}

fn point_from(plan: &Plan, choices: Vec<StageChoice>, inputs: Option<&[Image]>) -> DsePoint {
    let design = plan.design.clone();
    // The fast path: same numbers as walking the full netlist (pinned by
    // test in imagen-rtl), no per-point elaboration in the pricing loop.
    let resources = report_resources_for(&plan.dag, &design, &BitWidths::default());
    // Measured-energy default-on: elaborate and interpret the point's
    // netlist right here in the pricing loop. The interpreter's compiled
    // evaluation program makes this cheap; the netlist is transient (not
    // cached), so a 2^N sweep does not pin 2^N netlists.
    let measured = inputs.map(|inputs| {
        let net = build_netlist(&plan.dag, &design, &BitWidths::default());
        let pm = imagen_power::measure_netlist(&net, &design, inputs)
            .expect("sweep inputs are built to the sweep geometry");
        MeasuredEnergy {
            energy_pj_per_frame: pm.ungated.energy_pj_per_frame(),
            power_mw: pm.ungated.total_mw(),
            gated_power_mw: pm.gated.total_mw(),
            gated_off_cycles: pm.gated_off_cycles(),
        }
    });
    DsePoint {
        choices,
        area_mm2: design.total_area_mm2(),
        power_mw: design.total_power_mw(),
        sram_kb: design.sram_kb(),
        resources,
        measured,
        design,
    }
}

/// Evaluates `masks` against the session, fanning out over up to
/// `threads` scoped workers. Output order and values are identical to a
/// sequential evaluation; on error the first failure in `masks` order is
/// returned.
fn evaluate_masks(
    session: &Session,
    backend: MemBackend,
    buffered: &[usize],
    masks: &[u64],
    threads: usize,
    inputs: Option<&[Image]>,
) -> Result<Vec<DsePoint>, CompileError> {
    let n = buffered.len();
    // Exhaustive/random mask lists never repeat, so memoizing every plan
    // would only grow the cache — price transiently.
    let price = |mask: u64| -> Result<DsePoint, CompileError> {
        let choices = choices_for(mask, n);
        let spec = spec_for(backend, buffered, &choices);
        let plan = session.price_transient(&spec, None)?;
        Ok(point_from(&plan, choices, inputs))
    };

    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(masks.len().max(1));

    if threads <= 1 {
        return masks.iter().map(|&m| price(m)).collect();
    }

    let mut slots: Vec<Option<Result<DsePoint, CompileError>>> = Vec::new();
    slots.resize_with(masks.len(), || None);
    let chunk = masks.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot_chunk, mask_chunk) in slots.chunks_mut(chunk).zip(masks.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, &mask) in slot_chunk.iter_mut().zip(mask_chunk) {
                    *slot = Some(price(mask));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Explores the per-stage DP/DPLC space of `dag` under `opts`.
///
/// # Errors
///
/// Propagates the first [`CompileError`] in enumeration order; individual
/// infeasible points cannot occur for DP/DPLC choices (both are
/// dual-port).
pub fn explore(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
    opts: ExploreOptions,
) -> Result<DseResult, CompileError> {
    let _sweep = imagen_obs::span("dse.explore");
    let session = Session::new(dag, *geom);
    let pivots_before = imagen_ilp::stats::pivot_count();
    let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
    let n = buffered.len();
    // Configurations are u64 bitmasks throughout (choices_for, the greedy
    // walk's dedup keys, sample_masks).
    assert!(n <= 64, "{n} buffered stages exceed the u64 mask width");

    let inputs = measure_inputs(dag, geom, opts.measure);
    let inputs = inputs.as_deref();

    let points = match opts.strategy {
        ExploreStrategy::Exhaustive => {
            assert!(n <= 20, "sweep of 2^{n} points is impractical");
            let masks: Vec<u64> = (0..(1u64 << n)).collect();
            evaluate_masks(&session, backend, &buffered, &masks, opts.threads, inputs)?
        }
        ExploreStrategy::Random { samples, seed } => {
            let masks = sample_masks(n, samples, seed);
            evaluate_masks(&session, backend, &buffered, &masks, opts.threads, inputs)?
        }
        ExploreStrategy::Greedy => greedy_walk(&session, backend, &buffered, inputs)?.points,
    };

    let (hits, misses) = session.cache().stats();
    Ok(DseResult {
        buffered_stages: buffered,
        points,
        stats: ExploreStats {
            points_priced: (hits + misses) as u64,
            cache_hits: hits as u64,
            cache_misses: misses as u64,
            simplex_pivots: imagen_ilp::stats::pivot_count() - pivots_before,
        },
    })
}

/// The sweep's measurement stimulus: one seeded noise frame per input
/// stream (`None` under [`MeasureMode::Off`]).
fn measure_inputs(dag: &Dag, geom: &ImageGeometry, mode: MeasureMode) -> Option<Vec<Image>> {
    match mode {
        MeasureMode::Off => None,
        MeasureMode::Noise { seed, bits } => {
            let n_inputs = dag.stages().filter(|(_, s)| s.is_input()).count();
            Some(
                (0..n_inputs)
                    .map(|i| {
                        let seed = seed.wrapping_add(i as u64);
                        Image::from_fn(geom.width, geom.height, move |x, y| {
                            imagen_algos::noise_bits(seed, x, y, bits)
                        })
                    })
                    .collect(),
            )
        }
    }
}

/// Budget-capped deterministic mask sample: the all-DP and all-DPLC
/// anchors, then SplitMix64 draws (first occurrence kept) until `samples`
/// distinct masks are collected or the space / attempt budget runs out.
fn sample_masks(n: usize, samples: usize, seed: u64) -> Vec<u64> {
    let space: Option<u64> = if n < 64 { Some(1u64 << n) } else { None };
    if let Some(space) = space {
        if samples as u64 >= space {
            return (0..space).collect();
        }
    }
    let all_dplc = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut masks: Vec<u64> = Vec::new();
    for anchor in [0, all_dplc] {
        if masks.len() < samples && seen.insert(anchor) {
            masks.push(anchor);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attempts = 0usize;
    while masks.len() < samples && attempts < samples.saturating_mul(64) {
        attempts += 1;
        let mask = rng.next_u64() & all_dplc;
        if seen.insert(mask) {
            masks.push(mask);
        }
    }
    masks
}

/// Sweeps every per-stage DP/DPLC combination for `dag` —
/// [`ExploreStrategy::Exhaustive`] with default fan-out.
///
/// # Errors
///
/// See [`explore`].
pub fn sweep(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<DseResult, CompileError> {
    explore(dag, geom, backend, ExploreOptions::default())
}

/// Outcome of the greedy descent. The winning plan itself stays in the
/// session cache — callers re-request it (a hit) when they need it.
struct GreedyOutcome {
    choices: Vec<StageChoice>,
    /// Distinct configurations in first-evaluation order.
    points: Vec<DsePoint>,
}

/// The judicious-coalescing walk: start all-DPLC, revert any stage whose
/// coalescing does not strictly reduce allocated SRAM, repeat to a
/// fixpoint. Memoized through the session, so configurations revisited
/// across passes cost a cache lookup, not a compile.
fn greedy_walk(
    session: &Session,
    backend: MemBackend,
    buffered: &[usize],
    inputs: Option<&[Image]>,
) -> Result<GreedyOutcome, CompileError> {
    let n = buffered.len();
    assert!(n <= 64, "{n} buffered stages exceed the u64 mask width");
    let mut recorded: HashSet<u64> = HashSet::new();
    let mut points: Vec<DsePoint> = Vec::new();

    let mask_of = |choices: &[StageChoice]| -> u64 {
        choices
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == StageChoice::Dplc)
            .fold(0u64, |m, (i, _)| m | (1 << i))
    };

    let mut price = |choices: &[StageChoice]| -> Result<Arc<Plan>, CompileError> {
        let spec = spec_for(backend, buffered, choices);
        let plan = session.price(&spec, Some(DesignStyle::OursLc))?;
        if recorded.insert(mask_of(choices)) {
            points.push(point_from(&plan, choices.to_vec(), inputs));
        }
        Ok(plan)
    };

    let mut choices: Vec<StageChoice> = vec![StageChoice::Dplc; n];
    let mut best = price(&choices)?;
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            if choices[i] == StageChoice::Dp {
                continue;
            }
            choices[i] = StageChoice::Dp;
            let cand = price(&choices)?;
            if cand.design.sram_kb() < best.design.sram_kb() {
                best = cand;
                improved = true;
            } else {
                choices[i] = StageChoice::Dplc;
            }
        }
    }
    Ok(GreedyOutcome { choices, points })
}

/// Chooses line coalescing *judiciously*, per buffer: starting from the
/// all-coalesced configuration, greedily reverts any stage whose
/// coalescing does not reduce the allocated SRAM, until a fixpoint
/// ([`ExploreStrategy::Greedy`]).
///
/// This implements the paper's framing that the compiler "judiciously
/// coalesces multiple lines" (Sec. 1): coalescing is a per-buffer choice,
/// and on some pipelines (Xcorr-m's tall windows with two readers) the
/// stronger coalesced-contention constraints cost more rows than the
/// blocks save — exactly the trade-off Fig. 10 explores.
///
/// Returns the chosen per-stage configs and the compiled design. Probe
/// configurations are priced without RTL; Verilog is generated once, for
/// the winner.
///
/// # Errors
///
/// Propagates the first [`CompileError`].
pub fn judicious_lc(
    dag: &Dag,
    geom: &ImageGeometry,
    backend: MemBackend,
) -> Result<(Vec<(usize, StageChoice)>, imagen_core::CompileOutput), CompileError> {
    let session = Session::new(dag, *geom);
    let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
    // Probe points are pricing-only; nobody reads their measured energy.
    let outcome = greedy_walk(&session, backend, &buffered, None)?;
    // The winner's plan is a cache hit; this only adds codegen.
    let out = session.compile(
        &spec_for(backend, &buffered, &outcome.choices),
        Some(DesignStyle::OursLc),
    )?;
    let cfg = buffered.into_iter().zip(outcome.choices).collect();
    Ok((cfg, out))
}

/// An incrementally maintained two-dimensional Pareto frontier
/// (minimizing both axes).
///
/// Points stream in via [`ParetoFront::offer`]; the structure keeps only
/// the currently non-dominated set, sorted by the first axis, so each
/// offer costs a binary search plus a contiguous splice of the kept set —
/// `O(n log n)` total when the frontier stays small (the typical DSE
/// shape), degrading to the scan's quadratic bound only when nearly every
/// point survives in adversarial order. Duplicate points are all kept
/// (neither dominates the
/// other); points with non-finite coordinates are rejected outright —
/// a NaN compares false against everything, which under the quadratic
/// definition would sneak it *onto* the frontier.
#[derive(Clone, Debug, Default)]
pub struct ParetoFront {
    /// Non-dominated `(x, y, index)`, sorted by `x` ascending; across
    /// distinct values `y` is strictly decreasing; equal `(x, y)`
    /// duplicates are adjacent.
    entries: Vec<(f64, f64, usize)>,
}

impl ParetoFront {
    /// An empty frontier.
    pub fn new() -> ParetoFront {
        ParetoFront::default()
    }

    /// Offers point `index` at `(x, y)`. Returns `true` when the point is
    /// currently on the frontier; `false` when it is dominated or has a
    /// non-finite coordinate.
    pub fn offer(&mut self, index: usize, x: f64, y: f64) -> bool {
        if !x.is_finite() || !y.is_finite() {
            return false;
        }
        // First entry with entry.x >= x.
        let pos = self.entries.partition_point(|e| e.0 < x);
        // Dominated by the best predecessor (strictly smaller x)?
        if pos > 0 && self.entries[pos - 1].1 <= y {
            return false;
        }
        // Dominated by an equal-x entry with smaller y?
        if pos < self.entries.len() && self.entries[pos].0 == x && self.entries[pos].1 < y {
            return false;
        }
        // Remove entries the new point dominates: x' >= x and y' >= y,
        // excluding exact duplicates (kept). Given the sort, these are
        // contiguous from `pos` (skipping duplicates of (x, y)).
        let mut start = pos;
        while start < self.entries.len() && self.entries[start].0 == x && self.entries[start].1 == y
        {
            start += 1;
        }
        let mut end = start;
        while end < self.entries.len() && self.entries[end].1 >= y {
            end += 1;
        }
        self.entries.drain(start..end);
        self.entries.insert(pos, (x, y, index));
        true
    }

    /// Indices currently on the frontier, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.entries.iter().map(|e| e.2).collect();
        out.sort_unstable();
        out
    }

    /// Number of points currently on the frontier.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Returns the indices of non-dominated points (minimize both axes).
///
/// A point dominates another when it is no worse on both axes and
/// strictly better on at least one. Points with non-finite coordinates
/// (NaN, infinities) are never part of the frontier.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front = ParetoFront::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        front.offer(i, x, y);
    }
    front.indices()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_algos::Algorithm;

    fn geom() -> ImageGeometry {
        ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        }
    }

    fn backend() -> MemBackend {
        // Blocks hold two rows, so DPLC is available.
        MemBackend::Asic {
            block_bits: 2 * 32 * 16,
        }
    }

    #[test]
    fn pareto_front_logic() {
        let pts = [(1.0, 5.0), (2.0, 3.0), (3.0, 1.0), (3.0, 3.0), (2.5, 2.9)];
        let front = pareto_front(&pts);
        // (3.0, 3.0) is dominated by (2.0, 3.0); the rest trade off.
        assert_eq!(front, vec![0, 1, 2, 4], "dominated points excluded");
    }

    #[test]
    fn pareto_handles_duplicates() {
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        // Identical points do not dominate each other (no strict better).
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn pareto_rejects_non_finite() {
        // A NaN compares false against everything: the quadratic
        // definition would put it on the frontier. It must not be.
        let pts = [
            (1.0, 5.0),
            (f64::NAN, 2.0),
            (2.0, f64::NAN),
            (f64::INFINITY, 0.5),
            (f64::NAN, f64::NAN),
            (2.0, 3.0),
        ];
        assert_eq!(pareto_front(&pts), vec![0, 5]);
        let only_bad = [(f64::NAN, 1.0)];
        assert!(pareto_front(&only_bad).is_empty());
    }

    #[test]
    fn pareto_streaming_matches_bruteforce() {
        // Deterministic pseudo-random point clouds, including ties.
        let mut rng = StdRng::seed_from_u64(0x1234_5678_9abc_def0);
        for round in 0..50 {
            let n = 1 + (round % 17);
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| ((rng.next_u64() % 8) as f64, (rng.next_u64() % 8) as f64))
                .collect();
            let brute: Vec<usize> = (0..pts.len())
                .filter(|&i| {
                    !pts.iter().enumerate().any(|(j, q)| {
                        j != i
                            && q.0 <= pts[i].0
                            && q.1 <= pts[i].1
                            && (q.0 < pts[i].0 || q.1 < pts[i].1)
                    })
                })
                .collect();
            assert_eq!(pareto_front(&pts), brute, "points: {pts:?}");
        }
    }

    #[test]
    fn pareto_front_by_pins_default_behavior() {
        // The generalized objective form must reproduce the hard-wired
        // (area, power) frontier exactly.
        let dag = Algorithm::XcorrM.build();
        let res = sweep(&dag, &geom(), backend()).unwrap();
        assert_eq!(
            res.pareto_front(),
            res.pareto_front_by(|p| (p.area_mm2, p.power_mw))
        );
        assert_eq!(
            res.pareto_front(),
            pareto_front(
                &res.points
                    .iter()
                    .map(|p| (p.area_mm2, p.power_mw))
                    .collect::<Vec<_>>()
            ),
            "and the free function agrees"
        );
        // A different objective pair is a different frontier machine:
        // single-axis degenerate case keeps only the minima.
        let front = res.pareto_front_by(|p| (p.sram_kb, p.sram_kb));
        let min = res
            .points
            .iter()
            .map(|p| p.sram_kb)
            .fold(f64::INFINITY, f64::min);
        assert!(front.iter().all(|&i| res.points[i].sram_kb == min));
    }

    #[test]
    fn sweep_measures_every_point_by_default() {
        let dag = Algorithm::XcorrM.build();
        let res = sweep(&dag, &geom(), backend()).unwrap();
        for (i, p) in res.points.iter().enumerate() {
            let m = p.measured.expect("default sweep measures every point");
            assert!(m.energy_pj_per_frame > 0.0, "point {i}");
            assert!(m.power_mw > 0.0, "point {i}");
            assert!(
                m.gated_power_mw < m.power_mw,
                "gating saves measured power on point {i}"
            );
        }
        // The measured frontier is available straight off the sweep.
        let front = res.pareto_front_by(|p| (p.area_mm2, p.measured.unwrap().energy_pj_per_frame));
        assert!(!front.is_empty());
        // The stimulus is deterministic: a second sweep measures
        // identically, bit for bit.
        let again = sweep(&dag, &geom(), backend()).unwrap();
        for (a, b) in res.points.iter().zip(&again.points) {
            let (ma, mb) = (a.measured.unwrap(), b.measured.unwrap());
            assert_eq!(
                ma.energy_pj_per_frame.to_bits(),
                mb.energy_pj_per_frame.to_bits()
            );
            assert_eq!(ma.gated_power_mw.to_bits(), mb.gated_power_mw.to_bits());
            assert_eq!(ma.gated_off_cycles, mb.gated_off_cycles);
        }
    }

    #[test]
    fn measure_point_populates_energy_on_demand() {
        let dag = Algorithm::XcorrM.build();
        let session = Session::new(&dag, geom());
        let mut res = explore(
            &dag,
            &geom(),
            backend(),
            ExploreOptions {
                measure: MeasureMode::Off,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(
            res.points.iter().all(|p| p.measured.is_none()),
            "MeasureMode::Off defers measurement"
        );
        let input = Image::from_fn(geom().width, geom().height, |x, y| {
            ((x * 3 + y * 7) % 97) as i64
        });
        let inputs = [input];
        let n = res.points.len();
        for i in 0..n {
            let m = res.measure_point(&session, i, &inputs).unwrap();
            assert!(m.energy_pj_per_frame > 0.0);
            assert!(m.power_mw > 0.0);
            assert!(
                m.gated_power_mw < m.power_mw,
                "gating saves measured power on point {i}"
            );
            assert!(m.gated_off_cycles > 0);
            assert!(m.gating_saving_pct() > 0.0);
        }
        // Memoized: a second call returns the same value without work.
        let (hits_before, _) = session.cache().stats();
        let again = res.measure_point(&session, 0, &inputs).unwrap();
        assert_eq!(
            again.energy_pj_per_frame,
            res.points[0].measured.unwrap().energy_pj_per_frame
        );
        assert_eq!(session.cache().stats().0, hits_before, "no extra lookups");
        // The measured axis supports its own frontier through the
        // generalized pareto machinery.
        let front = res.pareto_front_by(|p| {
            (
                p.area_mm2,
                p.measured.map_or(f64::NAN, |m| m.energy_pj_per_frame),
            )
        });
        assert!(!front.is_empty());
        for &i in &front {
            for (j, p) in res.points.iter().enumerate() {
                if j == i {
                    continue;
                }
                let (ei, ej) = (
                    res.points[i].measured.unwrap().energy_pj_per_frame,
                    p.measured.unwrap().energy_pj_per_frame,
                );
                assert!(
                    !(p.area_mm2 <= res.points[i].area_mm2 && ej < ei),
                    "frontier point {i} dominated by {j} on (area, energy)"
                );
            }
        }
    }

    #[test]
    fn sweep_explores_full_space() {
        let dag = Algorithm::XcorrM.build(); // 2 buffered stages -> 4 points
        let res = sweep(&dag, &geom(), backend()).unwrap();
        assert_eq!(res.points.len(), 4);
        assert_eq!(res.points[0].dplc_count(), 0, "all-DP first");
        assert_eq!(
            res.points.last().unwrap().dplc_count(),
            res.buffered_stages.len(),
            "all-DPLC last"
        );
        let front = res.pareto_front();
        assert!(!front.is_empty());
        // All-DP must appear on the frontier or be dominated by a cheaper
        // design; either way every frontier point has minimal power among
        // designs of no-larger area.
        for &i in &front {
            for (j, p) in res.points.iter().enumerate() {
                if j == i {
                    continue;
                }
                assert!(
                    !(p.area_mm2 <= res.points[i].area_mm2 && p.power_mw < res.points[i].power_mw),
                    "frontier point {i} dominated by {j}"
                );
            }
        }
    }

    #[test]
    fn resources_expose_the_netlist_inventory() {
        let dag = Algorithm::CannyS.build();
        let res = sweep_small(&dag);
        let all_dp = &res.points[0];
        let all_dplc = res.points.last().unwrap();
        // Coalescing packs rows into fewer macros; the datapath (kernel
        // operators, window registers) is choice-invariant.
        assert!(
            all_dplc.resources.sram_blocks < all_dp.resources.sram_blocks,
            "DPLC {} blocks vs DP {} blocks",
            all_dplc.resources.sram_blocks,
            all_dp.resources.sram_blocks
        );
        assert_eq!(all_dp.resources.multipliers, all_dplc.resources.multipliers);
        assert_eq!(all_dp.resources.adders, all_dplc.resources.adders);
        assert!(all_dp.resources.flipflop_bits > 0);
        assert!(all_dp.resources.sram_kb() > 0.0);
        // The structural axis supports its own Pareto sweep.
        let front = pareto_front(
            &res.points
                .iter()
                .map(|p| (p.resources.sram_bits as f64, p.power_mw))
                .collect::<Vec<_>>(),
        );
        assert!(!front.is_empty());
    }

    #[test]
    fn dplc_reduces_area_on_chains() {
        // For a deep single-consumer chain, all-DPLC should shrink SRAM
        // (fewer blocks) versus all-DP.
        let dag = Algorithm::CannyS.build();
        let res = sweep_small(&dag);
        let all_dp = &res.points[0];
        let all_dplc = res.points.last().unwrap();
        assert!(
            all_dplc.sram_kb < all_dp.sram_kb,
            "DPLC {} KB vs DP {} KB",
            all_dplc.sram_kb,
            all_dp.sram_kb
        );
    }

    #[test]
    fn random_strategy_is_deterministic_and_capped() {
        let dag = Algorithm::CannyS.build(); // 8 buffered stages
        let opts = ExploreOptions {
            strategy: ExploreStrategy::Random {
                samples: 20,
                seed: 7,
            },
            threads: 1,
            measure: MeasureMode::Off,
        };
        let a = explore(&dag, &geom(), backend(), opts).unwrap();
        let b = explore(&dag, &geom(), backend(), opts).unwrap();
        assert_eq!(a.points.len(), 20);
        assert_eq!(a.points[0].dplc_count(), 0, "all-DP anchor first");
        assert_eq!(
            a.points[1].dplc_count(),
            a.buffered_stages.len(),
            "all-DPLC anchor second"
        );
        let masks = |r: &DseResult| -> Vec<Vec<StageChoice>> {
            r.points.iter().map(|p| p.choices.clone()).collect()
        };
        assert_eq!(masks(&a), masks(&b), "seeded sampling is deterministic");
        // Distinct masks only.
        let set: HashSet<Vec<StageChoice>> = masks(&a).into_iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn random_covers_small_spaces_exhaustively() {
        let dag = Algorithm::XcorrM.build(); // 2 buffered stages -> 4 points
        let opts = ExploreOptions {
            strategy: ExploreStrategy::Random {
                samples: 100,
                seed: 3,
            },
            threads: 1,
            measure: MeasureMode::Off,
        };
        let res = explore(&dag, &geom(), backend(), opts).unwrap();
        assert_eq!(res.points.len(), 4, "budget beyond the space: enumerate");
    }

    #[test]
    fn greedy_strategy_matches_judicious_lc() {
        let dag = Algorithm::UnsharpM.build();
        let (cfg, out) = judicious_lc(&dag, &geom(), backend()).unwrap();
        let res = explore(
            &dag,
            &geom(),
            backend(),
            ExploreOptions {
                strategy: ExploreStrategy::Greedy,
                threads: 1,
                measure: MeasureMode::Off,
            },
        )
        .unwrap();
        // The walk starts at all-DPLC.
        assert_eq!(
            res.points[0].dplc_count(),
            res.buffered_stages.len(),
            "greedy starts all-DPLC"
        );
        // The chosen design's SRAM matches the best visited point.
        let best_visited = res
            .points
            .iter()
            .map(|p| p.sram_kb)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(out.plan.design.sram_kb(), best_visited);
        assert_eq!(cfg.len(), res.buffered_stages.len());
        assert!(out.verilog.contains("module"), "winner gets RTL");
    }

    // Canny-s has 8 buffered stages -> 256 points; keep the test fast by
    // sweeping only the extremes.
    fn sweep_small(dag: &imagen_ir::Dag) -> DseResult {
        let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
        let session = Session::new(dag, geom());
        let mut points = Vec::new();
        for &all_lc in &[false, true] {
            let choices = vec![
                if all_lc {
                    StageChoice::Dplc
                } else {
                    StageChoice::Dp
                };
                buffered.len()
            ];
            let spec = spec_for(backend(), &buffered, &choices);
            let plan = session.price(&spec, None).unwrap();
            points.push(point_from(&plan, choices, None));
        }
        DseResult {
            buffered_stages: buffered,
            points,
            stats: ExploreStats::default(),
        }
    }
}
