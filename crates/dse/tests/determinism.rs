//! Property tests for the parallel, memoized DSE engine:
//!
//! * fanning a sweep out over worker threads returns *byte-identical*
//!   points (order and values) to the sequential walk;
//! * recompiling a cached point equals the cold compile.

use imagen_core::Session;
use imagen_dse::{explore, DseResult, ExploreOptions, ExploreStrategy};
use imagen_mem::{ImageGeometry, MemBackend, MemorySpec, StageMemConfig};
use proptest::prelude::*;

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 32,
        height: 24,
        pixel_bits: 16,
    }
}

fn backend() -> MemBackend {
    MemBackend::Asic {
        block_bits: 2 * 32 * 16,
    }
}

/// The small-space algorithms (≤ 16 design points) keep the sweeps cheap.
fn algorithm(idx: usize) -> imagen_algos::Algorithm {
    use imagen_algos::Algorithm;
    [Algorithm::XcorrM, Algorithm::UnsharpM, Algorithm::DenoiseM][idx % 3]
}

/// Byte-exact comparison of two results: same stages, same point order,
/// same choices, and bit-identical floating-point values.
fn assert_byte_identical(a: &DseResult, b: &DseResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.buffered_stages, &b.buffered_stages);
    prop_assert_eq!(a.points.len(), b.points.len());
    for (i, (pa, pb)) in a.points.iter().zip(&b.points).enumerate() {
        prop_assert_eq!(&pa.choices, &pb.choices, "choices differ at point {}", i);
        prop_assert_eq!(
            pa.area_mm2.to_bits(),
            pb.area_mm2.to_bits(),
            "area differs at point {}",
            i
        );
        prop_assert_eq!(
            pa.power_mw.to_bits(),
            pb.power_mw.to_bits(),
            "power differs at point {}",
            i
        );
        prop_assert_eq!(
            pa.sram_kb.to_bits(),
            pb.sram_kb.to_bits(),
            "sram differs at point {}",
            i
        );
        // Measured energy is default-on and part of the determinism
        // contract: the interpreter stimulus is seeded, so the measured
        // values must be bit-identical too.
        let (ma, mb) = (pa.measured.unwrap(), pb.measured.unwrap());
        prop_assert_eq!(
            ma.energy_pj_per_frame.to_bits(),
            mb.energy_pj_per_frame.to_bits(),
            "measured energy differs at point {}",
            i
        );
        prop_assert_eq!(
            ma.gated_power_mw.to_bits(),
            mb.gated_power_mw.to_bits(),
            "gated power differs at point {}",
            i
        );
        prop_assert_eq!(
            ma.gated_off_cycles,
            mb.gated_off_cycles,
            "gated-off cycles differ at point {}",
            i
        );
        prop_assert_eq!(&pa.design, &pb.design, "design differs at point {}", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Parallel sweep output is byte-identical to the sequential path,
    /// for any worker count.
    #[test]
    fn parallel_sweep_matches_sequential(alg in 0usize..3, threads in 2usize..6) {
        let dag = algorithm(alg).build();
        let sequential = explore(&dag, &geom(), backend(), ExploreOptions {
            strategy: ExploreStrategy::Exhaustive,
            threads: 1,
            ..ExploreOptions::default()
        }).unwrap();
        let parallel = explore(&dag, &geom(), backend(), ExploreOptions {
            strategy: ExploreStrategy::Exhaustive,
            threads,
            ..ExploreOptions::default()
        }).unwrap();
        assert_byte_identical(&sequential, &parallel)?;
        prop_assert_eq!(sequential.pareto_front(), parallel.pareto_front());
    }

    /// A cache-hit recompile equals a cold compile, for an arbitrary
    /// DP/DPLC configuration.
    #[test]
    fn cache_hit_equals_cold_compile(alg in 0usize..3, mask in 0u64..16) {
        let dag = algorithm(alg).build();
        let buffered: Vec<usize> = dag.buffered_stages().iter().map(|s| s.index()).collect();
        let mut spec = MemorySpec::new(backend(), 2);
        for (bit, &stage) in buffered.iter().enumerate() {
            spec.set_stage(stage, StageMemConfig {
                ports: 2,
                coalesce: mask & (1 << bit) != 0,
            });
        }

        let session = Session::new(&dag, geom());
        let cold = session.compile(&spec, None).unwrap();
        let warm = session.compile(&spec, None).unwrap();
        prop_assert_eq!(&cold.plan.schedule, &warm.plan.schedule);
        prop_assert_eq!(&cold.plan.design, &warm.plan.design);
        prop_assert_eq!(&cold.verilog, &warm.verilog);
        let (hits, _) = session.cache().stats();
        prop_assert!(hits >= 1, "second compile must hit the cache");

        // And both equal a from-scratch one-shot compile.
        let fresh = imagen_core::Compiler::new(geom(), spec)
            .compile_dag(&dag)
            .unwrap();
        prop_assert_eq!(&cold.plan.schedule, &fresh.plan.schedule);
        prop_assert_eq!(&cold.plan.design, &fresh.plan.design);
        prop_assert_eq!(&cold.verilog, &fresh.verilog);
    }
}
