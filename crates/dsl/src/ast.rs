//! Abstract syntax tree of the ImaGen DSL.

use crate::token::Pos;

/// A whole program: a sequence of stage definitions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Stage definitions in source order.
    pub items: Vec<Item>,
}

/// One top-level item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// `input NAME;` — declares a pipeline input.
    Input {
        /// Stage name.
        name: String,
        /// Source position of the name.
        pos: Pos,
    },
    /// `[output] NAME = im(x, y) EXPR end` — a compute stage.
    Stage {
        /// Stage name.
        name: String,
        /// Whether the stage is marked `output`.
        output: bool,
        /// Name bound to the horizontal coordinate (usually `x`).
        x_var: String,
        /// Name bound to the vertical coordinate (usually `y`).
        y_var: String,
        /// The stage body.
        body: AstExpr,
        /// Source position of the name.
        pos: Pos,
    },
}

/// Expression AST (taps still refer to producers by name).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AstExpr {
    /// Integer literal.
    Number(i64),
    /// `NAME(x+dx, y+dy)` — stencil tap into a named producer.
    Tap {
        /// Producer stage name.
        stage: String,
        /// Horizontal offset.
        dx: i32,
        /// Vertical offset.
        dy: i32,
        /// Source position.
        pos: Pos,
    },
    /// Unary negation.
    Neg(Box<AstExpr>),
    /// Built-in call: `abs(e)`, `min(a,b)`, `max(a,b)`,
    /// `clamp(v,lo,hi)`, `select(c,a,b)`.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// Source position.
        pos: Pos,
    },
    /// Binary operator by mnemonic: `+ - * / << >> < <= > >= == !=`.
    Bin {
        /// Operator mnemonic.
        op: &'static str,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
}

impl AstExpr {
    /// Visits tap nodes in evaluation order.
    pub fn for_each_tap<'a>(&'a self, f: &mut impl FnMut(&'a str, i32, i32)) {
        match self {
            AstExpr::Number(_) => {}
            AstExpr::Tap { stage, dx, dy, .. } => f(stage, *dx, *dy),
            AstExpr::Neg(e) => e.for_each_tap(f),
            AstExpr::Call { args, .. } => {
                for a in args {
                    a.for_each_tap(f);
                }
            }
            AstExpr::Bin { lhs, rhs, .. } => {
                lhs.for_each_tap(f);
                rhs.for_each_tap(f);
            }
        }
    }
}
