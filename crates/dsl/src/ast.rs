//! Abstract syntax tree of the ImaGen DSL.

use crate::token::Pos;

/// A whole program: a sequence of stage definitions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Stage definitions in source order.
    pub items: Vec<Item>,
}

/// Rate modifier written on a stage definition.
///
/// `down = downsample(2, 2) im(x, y) ... end` halves the stage's
/// iteration domain along each axis relative to its producers;
/// `upsample` doubles it back. Factors are kept as raw `i64` literals
/// here — range validation happens in the parser (span-carrying) and
/// again in `imagen-ir` during lowering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AstRate {
    /// No modifier: the stage runs at its producers' rate.
    Unit,
    /// `downsample(fx, fy)` — one output pixel per `fx`×`fy` producer block.
    Down {
        /// Horizontal factor.
        fx: i64,
        /// Vertical factor.
        fy: i64,
        /// Source position of the modifier keyword.
        pos: Pos,
    },
    /// `upsample(fx, fy)` — `fx`×`fy` output pixels per producer pixel.
    Up {
        /// Horizontal factor.
        fx: i64,
        /// Vertical factor.
        fy: i64,
        /// Source position of the modifier keyword.
        pos: Pos,
    },
}

impl AstRate {
    /// True when no modifier was written.
    pub fn is_unit(&self) -> bool {
        matches!(self, AstRate::Unit)
    }
}

/// One top-level item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// `input NAME;` — declares a pipeline input.
    Input {
        /// Stage name.
        name: String,
        /// Source position of the name.
        pos: Pos,
    },
    /// `[output] NAME = im(x, y) EXPR end` — a compute stage.
    Stage {
        /// Stage name.
        name: String,
        /// Whether the stage is marked `output`.
        output: bool,
        /// Name bound to the horizontal coordinate (usually `x`).
        x_var: String,
        /// Name bound to the vertical coordinate (usually `y`).
        y_var: String,
        /// The stage body.
        body: AstExpr,
        /// Rate modifier (`downsample`/`upsample`), if any.
        rate: AstRate,
        /// Source position of the name.
        pos: Pos,
    },
}

/// Expression AST (taps still refer to producers by name).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AstExpr {
    /// Integer literal.
    Number(i64),
    /// `NAME(x+dx, y+dy)` — stencil tap into a named producer.
    Tap {
        /// Producer stage name.
        stage: String,
        /// Horizontal offset.
        dx: i32,
        /// Vertical offset.
        dy: i32,
        /// Source position.
        pos: Pos,
    },
    /// Unary negation.
    Neg(Box<AstExpr>),
    /// Built-in call: `abs(e)`, `min(a,b)`, `max(a,b)`,
    /// `clamp(v,lo,hi)`, `select(c,a,b)`.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// Source position.
        pos: Pos,
    },
    /// Binary operator by mnemonic: `+ - * / << >> < <= > >= == !=`.
    Bin {
        /// Operator mnemonic.
        op: &'static str,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
}

impl AstExpr {
    /// Constant-folds the expression, returning `Some(v)` when it contains
    /// no taps and every operator is a known built-in. The arithmetic
    /// mirrors `imagen-ir`'s `Expr::eval` semantics exactly (wrapping
    /// `i64` ops, division by zero yielding zero, Verilog shift rules,
    /// `clamp` with `lo > hi` pinning to `lo`), so a folded value is the
    /// value the lowered kernel would compute.
    pub fn const_value(&self) -> Option<i64> {
        match self {
            AstExpr::Number(n) => Some(*n),
            AstExpr::Tap { .. } => None,
            AstExpr::Neg(e) => Some(e.const_value()?.wrapping_neg()),
            AstExpr::Call { func, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.const_value()?);
                }
                match (func.as_str(), vals.as_slice()) {
                    ("abs", [v]) => Some(v.wrapping_abs()),
                    ("min", [a, b]) => Some(*a.min(b)),
                    ("max", [a, b]) => Some(*a.max(b)),
                    ("clamp", [v, lo, hi]) => Some(if lo > hi { *lo } else { *v.clamp(lo, hi) }),
                    ("select", [c, t, e]) => Some(if *c != 0 { *t } else { *e }),
                    _ => None,
                }
            }
            AstExpr::Bin { op, lhs, rhs } => {
                let a = lhs.const_value()?;
                let b = rhs.const_value()?;
                match *op {
                    "+" => Some(a.wrapping_add(b)),
                    "-" => Some(a.wrapping_sub(b)),
                    "*" => Some(a.wrapping_mul(b)),
                    "/" => Some(if b == 0 { 0 } else { a.wrapping_div(b) }),
                    "<<" => Some(if (0..64).contains(&b) {
                        a.wrapping_shl(b as u32)
                    } else {
                        0
                    }),
                    ">>" => {
                        let amt = if (0..64).contains(&b) { b as u32 } else { 63 };
                        Some(a.wrapping_shr(amt))
                    }
                    "<" => Some(i64::from(a < b)),
                    "<=" => Some(i64::from(a <= b)),
                    ">" => Some(i64::from(a > b)),
                    ">=" => Some(i64::from(a >= b)),
                    "==" => Some(i64::from(a == b)),
                    "!=" => Some(i64::from(a != b)),
                    _ => None,
                }
            }
        }
    }

    /// Visits tap nodes in evaluation order.
    pub fn for_each_tap<'a>(&'a self, f: &mut impl FnMut(&'a str, i32, i32)) {
        match self {
            AstExpr::Number(_) => {}
            AstExpr::Tap { stage, dx, dy, .. } => f(stage, *dx, *dy),
            AstExpr::Neg(e) => e.for_each_tap(f),
            AstExpr::Call { args, .. } => {
                for a in args {
                    a.for_each_tap(f);
                }
            }
            AstExpr::Bin { lhs, rhs, .. } => {
                lhs.for_each_tap(f);
                rhs.for_each_tap(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(n: i64) -> AstExpr {
        AstExpr::Number(n)
    }

    fn bin(op: &'static str, a: AstExpr, b: AstExpr) -> AstExpr {
        AstExpr::Bin {
            op,
            lhs: Box::new(a),
            rhs: Box::new(b),
        }
    }

    fn call(func: &str, args: Vec<AstExpr>) -> AstExpr {
        AstExpr::Call {
            func: func.to_string(),
            args,
            pos: Pos { line: 1, col: 1 },
        }
    }

    #[test]
    fn const_value_folds_arithmetic() {
        assert_eq!(
            bin("+", num(2), bin("*", num(3), num(4))).const_value(),
            Some(14)
        );
        assert_eq!(AstExpr::Neg(Box::new(num(5))).const_value(), Some(-5));
        assert_eq!(bin("<", num(1), num(2)).const_value(), Some(1));
        assert_eq!(
            call("clamp", vec![num(300), num(0), num(255)]).const_value(),
            Some(255)
        );
        assert_eq!(
            call("select", vec![num(0), num(7), num(9)]).const_value(),
            Some(9)
        );
    }

    #[test]
    fn const_value_matches_eval_edge_semantics() {
        // Division by zero, out-of-range shifts, and inverted clamp bounds
        // follow the kernel evaluator, not plain Rust arithmetic.
        assert_eq!(bin("/", num(7), num(0)).const_value(), Some(0));
        assert_eq!(bin("<<", num(1024), num(64)).const_value(), Some(0));
        assert_eq!(bin(">>", num(-1024), num(-1)).const_value(), Some(-1));
        assert_eq!(
            call("clamp", vec![num(5), num(9), num(2)]).const_value(),
            Some(9)
        );
    }

    #[test]
    fn const_value_stops_at_taps() {
        let tap = AstExpr::Tap {
            stage: "a".to_string(),
            dx: 0,
            dy: 0,
            pos: Pos { line: 1, col: 1 },
        };
        assert_eq!(tap.const_value(), None);
        assert_eq!(bin("+", num(1), tap).const_value(), None);
    }
}
