//! # imagen-dsl
//!
//! The Darkroom-like domain-specific language front end of the [ImaGen]
//! accelerator generator (paper Sec. 4).
//!
//! Programs are sequences of stage definitions; each stage is a stencil
//! expression over windows of earlier stages:
//!
//! ```text
//! input K0;
//! // K1 reads a 3x3 window from K0
//! K1 = im(x,y) K0(x-1,y-1) + K0(x,y-1) + ... + K0(x+1,y+1) end
//! output K2 = im(x,y) K0(x,y) + K1(x-1,y-1) + ... + K1(x+1,y+1) end
//! ```
//!
//! [`compile`] takes source text to a validated [`imagen_ir::Dag`];
//! [`to_dsl`] prints a DAG back as source (round-trip tested). Built-in
//! functions: `abs`, `min`, `max`, `clamp`, `select`; operators:
//! `+ - * / << >>` and comparisons producing 0/1.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352
//!
//! # Examples
//!
//! ```
//! let dag = imagen_dsl::compile("blur", "
//!     input raw;
//!     output blur = im(x,y)
//!         (raw(x-1,y) + raw(x,y) + raw(x+1,y)) / 3
//!     end
//! ")?;
//! assert_eq!(dag.num_stages(), 2);
//! # Ok::<(), imagen_dsl::DslError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod lower;
mod parser;
mod print;
mod token;

pub use ast::{AstExpr, AstRate, Item, Program};
pub use lower::{lower, LowerError};
pub use parser::{parse_program, ParseError, MAX_EXPR_CHAIN, MAX_EXPR_DEPTH};
pub use print::{expr_to_dsl, to_dsl};
pub use token::{lex, LexError, LexErrorKind, Pos, Spanned, Token};

use std::fmt;

/// Any front-end failure: lexing, parsing, or lowering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DslError {
    /// Syntax error.
    Parse(ParseError),
    /// Name-resolution or structural error.
    Lower(LowerError),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Parse(e) => write!(f, "{e}"),
            DslError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DslError {}

impl DslError {
    /// Source position of the error, when one is known. Every syntax
    /// error carries one; structural lowering errors (dead stages, no
    /// output, ...) describe the pipeline rather than a span.
    ///
    /// Front ends (the `imagen` CLI, the batch server) use this to point
    /// at the offending source line.
    pub fn pos(&self) -> Option<Pos> {
        match self {
            DslError::Parse(e) => Some(e.pos()),
            DslError::Lower(e) => e.pos(),
        }
    }
}

impl From<ParseError> for DslError {
    fn from(e: ParseError) -> Self {
        DslError::Parse(e)
    }
}

impl From<LowerError> for DslError {
    fn from(e: LowerError) -> Self {
        DslError::Lower(e)
    }
}

/// Compiles DSL source text into a validated pipeline DAG.
///
/// # Errors
///
/// [`DslError`] describing the first syntax or semantic problem, with
/// source positions.
pub fn compile(name: &str, src: &str) -> Result<imagen_ir::Dag, DslError> {
    let program = {
        let _s = imagen_obs::span("frontend.parse");
        parse_program(src)?
    };
    let _s = imagen_obs::span("frontend.lower");
    Ok(lower(name, &program)?)
}
