//! Lowering from the DSL AST to the `imagen-ir` DAG.

use crate::ast::{AstExpr, AstRate, Item, Program};
use crate::token::Pos;
use imagen_ir::{BinOp, CmpOp, Dag, Expr, IrError, Rate, StageId};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while lowering a parsed program to IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// A tap referenced a stage that has not been defined (yet).
    UnknownStage {
        /// Name referenced.
        name: String,
        /// Where.
        pos: Pos,
    },
    /// A stage name was defined twice.
    Redefinition {
        /// The repeated name.
        name: String,
        /// Where.
        pos: Pos,
    },
    /// Structural IR error (propagated from DAG construction).
    Ir(IrError),
}

impl LowerError {
    /// Source position of the error, when one is known (structural IR
    /// errors carry stage names instead of spans).
    pub fn pos(&self) -> Option<Pos> {
        match self {
            LowerError::UnknownStage { pos, .. } | LowerError::Redefinition { pos, .. } => {
                Some(*pos)
            }
            LowerError::Ir(_) => None,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownStage { name, pos } => {
                write!(f, "stage `{name}` is not defined at {pos}")
            }
            LowerError::Redefinition { name, pos } => {
                write!(f, "stage `{name}` is defined twice at {pos}")
            }
            LowerError::Ir(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<IrError> for LowerError {
    fn from(e: IrError) -> Self {
        LowerError::Ir(e)
    }
}

/// Lowers a parsed [`Program`] into a validated [`Dag`].
///
/// Producer slots are assigned in order of first tap appearance, matching
/// the textual order of the program.
///
/// # Errors
///
/// [`LowerError`] on name-resolution failures or structural violations.
pub fn lower(name: &str, program: &Program) -> Result<Dag, LowerError> {
    let mut dag = Dag::new(name);
    let mut by_name: HashMap<String, StageId> = HashMap::new();

    for item in &program.items {
        match item {
            Item::Input { name, pos } => {
                if by_name.contains_key(name) {
                    return Err(LowerError::Redefinition {
                        name: name.clone(),
                        pos: *pos,
                    });
                }
                let id = dag.add_input(name.clone());
                by_name.insert(name.clone(), id);
            }
            Item::Stage {
                name,
                output,
                body,
                rate,
                pos,
                ..
            } => {
                if by_name.contains_key(name) {
                    return Err(LowerError::Redefinition {
                        name: name.clone(),
                        pos: *pos,
                    });
                }
                // Assign slots by first appearance.
                let mut producers: Vec<StageId> = Vec::new();
                let mut slot_of: HashMap<&str, usize> = HashMap::new();
                let mut missing: Option<LowerError> = None;
                body.for_each_tap(&mut |stage, _, _| {
                    if missing.is_some() || slot_of.contains_key(stage) {
                        return;
                    }
                    match by_name.get(stage) {
                        Some(id) => {
                            slot_of.insert(stage, producers.len());
                            producers.push(*id);
                        }
                        None => {
                            missing = Some(LowerError::UnknownStage {
                                name: stage.to_string(),
                                pos: *pos,
                            });
                        }
                    }
                });
                if let Some(e) = missing {
                    return Err(e);
                }
                let kernel = lower_expr(body, &slot_of);
                let id = dag.add_stage_rated(name.clone(), &producers, kernel, lower_rate(rate))?;
                if *output {
                    dag.mark_output(id);
                }
                by_name.insert(name.clone(), id);
            }
        }
    }
    dag.validate()?;
    Ok(dag)
}

/// Maps the surface rate modifier to the IR [`Rate`]. The parser caps
/// factors at `MAX_RATE_FACTOR`, which fits `u32`; a programmatically
/// built AST with larger factors saturates to `u32::MAX`, which the IR
/// constructor then rejects as out of range (error, never truncation).
fn lower_rate(rate: &AstRate) -> Rate {
    let f = |v: i64| u32::try_from(v).unwrap_or(u32::MAX);
    match *rate {
        AstRate::Unit => Rate::Unit,
        AstRate::Down { fx, fy, .. } => Rate::Down { fx: f(fx), fy: f(fy) },
        AstRate::Up { fx, fy, .. } => Rate::Up { fx: f(fx), fy: f(fy) },
    }
}

fn lower_expr(e: &AstExpr, slot_of: &HashMap<&str, usize>) -> Expr {
    match e {
        AstExpr::Number(n) => Expr::Const(*n),
        AstExpr::Tap { stage, dx, dy, .. } => Expr::tap(slot_of[stage.as_str()], *dx, *dy),
        // A negated literal is a constant, not a negation unit: folding
        // here makes `-3` and a programmatic `Expr::Const(-3)` identical
        // IR (and `to_dsl` → `compile` round-trips bit-exact). The lexer
        // caps literals at i64::MAX, so the negation cannot overflow.
        AstExpr::Neg(inner) if matches!(**inner, AstExpr::Number(_)) => {
            let AstExpr::Number(n) = **inner else {
                unreachable!()
            };
            Expr::Const(-n)
        }
        AstExpr::Neg(inner) => Expr::Neg(Box::new(lower_expr(inner, slot_of))),
        AstExpr::Call { func, args, .. } => {
            let mut a: Vec<Expr> = args.iter().map(|x| lower_expr(x, slot_of)).collect();
            match func.as_str() {
                "abs" => Expr::Abs(Box::new(a.remove(0))),
                "min" => {
                    let y = a.pop().expect("arity checked");
                    let x = a.pop().expect("arity checked");
                    Expr::bin(BinOp::Min, x, y)
                }
                "max" => {
                    let y = a.pop().expect("arity checked");
                    let x = a.pop().expect("arity checked");
                    Expr::bin(BinOp::Max, x, y)
                }
                "clamp" => {
                    let hi = a.pop().expect("arity checked");
                    let lo = a.pop().expect("arity checked");
                    let v = a.pop().expect("arity checked");
                    Expr::Clamp {
                        value: Box::new(v),
                        lo: Box::new(lo),
                        hi: Box::new(hi),
                    }
                }
                "select" => {
                    let otherwise = a.pop().expect("arity checked");
                    let then = a.pop().expect("arity checked");
                    let cond = a.pop().expect("arity checked");
                    Expr::select(cond, then, otherwise)
                }
                other => unreachable!("parser admits only known functions, got {other}"),
            }
        }
        AstExpr::Bin { op, lhs, rhs } => {
            let l = lower_expr(lhs, slot_of);
            let r = lower_expr(rhs, slot_of);
            match *op {
                "+" => Expr::bin(BinOp::Add, l, r),
                "-" => Expr::bin(BinOp::Sub, l, r),
                "*" => Expr::bin(BinOp::Mul, l, r),
                "/" => Expr::bin(BinOp::Div, l, r),
                "<<" => Expr::bin(BinOp::Shl, l, r),
                ">>" => Expr::bin(BinOp::Shr, l, r),
                "<" => Expr::cmp(CmpOp::Lt, l, r),
                "<=" => Expr::cmp(CmpOp::Le, l, r),
                ">" => Expr::cmp(CmpOp::Gt, l, r),
                ">=" => Expr::cmp(CmpOp::Ge, l, r),
                "==" => Expr::cmp(CmpOp::Eq, l, r),
                "!=" => Expr::cmp(CmpOp::Ne, l, r),
                other => unreachable!("parser admits only known operators, got {other}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> Result<Dag, LowerError> {
        let p = parse_program(src).expect("parse");
        lower("test", &p)
    }

    #[test]
    fn paper_listing_compiles() {
        let dag = compile(
            "input K0;
             K1 = im(x,y) K0(x-1,y-1)+K0(x,y)+K0(x+1,y+1) end
             output K2 = im(x,y) K0(x,y)+K0(x+1,y+1)+K1(x-1,y-1)+K1(x+1,y+1) end",
        )
        .unwrap();
        assert_eq!(dag.num_stages(), 3);
        assert_eq!(dag.multi_consumer_stages().len(), 1);
        // K2 reads K0 (slot 0) over 2x2 and K1 (slot 1) over 3x3.
        let k2 = dag.stage_ids().nth(2).unwrap();
        let heights: Vec<u32> = dag
            .producer_edges(k2)
            .map(|(_, e)| e.window().height)
            .collect();
        assert_eq!(heights, vec![2, 3]);
    }

    #[test]
    fn unknown_stage_reported() {
        let err = compile("input A; output B = im(x,y) C(x,y) end").unwrap_err();
        assert!(matches!(err, LowerError::UnknownStage { name, .. } if name == "C"));
    }

    #[test]
    fn forward_reference_rejected() {
        let err = compile(
            "input A;
             B = im(x,y) C(x,y) end
             output C = im(x,y) A(x,y) + B(x,y) end",
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::UnknownStage { .. }));
    }

    #[test]
    fn redefinition_rejected() {
        let err = compile(
            "input A;
             A = im(x,y) A(x,y) end",
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::Redefinition { .. }));
    }

    #[test]
    fn dead_stage_rejected() {
        let err = compile(
            "input A;
             B = im(x,y) A(x,y) end
             output C = im(x,y) A(x,y) end",
        )
        .unwrap_err();
        assert!(matches!(err, LowerError::Ir(IrError::DeadStage { .. })));
    }

    #[test]
    fn builtins_lower() {
        let dag = compile(
            "input A;
             output B = im(x,y) clamp(select(A(x,y) > 8, abs(A(x-1,y)), min(A(x,y), 3)), 0, 255) end",
        )
        .unwrap();
        let b = dag.stage_ids().nth(1).unwrap();
        let kernel = dag.stage(b).kernel().unwrap();
        let census = kernel.op_census();
        assert!(census.cmps >= 1);
        assert!(census.muxes >= 1);
    }

    #[test]
    fn slots_in_first_appearance_order() {
        let dag = compile(
            "input A;
             B = im(x,y) A(x,y) end
             output C = im(x,y) B(x,y) + A(x,y) end",
        )
        .unwrap();
        let c = dag.stage_ids().nth(2).unwrap();
        // Slot 0 must be B (first tap), slot 1 A.
        let producers = dag.stage(c).producers();
        assert_eq!(dag.stage(producers[0]).name(), "B");
        assert_eq!(dag.stage(producers[1]).name(), "A");
    }
}
