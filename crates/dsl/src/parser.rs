//! Recursive-descent parser for the ImaGen DSL.
//!
//! Grammar (precedence low→high):
//!
//! ```text
//! program := item*
//! item    := "input" IDENT ";"
//!          | "output"? IDENT "=" "im" "(" IDENT "," IDENT ")" expr "end" ";"?
//! expr    := cmp
//! cmp     := add (("<"|"<="|">"|">="|"=="|"!=") add)?
//! add     := mul (("+"|"-") mul)*
//! mul     := unary (("*"|"/"|"<<"|">>") unary)*
//! unary   := "-" unary | primary
//! primary := NUMBER | "(" expr ")" | IDENT "(" args ")" | IDENT
//! args    := tap-coords | expr ("," expr)*
//! ```
//!
//! An `IDENT(...)` is a *tap* when its first argument starts with the
//! stage's coordinate variables (e.g. `K0(x-1, y+1)`), otherwise a
//! built-in call (`abs`, `min`, `max`, `clamp`, `select`).

use crate::ast::{AstExpr, Item, Program};
use crate::token::{lex, LexError, Pos, Spanned, Token};
use std::fmt;

/// Parse error with position information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Got an unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// Where.
        pos: Pos,
    },
    /// Tap coordinate did not use the stage's bound variables.
    BadCoordinate {
        /// The coordinate variable seen.
        var: String,
        /// The variable that was expected.
        expected: String,
        /// Where.
        pos: Pos,
    },
    /// Unknown built-in function.
    UnknownFunction {
        /// Name used.
        func: String,
        /// Where.
        pos: Pos,
    },
    /// Wrong argument count for a built-in.
    BadArity {
        /// Function name.
        func: String,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
        /// Where.
        pos: Pos,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                expected,
                pos,
            } => write!(f, "expected {expected}, found {found} at {pos}"),
            ParseError::BadCoordinate { var, expected, pos } => write!(
                f,
                "tap coordinate uses `{var}` but the stage binds `{expected}` at {pos}"
            ),
            ParseError::UnknownFunction { func, pos } => {
                write!(f, "unknown function `{func}` at {pos}")
            }
            ParseError::BadArity {
                func,
                expected,
                found,
                pos,
            } => write!(
                f,
                "`{func}` takes {expected} argument(s), found {found} at {pos}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses DSL source text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] with source positions on malformed input.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        at: 0,
        x_var: String::new(),
        y_var: String::new(),
    };
    p.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
    x_var: String,
    y_var: String,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().to_string(),
            expected: expected.to_string(),
            pos: self.pos(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while *self.peek() != Token::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        match self.peek() {
            Token::Input => {
                self.bump();
                let (name, pos) = self.ident("input stage name")?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(Item::Input { name, pos })
            }
            Token::Output | Token::Ident(_) => {
                let output = if *self.peek() == Token::Output {
                    self.bump();
                    true
                } else {
                    false
                };
                let (name, pos) = self.ident("stage name")?;
                self.expect(&Token::Assign, "`=`")?;
                self.expect(&Token::Im, "`im`")?;
                self.expect(&Token::LParen, "`(`")?;
                let (xv, _) = self.ident("coordinate variable")?;
                self.expect(&Token::Comma, "`,`")?;
                let (yv, _) = self.ident("coordinate variable")?;
                self.expect(&Token::RParen, "`)`")?;
                self.x_var = xv.clone();
                self.y_var = yv.clone();
                let body = self.expr()?;
                self.expect(&Token::End, "`end`")?;
                if *self.peek() == Token::Semi {
                    self.bump();
                }
                Ok(Item::Stage {
                    name,
                    output,
                    x_var: xv,
                    y_var: yv,
                    body,
                    pos,
                })
            }
            _ => Err(self.unexpected("`input`, `output`, or a stage definition")),
        }
    }

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        self.cmp()
    }

    fn cmp(&mut self) -> Result<AstExpr, ParseError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Token::Lt => "<",
            Token::Le => "<=",
            Token::Gt => ">",
            Token::Ge => ">=",
            Token::EqEq => "==",
            Token::Ne => "!=",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        Ok(AstExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => "+",
                Token::Minus => "-",
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = AstExpr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => "*",
                Token::Slash => "/",
                Token::Shl => "<<",
                Token::Shr => ">>",
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = AstExpr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<AstExpr, ParseError> {
        if *self.peek() == Token::Minus {
            self.bump();
            let inner = self.unary()?;
            return Ok(AstExpr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(AstExpr::Number(n))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::Ident(name) => {
                let pos = self.pos();
                self.bump();
                if *self.peek() != Token::LParen {
                    return Err(self.unexpected("`(` (taps are written `K(x, y)`)"));
                }
                self.bump();
                let builtin = matches!(name.as_str(), "abs" | "min" | "max" | "clamp" | "select");
                if !builtin {
                    // Not a builtin: this must be a stencil tap. A lone
                    // identifier as the first argument means a coordinate
                    // (possibly misnamed); anything else means the author
                    // used an unknown function.
                    if let Token::Ident(first) = self.peek().clone() {
                        let next = &self.tokens[(self.at + 1).min(self.tokens.len() - 1)].token;
                        if *next != Token::LParen {
                            if first != self.x_var {
                                return Err(ParseError::BadCoordinate {
                                    var: first,
                                    expected: self.x_var.clone(),
                                    pos: self.pos(),
                                });
                            }
                            return self.tap(name, pos);
                        }
                    }
                    return Err(ParseError::UnknownFunction { func: name, pos });
                }
                // Built-in call.
                let mut args = Vec::new();
                if *self.peek() != Token::RParen {
                    args.push(self.expr()?);
                    while *self.peek() == Token::Comma {
                        self.bump();
                        args.push(self.expr()?);
                    }
                }
                self.expect(&Token::RParen, "`)`")?;
                let arity = match name.as_str() {
                    "abs" => 1,
                    "min" | "max" | "select3" => 2,
                    "clamp" | "select" => 3,
                    _ => {
                        return Err(ParseError::UnknownFunction { func: name, pos });
                    }
                };
                if args.len() != arity {
                    return Err(ParseError::BadArity {
                        func: name,
                        expected: arity,
                        found: args.len(),
                        pos,
                    });
                }
                Ok(AstExpr::Call {
                    func: name,
                    args,
                    pos,
                })
            }
            _ => Err(self.unexpected("a number, `(`, tap, or function call")),
        }
    }

    /// Parses the remainder of a tap after `NAME(`, consuming `x±dx, y±dy)`.
    fn tap(&mut self, stage: String, pos: Pos) -> Result<AstExpr, ParseError> {
        let dx = self.coord(&self.x_var.clone())?;
        self.expect(&Token::Comma, "`,`")?;
        let dy = self.coord(&self.y_var.clone())?;
        self.expect(&Token::RParen, "`)`")?;
        Ok(AstExpr::Tap { stage, dx, dy, pos })
    }

    /// Parses `VAR`, `VAR+N`, or `VAR-N`, returning the signed offset.
    fn coord(&mut self, var: &str) -> Result<i32, ParseError> {
        let pos = self.pos();
        let (name, _) = self.ident("coordinate variable")?;
        if name != var {
            return Err(ParseError::BadCoordinate {
                var: name,
                expected: var.to_string(),
                pos,
            });
        }
        let sign = match self.peek() {
            Token::Plus => 1,
            Token::Minus => -1,
            _ => return Ok(0),
        };
        self.bump();
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(sign * n as i32)
            }
            _ => Err(self.unexpected("an integer offset")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // The program from the paper's Sec. 4 listing (shape only).
        let src = "
            input K0;
            // K1 reads a 3x3 window from K0
            K1 = im(x,y) K0(x-1,y-1)+K0(x,y-1)+K0(x+1,y+1) end
            output K2 = im(x,y) K0(x,y)+K1(x-1,y-1)+K1(x+1,y+1) end
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.items.len(), 3);
        assert!(matches!(&p.items[0], Item::Input { name, .. } if name == "K0"));
        match &p.items[2] {
            Item::Stage { name, output, .. } => {
                assert_eq!(name, "K2");
                assert!(output);
            }
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn tap_offsets() {
        let p = parse_program("input A; output B = im(x,y) A(x-2,y+3) end").unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => match body {
                AstExpr::Tap { dx, dy, .. } => {
                    assert_eq!(*dx, -2);
                    assert_eq!(*dy, 3);
                }
                _ => panic!("expected tap"),
            },
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse_program("input A; output B = im(x,y) A(x,y) + A(x,y) * 2 end").unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => match body {
                AstExpr::Bin { op: "+", rhs, .. } => {
                    assert!(matches!(**rhs, AstExpr::Bin { op: "*", .. }));
                }
                other => panic!("wrong shape: {other:?}"),
            },
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn calls_and_arity() {
        parse_program("input A; output B = im(x,y) min(A(x,y), 3) end").unwrap();
        parse_program("input A; output B = im(x,y) clamp(A(x,y), 0, 255) end").unwrap();
        let err = parse_program("input A; output B = im(x,y) min(A(x,y)) end").unwrap_err();
        assert!(matches!(err, ParseError::BadArity { expected: 2, .. }));
        let err = parse_program("input A; output B = im(x,y) frob(A(x,y)) end").unwrap_err();
        assert!(matches!(err, ParseError::UnknownFunction { .. }));
    }

    #[test]
    fn coordinate_names_enforced() {
        let err = parse_program("input A; output B = im(u,v) A(x, y) end").unwrap_err();
        assert!(matches!(err, ParseError::BadCoordinate { .. }));
        // Custom coordinate names work when used consistently.
        parse_program("input A; output B = im(u,v) A(u-1, v+1) end").unwrap();
    }

    #[test]
    fn error_positions() {
        let err = parse_program("input ;").unwrap_err();
        match err {
            ParseError::Unexpected { pos, .. } => assert_eq!(pos.col, 7),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn negation_and_comparison() {
        let p = parse_program("input A; output B = im(x,y) select(A(x,y) > 10, -A(x,y), 0) end")
            .unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => {
                assert!(matches!(body, AstExpr::Call { func, .. } if func == "select"));
            }
            _ => panic!("expected stage"),
        }
    }
}
