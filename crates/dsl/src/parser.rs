//! Recursive-descent parser for the ImaGen DSL.
//!
//! Grammar (precedence low→high):
//!
//! ```text
//! program := item*
//! item    := "input" IDENT ";"
//!          | "output"? IDENT "=" rate? "im" "(" IDENT "," IDENT ")" expr "end" ";"?
//! rate    := ("downsample" | "upsample") "(" NUMBER "," NUMBER ")"
//! expr    := cmp
//! cmp     := add (("<"|"<="|">"|">="|"=="|"!=") add)?
//! add     := mul (("+"|"-") mul)*
//! mul     := unary (("*"|"/"|"<<"|">>") unary)*
//! unary   := "-" unary | primary
//! primary := NUMBER | "(" expr ")" | IDENT "(" args ")" | IDENT
//! args    := tap-coords | expr ("," expr)*
//! ```
//!
//! An `IDENT(...)` is a *tap* when its first argument starts with the
//! stage's coordinate variables (e.g. `K0(x-1, y+1)`), otherwise a
//! built-in call (`abs`, `min`, `max`, `clamp`, `select`).

use crate::ast::{AstExpr, AstRate, Item, Program};
use crate::token::{lex, LexError, Pos, Spanned, Token};
use imagen_ir::MAX_RATE_FACTOR;
use std::fmt;

/// Parse error with position information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Got an unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// Where.
        pos: Pos,
    },
    /// Tap coordinate did not use the stage's bound variables.
    BadCoordinate {
        /// The coordinate variable seen.
        var: String,
        /// The variable that was expected.
        expected: String,
        /// Where.
        pos: Pos,
    },
    /// Unknown built-in function.
    UnknownFunction {
        /// Name used.
        func: String,
        /// Where.
        pos: Pos,
    },
    /// Wrong argument count for a built-in.
    BadArity {
        /// Function name.
        func: String,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
        /// Where.
        pos: Pos,
    },
    /// A tap offset literal outside the `i32` range. The seed parser
    /// truncated these silently (`n as i32`), compiling a different
    /// window than the author wrote.
    OffsetOutOfRange {
        /// The signed offset as written.
        value: i64,
        /// Where.
        pos: Pos,
    },
    /// A `downsample`/`upsample` factor outside `1..=MAX_RATE_FACTOR`.
    /// Zero would collapse the iteration domain; factors above 2^20
    /// cannot arise from any realistic image geometry and would only
    /// serve to overflow downstream cycle arithmetic.
    RateOutOfRange {
        /// The factor as written.
        value: i64,
        /// Where.
        pos: Pos,
    },
    /// Expression nesting beyond [`MAX_EXPR_DEPTH`] or a stage body
    /// chaining more than [`MAX_EXPR_CHAIN`] binary operators. The
    /// recursive-descent parser (and everything downstream that walks
    /// the tree) must answer with an error, not a stack overflow, on
    /// `((((((...`- or `1+1+1+...`-shaped input.
    TooDeep {
        /// Where the limit was crossed.
        pos: Pos,
    },
}

/// Deepest accepted expression *nesting* (parentheses, unary minus,
/// call arguments). Real kernels are a few dozen levels deep at most;
/// the bound exists so hostile input exhausts a counter, not the stack
/// — parsing a nesting level costs several recursive parser frames.
pub const MAX_EXPR_DEPTH: usize = 128;

/// Most binary operators one stage body may chain (cumulative across
/// the whole body). Chains parse iteratively but build a left-leaning
/// tree that every later walk (lowering, evaluation, printing, drop)
/// recurses through one frame per link, so they get their own — larger
/// — budget: 384 links still admits a 19×19 convolution sum. The two
/// limits together keep the worst tree (~512 levels) safely inside a
/// 2 MiB thread stack for every recursive consumer, debug builds
/// included (empirically, ~768 levels is fine and ~1024 is not).
pub const MAX_EXPR_CHAIN: usize = 384;

impl ParseError {
    /// Source position of the error.
    pub fn pos(&self) -> Pos {
        match self {
            ParseError::Lex(e) => e.pos,
            ParseError::Unexpected { pos, .. }
            | ParseError::BadCoordinate { pos, .. }
            | ParseError::UnknownFunction { pos, .. }
            | ParseError::BadArity { pos, .. }
            | ParseError::OffsetOutOfRange { pos, .. }
            | ParseError::RateOutOfRange { pos, .. }
            | ParseError::TooDeep { pos } => *pos,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                expected,
                pos,
            } => write!(f, "expected {expected}, found {found} at {pos}"),
            ParseError::BadCoordinate { var, expected, pos } => write!(
                f,
                "tap coordinate uses `{var}` but the stage binds `{expected}` at {pos}"
            ),
            ParseError::UnknownFunction { func, pos } => {
                write!(f, "unknown function `{func}` at {pos}")
            }
            ParseError::BadArity {
                func,
                expected,
                found,
                pos,
            } => write!(
                f,
                "`{func}` takes {expected} argument(s), found {found} at {pos}"
            ),
            ParseError::OffsetOutOfRange { value, pos } => write!(
                f,
                "tap offset `{value}` is outside the supported range ({}..={}) at {pos}",
                i32::MIN,
                i32::MAX
            ),
            ParseError::RateOutOfRange { value, pos } => write!(
                f,
                "rate factor `{value}` is outside the supported range (1..={MAX_RATE_FACTOR}) at {pos}"
            ),
            ParseError::TooDeep { pos } => write!(
                f,
                "expression exceeds the supported size (nesting depth {MAX_EXPR_DEPTH}, {MAX_EXPR_CHAIN} chained operators) at {pos}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses DSL source text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] with source positions on malformed input.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        at: 0,
        depth: 0,
        chain: 0,
        x_var: String::new(),
        y_var: String::new(),
    };
    p.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    at: usize,
    /// Current expression nesting, bounded by [`MAX_EXPR_DEPTH`].
    depth: usize,
    /// Binary operators chained so far in the current stage body,
    /// bounded by [`MAX_EXPR_CHAIN`] (reset per item).
    chain: usize,
    x_var: String,
    y_var: String,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().to_string(),
            expected: expected.to_string(),
            pos: self.pos(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while *self.peek() != Token::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        match self.peek() {
            Token::Input => {
                self.bump();
                let (name, pos) = self.ident("input stage name")?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(Item::Input { name, pos })
            }
            Token::Output | Token::Ident(_) => {
                let output = if *self.peek() == Token::Output {
                    self.bump();
                    true
                } else {
                    false
                };
                let (name, pos) = self.ident("stage name")?;
                self.expect(&Token::Assign, "`=`")?;
                let rate = self.rate_modifier()?;
                self.expect(&Token::Im, "`im`")?;
                self.expect(&Token::LParen, "`(`")?;
                let (xv, _) = self.ident("coordinate variable")?;
                self.expect(&Token::Comma, "`,`")?;
                let (yv, _) = self.ident("coordinate variable")?;
                self.expect(&Token::RParen, "`)`")?;
                self.x_var = xv.clone();
                self.y_var = yv.clone();
                self.chain = 0;
                let body = self.expr()?;
                self.expect(&Token::End, "`end`")?;
                if *self.peek() == Token::Semi {
                    self.bump();
                }
                Ok(Item::Stage {
                    name,
                    output,
                    x_var: xv,
                    y_var: yv,
                    body,
                    rate,
                    pos,
                })
            }
            _ => Err(self.unexpected("`input`, `output`, or a stage definition")),
        }
    }

    /// Parses an optional `downsample(fx, fy)` / `upsample(fx, fy)`
    /// modifier between `=` and `im`. The modifier words are contextual
    /// (only recognized in this position), so stages and producers may
    /// still be *named* `downsample` or `upsample`.
    fn rate_modifier(&mut self) -> Result<AstRate, ParseError> {
        let down = match self.peek() {
            Token::Ident(s) if s == "downsample" => true,
            Token::Ident(s) if s == "upsample" => false,
            _ => return Ok(AstRate::Unit),
        };
        let pos = self.pos();
        self.bump();
        self.expect(&Token::LParen, "`(`")?;
        let fx = self.rate_factor()?;
        self.expect(&Token::Comma, "`,`")?;
        let fy = self.rate_factor()?;
        self.expect(&Token::RParen, "`)`")?;
        Ok(if down {
            AstRate::Down { fx, fy, pos }
        } else {
            AstRate::Up { fx, fy, pos }
        })
    }

    /// Parses one rate factor, rejecting values outside `1..=MAX_RATE_FACTOR`
    /// with the literal's own span.
    fn rate_factor(&mut self) -> Result<i64, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                if n < 1 || n as u64 > MAX_RATE_FACTOR {
                    return Err(ParseError::RateOutOfRange { value: n, pos });
                }
                Ok(n)
            }
            _ => Err(self.unexpected("a rate factor (positive integer)")),
        }
    }

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(ParseError::TooDeep { pos: self.pos() });
        }
        self.depth += 1;
        let result = self.cmp();
        self.depth -= 1;
        result
    }

    fn cmp(&mut self) -> Result<AstExpr, ParseError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Token::Lt => "<",
            Token::Le => "<=",
            Token::Gt => ">",
            Token::Ge => ">=",
            Token::EqEq => "==",
            Token::Ne => "!=",
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        Ok(AstExpr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => "+",
                Token::Minus => "-",
                _ => return Ok(lhs),
            };
            // Each chained operator deepens the left-leaning tree by one
            // level, which later recursive walks (lowering, evaluation,
            // drop) pay for in stack — bounded by the per-body budget.
            if self.chain >= MAX_EXPR_CHAIN {
                return Err(ParseError::TooDeep { pos: self.pos() });
            }
            self.chain += 1;
            self.bump();
            let rhs = self.mul()?;
            lhs = AstExpr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => "*",
                Token::Slash => "/",
                Token::Shl => "<<",
                Token::Shr => ">>",
                _ => return Ok(lhs),
            };
            // See `add`: chain length counts against the per-body budget.
            if self.chain >= MAX_EXPR_CHAIN {
                return Err(ParseError::TooDeep { pos: self.pos() });
            }
            self.chain += 1;
            self.bump();
            let rhs = self.unary()?;
            lhs = AstExpr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<AstExpr, ParseError> {
        if *self.peek() == Token::Minus {
            if self.depth >= MAX_EXPR_DEPTH {
                return Err(ParseError::TooDeep { pos: self.pos() });
            }
            self.depth += 1;
            self.bump();
            let inner = self.unary();
            self.depth -= 1;
            return Ok(AstExpr::Neg(Box::new(inner?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                Ok(AstExpr::Number(n))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::Ident(name) => {
                let pos = self.pos();
                self.bump();
                if *self.peek() != Token::LParen {
                    return Err(self.unexpected("`(` (taps are written `K(x, y)`)"));
                }
                self.bump();
                let builtin = matches!(name.as_str(), "abs" | "min" | "max" | "clamp" | "select");
                if !builtin {
                    // Not a builtin: this must be a stencil tap. A lone
                    // identifier as the first argument means a coordinate
                    // (possibly misnamed); anything else means the author
                    // used an unknown function.
                    if let Token::Ident(first) = self.peek().clone() {
                        let next = &self.tokens[(self.at + 1).min(self.tokens.len() - 1)].token;
                        if *next != Token::LParen {
                            if first != self.x_var {
                                return Err(ParseError::BadCoordinate {
                                    var: first,
                                    expected: self.x_var.clone(),
                                    pos: self.pos(),
                                });
                            }
                            return self.tap(name, pos);
                        }
                    }
                    return Err(ParseError::UnknownFunction { func: name, pos });
                }
                // Built-in call.
                let mut args = Vec::new();
                if *self.peek() != Token::RParen {
                    args.push(self.expr()?);
                    while *self.peek() == Token::Comma {
                        self.bump();
                        args.push(self.expr()?);
                    }
                }
                self.expect(&Token::RParen, "`)`")?;
                let arity = match name.as_str() {
                    "abs" => 1,
                    "min" | "max" => 2,
                    "clamp" | "select" => 3,
                    _ => unreachable!("builtin set checked above"),
                };
                if args.len() != arity {
                    return Err(ParseError::BadArity {
                        func: name,
                        expected: arity,
                        found: args.len(),
                        pos,
                    });
                }
                Ok(AstExpr::Call {
                    func: name,
                    args,
                    pos,
                })
            }
            _ => Err(self.unexpected("a number, `(`, tap, or function call")),
        }
    }

    /// Parses the remainder of a tap after `NAME(`, consuming `x±dx, y±dy)`.
    fn tap(&mut self, stage: String, pos: Pos) -> Result<AstExpr, ParseError> {
        let dx = self.coord(&self.x_var.clone())?;
        self.expect(&Token::Comma, "`,`")?;
        let dy = self.coord(&self.y_var.clone())?;
        self.expect(&Token::RParen, "`)`")?;
        Ok(AstExpr::Tap { stage, dx, dy, pos })
    }

    /// Parses `VAR`, `VAR+N`, or `VAR-N`, returning the signed offset.
    fn coord(&mut self, var: &str) -> Result<i32, ParseError> {
        let pos = self.pos();
        let (name, _) = self.ident("coordinate variable")?;
        if name != var {
            return Err(ParseError::BadCoordinate {
                var: name,
                expected: var.to_string(),
                pos,
            });
        }
        let sign: i64 = match self.peek() {
            Token::Plus => 1,
            Token::Minus => -1,
            _ => return Ok(0),
        };
        self.bump();
        let pos = self.pos();
        match self.peek().clone() {
            Token::Number(n) => {
                self.bump();
                // The lexer guarantees `n <= i64::MAX`, so `sign * n` is
                // exact in i64; reject anything that cannot be an i32
                // offset instead of truncating it.
                let value = sign * n;
                i32::try_from(value).map_err(|_| ParseError::OffsetOutOfRange { value, pos })
            }
            _ => Err(self.unexpected("an integer offset")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // The program from the paper's Sec. 4 listing (shape only).
        let src = "
            input K0;
            // K1 reads a 3x3 window from K0
            K1 = im(x,y) K0(x-1,y-1)+K0(x,y-1)+K0(x+1,y+1) end
            output K2 = im(x,y) K0(x,y)+K1(x-1,y-1)+K1(x+1,y+1) end
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.items.len(), 3);
        assert!(matches!(&p.items[0], Item::Input { name, .. } if name == "K0"));
        match &p.items[2] {
            Item::Stage { name, output, .. } => {
                assert_eq!(name, "K2");
                assert!(output);
            }
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn tap_offsets() {
        let p = parse_program("input A; output B = im(x,y) A(x-2,y+3) end").unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => match body {
                AstExpr::Tap { dx, dy, .. } => {
                    assert_eq!(*dx, -2);
                    assert_eq!(*dy, 3);
                }
                _ => panic!("expected tap"),
            },
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse_program("input A; output B = im(x,y) A(x,y) + A(x,y) * 2 end").unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => match body {
                AstExpr::Bin { op: "+", rhs, .. } => {
                    assert!(matches!(**rhs, AstExpr::Bin { op: "*", .. }));
                }
                other => panic!("wrong shape: {other:?}"),
            },
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn calls_and_arity() {
        parse_program("input A; output B = im(x,y) min(A(x,y), 3) end").unwrap();
        parse_program("input A; output B = im(x,y) clamp(A(x,y), 0, 255) end").unwrap();
        let err = parse_program("input A; output B = im(x,y) min(A(x,y)) end").unwrap_err();
        assert!(matches!(err, ParseError::BadArity { expected: 2, .. }));
        let err = parse_program("input A; output B = im(x,y) frob(A(x,y)) end").unwrap_err();
        assert!(matches!(err, ParseError::UnknownFunction { .. }));
    }

    #[test]
    fn coordinate_names_enforced() {
        let err = parse_program("input A; output B = im(u,v) A(x, y) end").unwrap_err();
        assert!(matches!(err, ParseError::BadCoordinate { .. }));
        // Custom coordinate names work when used consistently.
        parse_program("input A; output B = im(u,v) A(u-1, v+1) end").unwrap();
    }

    #[test]
    fn error_positions() {
        let err = parse_program("input ;").unwrap_err();
        match err {
            ParseError::Unexpected { pos, .. } => assert_eq!(pos.col, 7),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn offset_boundaries_pinned() {
        // i32::MAX parses exactly (no truncation) ...
        let p = parse_program(&format!(
            "input A; output B = im(x,y) A(x+{}, y-{}) end",
            i32::MAX,
            i32::MAX
        ))
        .unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => match body {
                AstExpr::Tap { dx, dy, .. } => {
                    assert_eq!(*dx, i32::MAX);
                    assert_eq!(*dy, -i32::MAX);
                }
                _ => panic!("expected tap"),
            },
            _ => panic!("expected stage"),
        }
        // ... i32::MAX + 1 is rejected with its source position, where the
        // seed parser silently wrapped it to i32::MIN.
        let src = format!(
            "input A;\noutput B = im(x,y) A(x+{}, y) end",
            1i64 + i32::MAX as i64
        );
        let err = parse_program(&src).unwrap_err();
        match err {
            ParseError::OffsetOutOfRange { value, pos } => {
                assert_eq!(value, i32::MAX as i64 + 1);
                assert_eq!(pos.line, 2);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // i32::MIN is representable and accepted.
        let src = format!("input A; output B = im(x,y) A(x-{}, y) end", 1u64 << 31);
        parse_program(&src).unwrap();
        // One further out is not.
        let src = format!(
            "input A; output B = im(x,y) A(x-{}, y) end",
            (1u64 << 31) + 1
        );
        assert!(matches!(
            parse_program(&src).unwrap_err(),
            ParseError::OffsetOutOfRange { .. }
        ));
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // Parenthesis towers, unary-minus towers and kilometer-long
        // operator chains must all come back as TooDeep errors — the
        // parser and every later tree walk run on the caller's stack.
        let deep_parens = format!(
            "input A; output B = im(x,y) {}A(x,y){} end",
            "(".repeat(100_000),
            ")".repeat(100_000)
        );
        assert!(matches!(
            parse_program(&deep_parens).unwrap_err(),
            ParseError::TooDeep { .. }
        ));
        let deep_neg = format!(
            "input A; output B = im(x,y) {}A(x,y) end",
            "-".repeat(100_000)
        );
        assert!(matches!(
            parse_program(&deep_neg).unwrap_err(),
            ParseError::TooDeep { .. }
        ));
        let long_chain = format!(
            "input A; output B = im(x,y) A(x,y){} end",
            " + 1".repeat(100_000)
        );
        assert!(matches!(
            parse_program(&long_chain).unwrap_err(),
            ParseError::TooDeep { .. }
        ));
        let long_mul_chain = format!(
            "input A; output B = im(x,y) A(x,y){} end",
            " * 2".repeat(100_000)
        );
        assert!(matches!(
            parse_program(&long_mul_chain).unwrap_err(),
            ParseError::TooDeep { .. }
        ));
        // Realistic programs sit far under the budget: an 81-term sum
        // (9x9 box filter shape) and 100-deep parens both parse.
        let sum_81 = format!(
            "input A; output B = im(x,y) A(x,y){} end",
            " + 1".repeat(80)
        );
        parse_program(&sum_81).unwrap();
        let nested_100 = format!(
            "input A; output B = im(x,y) {}A(x,y){} end",
            "(".repeat(100),
            ")".repeat(100)
        );
        parse_program(&nested_100).unwrap();
        // A body at the exact chain budget must survive not only parsing
        // but the recursive downstream walks (lowering + drop) — this
        // runs on a test thread's smaller stack on purpose.
        let max_chain = format!(
            "input A; output B = im(x,y) A(x,y){} end",
            " + 1".repeat(MAX_EXPR_CHAIN - 1)
        );
        let program = parse_program(&max_chain).unwrap();
        crate::lower("max-chain", &program).unwrap();
        // The budget is per stage body, not per program: many maximal
        // bodies in one file are fine.
        let two_bodies = format!(
            "input A; B = im(x,y) A(x,y){chain} end output C = im(x,y) B(x,y){chain} end",
            chain = " + 1".repeat(MAX_EXPR_CHAIN - 1)
        );
        parse_program(&two_bodies).unwrap();
    }

    #[test]
    fn huge_literal_rejected_by_lexer() {
        let err = parse_program("input A; output B = im(x,y) A(x,y) + 99999999999999999999 end")
            .unwrap_err();
        assert!(matches!(err, ParseError::Lex(_)));
        assert_eq!(err.pos().col, 38);
    }

    #[test]
    fn rate_modifiers_parse() {
        let p = parse_program(
            "input K0;
             D = downsample(2, 2) im(x,y) K0(x,y) + K0(x+1,y+1) end
             output U = upsample(2,2) im(x,y) D(x,y) end",
        )
        .unwrap();
        match &p.items[1] {
            Item::Stage { rate, .. } => {
                assert!(matches!(rate, crate::ast::AstRate::Down { fx: 2, fy: 2, .. }));
            }
            _ => panic!("expected stage"),
        }
        match &p.items[2] {
            Item::Stage { rate, .. } => {
                assert!(matches!(rate, crate::ast::AstRate::Up { fx: 2, fy: 2, .. }));
            }
            _ => panic!("expected stage"),
        }
        // No modifier → Unit.
        let p = parse_program("input A; output B = im(x,y) A(x,y) end").unwrap();
        match &p.items[1] {
            Item::Stage { rate, .. } => assert!(rate.is_unit()),
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn rate_modifier_words_stay_contextual() {
        // `downsample`/`upsample` are not keywords: stages may use the
        // names, and taps into them still parse.
        let p = parse_program(
            "input downsample;
             output upsample = im(x,y) downsample(x-1,y+1) end",
        )
        .unwrap();
        assert_eq!(p.items.len(), 2);
        // And a rate modifier composes with such names.
        parse_program(
            "input downsample;
             output upsample = downsample(2,2) im(x,y) downsample(x,y) end",
        )
        .unwrap();
    }

    #[test]
    fn hostile_rate_factors_error_with_spans() {
        let err =
            parse_program("input A;\noutput B = downsample(0, 2) im(x,y) A(x,y) end").unwrap_err();
        match err {
            ParseError::RateOutOfRange { value: 0, pos } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.col, 23);
            }
            other => panic!("wrong error: {other:?}"),
        }
        let src = format!(
            "input A; output B = upsample(2, {}) im(x,y) A(x,y) end",
            MAX_RATE_FACTOR + 1
        );
        assert!(matches!(
            parse_program(&src).unwrap_err(),
            ParseError::RateOutOfRange { .. }
        ));
        // Exactly MAX_RATE_FACTOR parses (range is inclusive).
        let src = format!(
            "input A; output B = downsample({}, 1) im(x,y) A(x,y) end",
            MAX_RATE_FACTOR
        );
        parse_program(&src).unwrap();
        // Negative and non-numeric factors are unexpected-token errors.
        assert!(parse_program("input A; output B = downsample(-1, 2) im(x,y) A(x,y) end").is_err());
        assert!(parse_program("input A; output B = downsample(x, 2) im(x,y) A(x,y) end").is_err());
    }

    #[test]
    fn negation_and_comparison() {
        let p = parse_program("input A; output B = im(x,y) select(A(x,y) > 10, -A(x,y), 0) end")
            .unwrap();
        match &p.items[1] {
            Item::Stage { body, .. } => {
                assert!(matches!(body, AstExpr::Call { func, .. } if func == "select"));
            }
            _ => panic!("expected stage"),
        }
    }
}
