//! Pretty-printer: renders an IR DAG back to DSL source.
//!
//! Printing a lowered DAG and re-parsing it reproduces the same DAG
//! structure (windows, slots, kernels), which the test suite exercises as
//! a round-trip property.

use imagen_ir::{BinOp, Dag, Expr, Rate, StageKind};
use std::fmt::Write as _;

/// Renders `dag` as DSL source text.
pub fn to_dsl(dag: &Dag) -> String {
    let mut out = String::new();
    for (id, stage) in dag.stages() {
        match stage.kind() {
            StageKind::Input => {
                let _ = writeln!(out, "input {};", stage.name());
            }
            StageKind::Compute { kernel } => {
                let prefix = if stage.is_output() { "output " } else { "" };
                let names: Vec<&str> = stage
                    .producers()
                    .iter()
                    .map(|p| dag.stage(*p).name())
                    .collect();
                let mut body = String::new();
                render(kernel, &names, &mut body);
                let rate = match stage.rate() {
                    Rate::Unit => String::new(),
                    Rate::Down { fx, fy } => format!("downsample({fx},{fy}) "),
                    Rate::Up { fx, fy } => format!("upsample({fx},{fy}) "),
                };
                let _ = writeln!(
                    out,
                    "{}{} = {}im(x,y) {} end",
                    prefix,
                    stage.name(),
                    rate,
                    body
                );
                let _ = id;
            }
        }
    }
    out
}

/// Renders a single kernel expression in DSL surface syntax, with
/// `names[slot]` naming each producer. This is the printer the
/// translation-validation pass uses to quote kernels and refutation
/// witnesses back to the user in the language they wrote, rather than
/// in raw IR notation.
pub fn expr_to_dsl(e: &Expr, names: &[&str]) -> String {
    let mut out = String::new();
    render(e, names, &mut out);
    out
}

fn coord(base: &str, off: i32) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{off}"),
        std::cmp::Ordering::Less => format!("{base}-{}", -off),
    }
}

fn render(e: &Expr, names: &[&str], out: &mut String) {
    match e {
        Expr::Const(c) => {
            if *c < 0 {
                // Renders as a negated literal, which the lowerer folds
                // back into the same constant (exact round trip). The one
                // unprintable value is i64::MIN, whose magnitude the lexer
                // cannot read back.
                let _ = write!(out, "(-{})", (*c as i128).unsigned_abs());
            } else {
                let _ = write!(out, "{c}");
            }
        }
        Expr::Tap { slot, dx, dy } => {
            let _ = write!(
                out,
                "{}({},{})",
                names[*slot],
                coord("x", *dx),
                coord("y", *dy)
            );
        }
        Expr::Neg(inner) => {
            out.push_str("(-");
            render(inner, names, out);
            out.push(')');
        }
        Expr::Abs(inner) => {
            out.push_str("abs(");
            render(inner, names, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => match op {
            BinOp::Min | BinOp::Max => {
                let _ = write!(out, "{}(", if *op == BinOp::Min { "min" } else { "max" });
                render(a, names, out);
                out.push_str(", ");
                render(b, names, out);
                out.push(')');
            }
            _ => {
                out.push('(');
                render(a, names, out);
                let _ = write!(out, " {} ", op.mnemonic());
                render(b, names, out);
                out.push(')');
            }
        },
        Expr::Cmp(op, a, b) => {
            out.push('(');
            render(a, names, out);
            let _ = write!(out, " {} ", op.mnemonic());
            render(b, names, out);
            out.push(')');
        }
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            out.push_str("select(");
            render(cond, names, out);
            out.push_str(", ");
            render(then, names, out);
            out.push_str(", ");
            render(otherwise, names, out);
            out.push(')');
        }
        Expr::Clamp { value, lo, hi } => {
            out.push_str("clamp(");
            render(value, names, out);
            out.push_str(", ");
            render(lo, names, out);
            out.push_str(", ");
            render(hi, names, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, parse_program};

    #[test]
    fn round_trip_structure() {
        let src = "input K0;
            K1 = im(x,y) K0(x-1,y-1)+K0(x,y)+K0(x+1,y+1) end
            output K2 = im(x,y) max(K0(x,y), K1(x-1,y-1)) - min(K1(x,y), 4) end";
        let dag1 = compile("rt", src).unwrap();
        let printed = to_dsl(&dag1);
        let dag2 = compile("rt", &printed).unwrap();
        assert_eq!(dag1.num_stages(), dag2.num_stages());
        assert_eq!(dag1.num_edges(), dag2.num_edges());
        for (id, s1) in dag1.stages() {
            let s2 = dag2.stage(id);
            assert_eq!(s1.name(), s2.name());
            assert_eq!(s1.kernel(), s2.kernel(), "kernel mismatch in {}", s1.name());
        }
        for (id, e1) in dag1.edges() {
            let e2 = dag2.edge(id);
            assert_eq!(e1.window(), e2.window());
        }
    }

    #[test]
    fn negative_offsets_render() {
        let src = "input A; output B = im(x,y) A(x-2,y-1) end";
        let dag = compile("t", src).unwrap();
        let printed = to_dsl(&dag);
        assert!(printed.contains("input A;"));
        // Normalized taps render with the normalized offsets; the program
        // must still re-parse cleanly.
        parse_program(&printed).unwrap();
    }

    #[test]
    fn rate_modifiers_round_trip() {
        let src = "input K0;
            D1 = downsample(2,2) im(x,y) (K0(x,y) + K0(x+1,y+1)) >> 1 end
            output U1 = upsample(2,2) im(x,y) D1(x,y) end";
        let dag1 = compile("pyr", src).unwrap();
        let printed = to_dsl(&dag1);
        assert!(printed.contains("downsample(2,2) im(x,y)"));
        assert!(printed.contains("upsample(2,2) im(x,y)"));
        let dag2 = compile("pyr", &printed).unwrap();
        assert_eq!(dag1.fingerprint(), dag2.fingerprint());
    }

    #[test]
    fn output_marker_preserved() {
        let src = "input A; output B = im(x,y) abs(A(x,y)) end";
        let dag = compile("t", src).unwrap();
        assert!(to_dsl(&dag).contains("output B"));
    }
}
