//! Lexer for the Darkroom-like ImaGen DSL.

use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// `input` keyword.
    Input,
    /// `output` keyword.
    Output,
    /// `im` keyword.
    Im,
    /// `end` keyword.
    End,
    /// Identifier (stage or coordinate name).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Input => write!(f, "`input`"),
            Token::Output => write!(f, "`output`"),
            Token::Im => write!(f, "`im`"),
            Token::End => write!(f, "`end`"),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
            Token::Semi => write!(f, "`;`"),
            Token::Assign => write!(f, "`=`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::Slash => write!(f, "`/`"),
            Token::Shl => write!(f, "`<<`"),
            Token::Shr => write!(f, "`>>`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::EqEq => write!(f, "`==`"),
            Token::Ne => write!(f, "`!=`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// Lexical error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Where it occurred.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` at {}", self.ch, self.pos)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes DSL source. Supports `//` line comments and `/* */` block
/// comments.
///
/// # Errors
///
/// Returns [`LexError`] on any character outside the language.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else { break };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut prev = ' ';
                        while let Some(c) = bump!() {
                            if prev == '*' && c == '/' {
                                break;
                            }
                            prev = c;
                        }
                    }
                    _ => out.push(Spanned {
                        token: Token::Slash,
                        pos,
                    }),
                }
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n.saturating_mul(10).saturating_add(v as i64);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Number(n),
                    pos,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let token = match s.as_str() {
                    "input" => Token::Input,
                    "output" => Token::Output,
                    "im" => Token::Im,
                    "end" => Token::End,
                    _ => Token::Ident(s),
                };
                out.push(Spanned { token, pos });
            }
            '(' | ')' | ',' | ';' | '+' | '-' | '*' => {
                bump!();
                let token = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    ',' => Token::Comma,
                    ';' => Token::Semi,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    _ => Token::Star,
                };
                out.push(Spanned { token, pos });
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        token: Token::EqEq,
                        pos,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Assign,
                        pos,
                    });
                }
            }
            '<' => {
                bump!();
                let token = match chars.peek() {
                    Some('<') => {
                        bump!();
                        Token::Shl
                    }
                    Some('=') => {
                        bump!();
                        Token::Le
                    }
                    _ => Token::Lt,
                };
                out.push(Spanned { token, pos });
            }
            '>' => {
                bump!();
                let token = match chars.peek() {
                    Some('>') => {
                        bump!();
                        Token::Shr
                    }
                    Some('=') => {
                        bump!();
                        Token::Ge
                    }
                    _ => Token::Gt,
                };
                out.push(Spanned { token, pos });
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        token: Token::Ne,
                        pos,
                    });
                } else {
                    return Err(LexError { ch: '!', pos });
                }
            }
            other => return Err(LexError { ch: other, pos }),
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("input K0;"),
            vec![
                Token::Input,
                Token::Ident("K0".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("+ - * / << >> < <= > >= == != ="),
            vec![
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Shl,
                Token::Shr,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::Assign,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("// header\nim /* inline */ end"),
            vec![Token::Im, Token::End, Token::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.ch, '$');
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("042"), vec![Token::Number(42), Token::Eof]);
    }
}
