//! Lexer for the Darkroom-like ImaGen DSL.

use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// `input` keyword.
    Input,
    /// `output` keyword.
    Output,
    /// `im` keyword.
    Im,
    /// `end` keyword.
    End,
    /// Identifier (stage or coordinate name).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Input => write!(f, "`input`"),
            Token::Output => write!(f, "`output`"),
            Token::Im => write!(f, "`im`"),
            Token::End => write!(f, "`end`"),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Comma => write!(f, "`,`"),
            Token::Semi => write!(f, "`;`"),
            Token::Assign => write!(f, "`=`"),
            Token::Plus => write!(f, "`+`"),
            Token::Minus => write!(f, "`-`"),
            Token::Star => write!(f, "`*`"),
            Token::Slash => write!(f, "`/`"),
            Token::Shl => write!(f, "`<<`"),
            Token::Shr => write!(f, "`>>`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::EqEq => write!(f, "`==`"),
            Token::Ne => write!(f, "`!=`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// What went wrong lexically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LexErrorKind {
    /// A character outside the language.
    BadChar(char),
    /// An integer literal exceeding `i64::MAX`. The seed lexer silently
    /// saturated these; they are now rejected so no literal ever changes
    /// value between source and IR.
    NumberTooLarge,
}

/// Lexical error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LexError {
    /// What went wrong.
    pub kind: LexErrorKind,
    /// Where it occurred.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LexErrorKind::BadChar(ch) => {
                write!(f, "unexpected character `{ch}` at {}", self.pos)
            }
            LexErrorKind::NumberTooLarge => {
                write!(f, "integer literal exceeds {} at {}", i64::MAX, self.pos)
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes DSL source. Supports `//` line comments and `/* */` block
/// comments.
///
/// # Errors
///
/// Returns [`LexError`] on any character outside the language or an
/// integer literal that does not fit in an `i64`.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else { break };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut prev = ' ';
                        while let Some(c) = bump!() {
                            if prev == '*' && c == '/' {
                                break;
                            }
                            prev = c;
                        }
                    }
                    _ => out.push(Spanned {
                        token: Token::Slash,
                        pos,
                    }),
                }
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = match n.checked_mul(10).and_then(|n| n.checked_add(v as i64)) {
                            Some(n) => n,
                            None => {
                                return Err(LexError {
                                    kind: LexErrorKind::NumberTooLarge,
                                    pos,
                                })
                            }
                        };
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Number(n),
                    pos,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let token = match s.as_str() {
                    "input" => Token::Input,
                    "output" => Token::Output,
                    "im" => Token::Im,
                    "end" => Token::End,
                    _ => Token::Ident(s),
                };
                out.push(Spanned { token, pos });
            }
            '(' | ')' | ',' | ';' | '+' | '-' | '*' => {
                bump!();
                let token = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    ',' => Token::Comma,
                    ';' => Token::Semi,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    _ => Token::Star,
                };
                out.push(Spanned { token, pos });
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        token: Token::EqEq,
                        pos,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Assign,
                        pos,
                    });
                }
            }
            '<' => {
                bump!();
                let token = match chars.peek() {
                    Some('<') => {
                        bump!();
                        Token::Shl
                    }
                    Some('=') => {
                        bump!();
                        Token::Le
                    }
                    _ => Token::Lt,
                };
                out.push(Spanned { token, pos });
            }
            '>' => {
                bump!();
                let token = match chars.peek() {
                    Some('>') => {
                        bump!();
                        Token::Shr
                    }
                    Some('=') => {
                        bump!();
                        Token::Ge
                    }
                    _ => Token::Gt,
                };
                out.push(Spanned { token, pos });
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        token: Token::Ne,
                        pos,
                    });
                } else {
                    return Err(LexError {
                        kind: LexErrorKind::BadChar('!'),
                        pos,
                    });
                }
            }
            other => {
                return Err(LexError {
                    kind: LexErrorKind::BadChar(other),
                    pos,
                })
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("input K0;"),
            vec![
                Token::Input,
                Token::Ident("K0".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("+ - * / << >> < <= > >= == != ="),
            vec![
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Shl,
                Token::Shr,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::Assign,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("// header\nim /* inline */ end"),
            vec![Token::Im, Token::End, Token::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::BadChar('$'));
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("042"), vec![Token::Number(42), Token::Eof]);
    }

    #[test]
    fn i64_boundary_literals() {
        // i64::MAX lexes exactly; one more rejects instead of saturating.
        assert_eq!(
            toks("9223372036854775807"),
            vec![Token::Number(i64::MAX), Token::Eof]
        );
        let err = lex("a 9223372036854775808").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::NumberTooLarge);
        assert_eq!(err.pos, Pos { line: 1, col: 3 });
        let err = lex("99999999999999999999999999").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::NumberTooLarge);
    }
}
