//! The front door must never panic: `imagen_dsl::compile` is the path
//! every *external* program takes into the compiler (the `imagen` CLI
//! feeds it arbitrary user files, the batch server arbitrary request
//! payloads), so for any input — valid, hostile, or random garbage — it
//! must return `Ok` or a positioned `Err`, never unwind.
//!
//! Three generators attack from different angles:
//!
//! * raw byte soup (exercises the lexer's error paths);
//! * token soup assembled from the language's own lexemes (parses far
//!   deeper before failing, exercising parser/lowerer error paths);
//! * structured-ish programs with extreme numbers and offsets
//!   (exercises overflow guards: literal bounds, window-span bounds).

use proptest::prelude::*;

/// Compiles and asserts the result is a value, not a panic. Also checks
/// every reported error renders (`Display`) and carries a sane position.
fn assert_total(src: &str) -> Result<(), TestCaseError> {
    match imagen_dsl::compile("fuzz", src) {
        Ok(dag) => {
            prop_assert!(dag.num_stages() > 0, "valid programs have stages");
        }
        Err(e) => {
            let msg = e.to_string();
            prop_assert!(!msg.is_empty(), "errors must render");
            if let Some(pos) = e.pos() {
                prop_assert!(pos.line >= 1 && pos.col >= 1, "1-based span: {pos}");
            }
        }
    }
    Ok(())
}

/// The language's own lexemes plus near-miss fragments.
const LEXEMES: &[&str] = &[
    "input",
    "output",
    "im",
    "end",
    "downsample",
    "upsample",
    "abs",
    "min",
    "max",
    "clamp",
    "select",
    "K0",
    "K1",
    "x",
    "y",
    "(",
    ")",
    ",",
    ";",
    "=",
    "+",
    "-",
    "*",
    "/",
    "<<",
    ">>",
    "<",
    "<=",
    ">",
    ">=",
    "==",
    "!=",
    "0",
    "1",
    "255",
    "2147483647",
    "2147483648",
    "9223372036854775807",
    "9223372036854775808",
    "//",
    "/*",
    "*/",
    "\n",
    " ",
    "!",
    "$",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_soup_never_panics(words in proptest::collection::vec(0u16..512, 0..200)) {
        let bytes: Vec<u8> = words.iter().map(|&w| (w & 0xff) as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&src)?;
    }

    #[test]
    fn token_soup_never_panics(picks in proptest::collection::vec(0usize..LEXEMES.len(), 0..120)) {
        let src: String = picks
            .iter()
            .flat_map(|&i| [LEXEMES[i], " "])
            .collect();
        assert_total(&src)?;
    }

    #[test]
    fn extreme_programs_never_panic(
        offsets in (
            -9_200_000_000_000_000_000i64..9_200_000_000_000_000_000,
            -3_000_000_000i64..3_000_000_000,
            -2_200_000i64..2_200_000,
            0i64..9_223_372_036_854_775_807,
        ),
        lit in 0i64..9_223_372_036_854_775_807,
        shift in -65i64..130,
    ) {
        let (dx1, dy1, dx2, dy2) = offsets;
        // Degenerate but well-formed shapes around every numeric guard:
        // huge literals, offsets at/over the i32 edge, window spans at/over
        // the absurdity bound, out-of-range shift amounts.
        let fmt_off = |v: i64| {
            if v < 0 {
                format!("-{}", v.unsigned_abs())
            } else {
                format!("+{v}")
            }
        };
        let src = format!(
            "input a;
             b = im(x,y) a(x{}, y{}) + a(x,y) * {lit} end
             output c = im(x,y) (b(x{}, y{}) + b(x,y)) << ({}) end",
            fmt_off(dx1),
            fmt_off(dy1),
            fmt_off(dx2),
            fmt_off(dy2),
            fmt_off(shift),
        );
        assert_total(&src)?;
    }

    /// Rate-modifier programs around every multirate guard: factors of
    /// 0, 1, powers of two, values at/over `MAX_RATE_FACTOR` (2^20) and
    /// near `i64::MAX`; down/up chains whose cumulative scale may
    /// overflow the bound or rise above the base grid; and a unit-rate
    /// stage tapping two producers whose scales may disagree. Compile
    /// must return `Ok` or a positioned `Err`, never unwind.
    #[test]
    fn rate_modifier_programs_never_panic(
        i1 in 0usize..9,
        i2 in 0usize..9,
        kind1 in 0u8..2,
        kind2 in 0u8..2,
        mismatch in 0u8..2,
    ) {
        // Factors clustered on every multirate guard boundary: zero, the
        // unit rate, small legal values, 2^20 ± 1, and absurd magnitudes.
        const FACTORS: [i64; 9] = [
            0,
            1,
            2,
            3,
            1_048_575,
            1_048_576,
            1_048_577,
            4_294_967_296,
            9_223_372_036_854_775_807,
        ];
        let (f1, f2) = (FACTORS[i1], FACTORS[i2]);
        let word = |k: u8| if k == 0 { "downsample" } else { "upsample" };
        let tail = if mismatch == 1 {
            // Taps `a` (base grid) next to `c` (whatever grid the chain
            // landed on): rate-mismatch rejection path.
            "output o = im(x,y) a(x,y) + c(x,y) end"
        } else {
            "output o = im(x,y) c(x,y) + c(x+1,y) end"
        };
        let src = format!(
            "input a;
             b = {}({f1}, {f2}) im(x,y) a(x,y) end
             c = {}({f2}, {f1}) im(x,y) b(x,y) + b(x+1,y+1) end
             {tail}",
            word(kind1),
            word(kind2),
        );
        assert_total(&src)?;
    }
}

/// Deterministic regressions for shapes the fuzzers found or the audit
/// flagged: each line previously panicked or silently miscompiled.
#[test]
fn audit_corpus_is_total() {
    let cases: &[&str] = &[
        "",                                                                // empty program
        ";",                                                               // lone separator
        "input",                                                           // cut off mid-item
        "input a; output b = im(x,y) a(x,y)",                              // missing `end`
        "output b = im(x,y) 7 end", // constant-only, no input
        "input a; output b = im(x,y) b(x,y) end", // self-reference
        "input a; output b = im(x,y) a(x-2147483649,y) end", // offset < i32::MIN
        "input a; output b = im(x,y) a(x+9223372036854775808,y) end", // > i64::MAX
        "input a; output b = im(x,y) a(x-1048577,y) + a(x+1048577,y) end", // span blowout
        "input a; output b = im(x,y) a(x-2147483648, y+2147483647) end", // i32 extremes
        "input a; output b = im(x,y) min(a(x,y)) end", // arity
        "input a; output b = im(x,y) frob(a(x,y)) end", // unknown function
        "input a; output b = im(u,v) a(x,y) end", // wrong coordinates
        "input a; input a; output b = im(x,y) a(x,y) end", // duplicate
        "input a; output b = im(x,y) a(x,y) / 0 end", // constant zero divide
        "input a; output b = im(x,y) -9223372036854775807 * a(x,y) end", // negated max
        "input a; output b = downsample(0,2) im(x,y) a(x,y) end", // zero factor
        "input a; output b = downsample(1048577,1) im(x,y) a(x,y) end", // > MAX_RATE_FACTOR
        "input a; output b = downsample(9223372036854775808,1) im(x,y) a(x,y) end", // > i64::MAX
        "input a; output b = upsample(2,2) im(x,y) a(x,y) end", // above the base grid
        "input a; output b = downsample(-2,2) im(x,y) a(x,y) end", // negative factor
        "input a; output b = downsample(2) im(x,y) a(x,y) end", // arity
        "input a; output b = downsample(2,2) im(x,y) a(x,y)", // rated, missing `end`
        "input a; b = downsample(1048576,1) im(x,y) a(x,y) end
         output c = downsample(1048576,1) im(x,y) b(x,y) end", // cumulative scale blowout
        "input downsample; output b = im(x,y) downsample(x,y) end", // contextual word as name
        "input a; upsample = downsample(2,2) im(x,y) a(x,y) end
         output o = upsample(2,2) im(x,y) upsample(x,y) end", // contextual word as stage
    ];
    for src in cases {
        match imagen_dsl::compile("corpus", src) {
            Ok(_) | Err(_) => {}
        }
    }
    // Hostile nesting / chain shapes (stack-overflow class): built here
    // instead of string literals. Each must error via the size budgets.
    let owned: Vec<String> = vec![
        format!(
            "input a; output b = im(x,y) {}a(x,y){} end",
            "(".repeat(200_000),
            ")".repeat(200_000)
        ),
        format!(
            "input a; output b = im(x,y) {}a(x,y) end",
            "-".repeat(200_000)
        ),
        format!(
            "input a; output b = im(x,y) a(x,y){} end",
            " + a(x,y)".repeat(200_000)
        ),
        format!(
            "input a; output b = im(x,y) a(x,y){} end",
            " >> 1".repeat(200_000)
        ),
        format!(
            "input a; output b = im(x,y) min(a(x,y), {}a(x,y){}) end",
            "abs(".repeat(200_000),
            ")".repeat(200_000)
        ),
        // Unbalanced tower: errors at EOF, after deep partial state.
        format!("input a; output b = im(x,y) {}a(x,y)", "(".repeat(200_000)),
    ];
    for src in &owned {
        assert!(
            imagen_dsl::compile("corpus", src).is_err(),
            "hostile nesting must error"
        );
    }
}
