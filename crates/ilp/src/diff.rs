//! Difference-constraint systems and their componentwise-minimal solutions.
//!
//! A difference system is a conjunction of constraints `x_u - x_v >= c`
//! together with per-variable lower bounds. Such systems are *min-closed*:
//! the componentwise minimum of two feasible points is feasible, so a unique
//! componentwise-minimal solution exists whenever the system is feasible.
//! It is computed by a longest-path (Bellman–Ford) fixpoint.
//!
//! In ImaGen this solver serves three roles:
//! 1. fast feasibility checks for candidate constraint subsets,
//! 2. the minimum-latency ("ASAP") schedule used for latency reporting, and
//! 3. an independent cross-check of the simplex solver on difference systems.
//!
//! Note that the *buffer-minimal* schedule is not in general the
//! componentwise-minimal one (delaying a producer can shrink its own buffer
//! while growing upstream ones), which is why the full ILP exists.

use std::fmt;

/// Error returned when a difference system is infeasible.
///
/// Infeasibility of `x_u - x_v >= c` systems is witnessed by a positive
/// cycle in the constraint graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PositiveCycle;

impl fmt::Display for PositiveCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "difference system contains a positive cycle (infeasible)"
        )
    }
}

impl std::error::Error for PositiveCycle {}

/// A system of difference constraints over `n` nonnegative variables.
///
/// # Examples
///
/// ```
/// use imagen_ilp::DiffSystem;
///
/// let mut sys = DiffSystem::new(3);
/// sys.add_ge(1, 0, 641); // x1 >= x0 + 641
/// sys.add_ge(2, 1, 641); // x2 >= x1 + 641
/// let sol = sys.minimal_solution().unwrap();
/// assert_eq!(sol, vec![0, 641, 1282]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiffSystem {
    n: usize,
    /// Edge `(v, u, c)` encodes `x_u >= x_v + c`.
    edges: Vec<(usize, usize, i64)>,
    lower: Vec<i64>,
}

impl DiffSystem {
    /// Creates a system with `n` variables, all bounded below by zero.
    pub fn new(n: usize) -> DiffSystem {
        DiffSystem {
            n,
            edges: Vec::new(),
            lower: vec![0; n],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.edges.len()
    }

    /// Adds the constraint `x_u - x_v >= c`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[track_caller]
    pub fn add_ge(&mut self, u: usize, v: usize, c: i64) {
        assert!(u < self.n && v < self.n, "variable index out of range");
        self.edges.push((v, u, c));
    }

    /// Raises the lower bound of `x_i` to `max(current, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[track_caller]
    pub fn set_lower(&mut self, i: usize, b: i64) {
        assert!(i < self.n, "variable index out of range");
        if b > self.lower[i] {
            self.lower[i] = b;
        }
    }

    /// Computes the componentwise-minimal feasible point.
    ///
    /// # Errors
    ///
    /// Returns [`PositiveCycle`] if the system is infeasible.
    pub fn minimal_solution(&self) -> Result<Vec<i64>, PositiveCycle> {
        let mut x = self.lower.clone();
        // Longest-path fixpoint: at most n rounds of relaxation, one extra
        // round to detect positive cycles.
        for round in 0..=self.n {
            let mut changed = false;
            for &(v, u, c) in &self.edges {
                let cand = x[v].saturating_add(c);
                if cand > x[u] {
                    x[u] = cand;
                    changed = true;
                }
            }
            if !changed {
                return Ok(x);
            }
            if round == self.n {
                return Err(PositiveCycle);
            }
        }
        Ok(x)
    }

    /// Checks whether an assignment satisfies every constraint and bound.
    pub fn is_feasible(&self, x: &[i64]) -> bool {
        if x.len() != self.n {
            return false;
        }
        if x.iter().zip(&self.lower).any(|(xi, lo)| xi < lo) {
            return false;
        }
        self.edges.iter().all(|&(v, u, c)| x[u] - x[v] >= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_resolves_to_longest_path() {
        let mut s = DiffSystem::new(4);
        s.add_ge(1, 0, 10);
        s.add_ge(2, 1, 5);
        s.add_ge(3, 2, 5);
        s.add_ge(3, 0, 25); // tighter diamond path
        let x = s.minimal_solution().unwrap();
        assert_eq!(x, vec![0, 10, 15, 25]);
        assert!(s.is_feasible(&x));
    }

    #[test]
    fn lower_bounds_respected() {
        let mut s = DiffSystem::new(2);
        s.set_lower(0, 7);
        s.add_ge(1, 0, 3);
        let x = s.minimal_solution().unwrap();
        assert_eq!(x, vec![7, 10]);
    }

    #[test]
    fn positive_cycle_is_infeasible() {
        let mut s = DiffSystem::new(2);
        s.add_ge(1, 0, 1);
        s.add_ge(0, 1, 0);
        assert_eq!(s.minimal_solution().unwrap_err(), PositiveCycle);
    }

    #[test]
    fn zero_cycle_is_feasible() {
        // x1 >= x0, x0 >= x1 forces equality; feasible.
        let mut s = DiffSystem::new(2);
        s.add_ge(1, 0, 0);
        s.add_ge(0, 1, 0);
        let x = s.minimal_solution().unwrap();
        assert_eq!(x, vec![0, 0]);
    }

    #[test]
    fn minimality_vs_feasible_points() {
        let mut s = DiffSystem::new(3);
        s.add_ge(1, 0, 4);
        s.add_ge(2, 0, 9);
        let min = s.minimal_solution().unwrap();
        // Any feasible point dominates the minimal one.
        let other = vec![3, 100, 50];
        assert!(s.is_feasible(&other));
        for i in 0..3 {
            assert!(min[i] <= other[i]);
        }
    }

    #[test]
    fn empty_system() {
        let s = DiffSystem::new(0);
        assert_eq!(s.minimal_solution().unwrap(), Vec::<i64>::new());
    }
}
