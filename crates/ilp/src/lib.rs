//! # imagen-ilp
//!
//! Exact integer linear programming for the [ImaGen] accelerator generator.
//!
//! The ImaGen optimizer (ISCA 2023, Sec. 5.5) formulates line-buffer
//! scheduling as an ILP and hands it to a solver; the original system used
//! Google OR-Tools. This crate provides the solving substrate built from
//! scratch in Rust:
//!
//! * [`Rational`] — exact rational arithmetic on `i128`;
//! * [`Model`] — a mixed-integer model builder with [`LinExpr`] expressions;
//! * a two-phase primal **simplex** over rationals ([`Model::solve_lp`]);
//! * **branch and bound** on top ([`Model::solve`]) — for the
//!   totally-unimodular difference systems ImaGen emits, the relaxation is
//!   already integral and the search terminates at the root node;
//! * [`DiffSystem`] — a specialized longest-path solver for pure
//!   difference-constraint systems, used for fast feasibility checks,
//!   ASAP schedules, and as an independent cross-check of the simplex.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352
//!
//! # Examples
//!
//! A miniature scheduling problem (two consumers of one producer, image
//! width 480, stencil height 3, à la the paper's Fig. 6):
//!
//! ```
//! use imagen_ilp::{LinExpr, Model, Sense};
//!
//! let mut m = Model::new("fig6");
//! let s0 = m.add_int_var("S_K0");
//! let s1 = m.add_int_var("S_K1");
//! let s2 = m.add_int_var("S_K2");
//! let w = 480i64;
//! // Data dependencies (Equ. 1b): S_c - S_p >= (SH-1)*W + 1.
//! m.add_diff_ge(s1, s0, 2 * w + 1, "dep_K0_K1");
//! m.add_diff_ge(s2, s1, 2 * w + 1, "dep_K1_K2");
//! // Contention (Equ. 12): the surviving pruned pair constraint.
//! m.add_diff_ge(s2, s0, 3 * w, "port_K0_K2");
//! // Minimize total buffering: here simply S_1 + S_2 - 2*S_0.
//! m.set_objective(
//!     Sense::Minimize,
//!     LinExpr::from(s1) + LinExpr::from(s2) - LinExpr::from(s0) * 2,
//! );
//! let sol = m.solve()?;
//! assert_eq!(sol.int_value(s1), 961);
//! assert_eq!(sol.int_value(s2), 1922);
//! # Ok::<(), imagen_ilp::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod diff;
mod model;
mod rational;
mod simplex;
pub mod stats;

pub use branch_bound::{SolveStats, DEFAULT_NODE_LIMIT};
pub use diff::{DiffSystem, PositiveCycle};
pub use model::{Cmp, Constraint, LinExpr, Model, Sense, VarId};
pub use rational::Rational;
pub use simplex::{Solution, SolveError};
