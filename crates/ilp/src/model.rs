//! Optimization model builder: variables, linear expressions, constraints.

use crate::Rational;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Handle to a decision variable in a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable within its model.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
        };
        f.write_str(s)
    }
}

/// Optimization direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A linear expression `sum(coeff_i * var_i) + constant`.
///
/// Built with operator overloading:
///
/// ```
/// use imagen_ilp::{LinExpr, Model};
///
/// let mut m = Model::new("demo");
/// let x = m.add_var("x");
/// let y = m.add_var("y");
/// let e = LinExpr::from(x) * 3 - LinExpr::from(y) + 7;
/// assert_eq!(e.coeff(x), 3.into());
/// assert_eq!(e.coeff(y), (-1).into());
/// assert_eq!(e.constant(), 7.into());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    terms: Vec<(VarId, Rational)>,
    constant: Rational,
}

impl LinExpr {
    /// The empty (zero) expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A single variable with coefficient one.
    pub fn var(v: VarId) -> LinExpr {
        LinExpr {
            terms: vec![(v, Rational::ONE)],
            constant: Rational::ZERO,
        }
    }

    /// A constant expression.
    pub fn constant_expr(c: impl Into<Rational>) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: c.into(),
        }
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, v: VarId, coeff: impl Into<Rational>) -> &mut LinExpr {
        let coeff = coeff.into();
        if let Some(slot) = self.terms.iter_mut().find(|(tv, _)| *tv == v) {
            slot.1 += coeff;
        } else {
            self.terms.push((v, coeff));
        }
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: impl Into<Rational>) -> &mut LinExpr {
        self.constant += c.into();
        self
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: VarId) -> Rational {
        self.terms
            .iter()
            .find(|(tv, _)| *tv == v)
            .map(|(_, c)| *c)
            .unwrap_or(Rational::ZERO)
    }

    /// The constant term.
    pub fn constant(&self) -> Rational {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs with nonzero coefficients.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Rational)> + '_ {
        self.terms.iter().filter(|(_, c)| !c.is_zero()).copied()
    }

    /// Evaluates the expression under an assignment (indexed by variable).
    pub fn eval(&self, assignment: &[Rational]) -> Rational {
        let mut acc = self.constant;
        for (v, c) in self.iter() {
            acc += *assignment
                .get(v.0)
                .expect("assignment shorter than variable count")
                * c;
        }
        acc
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }
}

impl Add<i64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: i64) -> LinExpr {
        self.constant += Rational::from(rhs);
        self
    }
}

impl Sub<i64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: i64) -> LinExpr {
        self.constant -= Rational::from(rhs);
        self
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: i64) -> LinExpr {
        let r = Rational::from(rhs);
        for t in &mut self.terms {
            t.1 = t.1 * r;
        }
        self.constant = self.constant * r;
        self
    }
}

/// Variable metadata.
#[derive(Clone, Debug)]
pub(crate) struct VarDef {
    pub name: String,
    pub integer: bool,
    /// Lower bound (all ImaGen variables are nonnegative by default).
    pub lower: Rational,
    /// Optional upper bound.
    pub upper: Option<Rational>,
}

/// A linear constraint `expr cmp rhs` stored in normalized form
/// (constant folded into the right-hand side).
#[derive(Clone, Debug)]
pub struct Constraint {
    pub(crate) expr: LinExpr,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: Rational,
    pub(crate) label: String,
}

impl Constraint {
    /// Human-readable constraint label (for diagnostics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Checks the constraint under an assignment.
    pub fn is_satisfied(&self, assignment: &[Rational]) -> bool {
        let lhs = self.expr.eval(assignment);
        match self.cmp {
            Cmp::Le => lhs <= self.rhs,
            Cmp::Ge => lhs >= self.rhs,
            Cmp::Eq => lhs == self.rhs,
        }
    }
}

/// A mixed-integer linear optimization model.
///
/// All variables are nonnegative by default (matching the ImaGen
/// formulation where start cycles are nonnegative integers); bounds can be
/// adjusted per variable.
///
/// # Examples
///
/// ```
/// use imagen_ilp::{Cmp, LinExpr, Model, Sense};
///
/// let mut m = Model::new("tiny");
/// let x = m.add_int_var("x");
/// let y = m.add_int_var("y");
/// m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Cmp::Le, 7, "cap");
/// m.set_objective(Sense::Maximize, LinExpr::from(x) * 3 + LinExpr::from(y) * 2);
/// let sol = m.solve().unwrap();
/// assert_eq!(sol.objective_value().to_integer(), Some(21));
/// ```
#[derive(Clone, Debug)]
pub struct Model {
    name: String,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) sense: Sense,
    pub(crate) objective: LinExpr,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Model {
        Model {
            name: name.into(),
            vars: Vec::new(),
            constraints: Vec::new(),
            sense: Sense::Minimize,
            objective: LinExpr::zero(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a continuous variable with bounds `[0, +inf)`.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(VarDef {
            name: name.into(),
            integer: false,
            lower: Rational::ZERO,
            upper: None,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds an integer variable with bounds `[0, +inf)`.
    pub fn add_int_var(&mut self, name: impl Into<String>) -> VarId {
        let v = self.add_var(name);
        self.vars[v.0].integer = true;
        v
    }

    /// Sets variable bounds. `upper = None` means unbounded above.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`.
    #[track_caller]
    pub fn set_bounds(&mut self, v: VarId, lower: i64, upper: Option<i64>) {
        if let Some(u) = upper {
            assert!(lower <= u, "lower bound exceeds upper bound");
        }
        self.vars[v.0].lower = Rational::from(lower);
        self.vars[v.0].upper = upper.map(Rational::from);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Whether a variable is integer-constrained.
    pub fn is_integer(&self, v: VarId) -> bool {
        self.vars[v.0].integer
    }

    /// Adds the linear constraint `expr cmp rhs`.
    pub fn add_constraint(
        &mut self,
        expr: LinExpr,
        cmp: Cmp,
        rhs: impl Into<Rational>,
        label: impl Into<String>,
    ) {
        let mut expr = expr;
        let rhs = rhs.into() - expr.constant();
        expr.constant = Rational::ZERO;
        self.constraints.push(Constraint {
            expr,
            cmp,
            rhs,
            label: label.into(),
        });
    }

    /// Convenience: adds the difference constraint `a - b >= c`.
    pub fn add_diff_ge(&mut self, a: VarId, b: VarId, c: i64, label: impl Into<String>) {
        let expr = LinExpr::var(a) - LinExpr::var(b);
        self.add_constraint(expr, Cmp::Ge, c, label);
    }

    /// Sets the objective.
    pub fn set_objective(&mut self, sense: Sense, expr: LinExpr) {
        self.sense = sense;
        self.objective = expr;
    }

    /// Returns the objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Returns the constraints (for inspection and diagnostics).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Checks a full assignment against bounds and all constraints.
    pub fn is_feasible(&self, assignment: &[Rational]) -> bool {
        if assignment.len() != self.vars.len() {
            return false;
        }
        for (i, def) in self.vars.iter().enumerate() {
            if assignment[i] < def.lower {
                return false;
            }
            if let Some(u) = def.upper {
                if assignment[i] > u {
                    return false;
                }
            }
            if def.integer && !assignment[i].is_integer() {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.is_satisfied(assignment))
    }

    /// Writes the model in a human-readable LP-like format (diagnostics).
    pub fn to_lp_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "\\ model {}", self.name);
        let dir = match self.sense {
            Sense::Minimize => "Minimize",
            Sense::Maximize => "Maximize",
        };
        let _ = writeln!(s, "{dir}");
        let _ = writeln!(s, "  obj: {}", self.expr_string(&self.objective));
        let _ = writeln!(s, "Subject To");
        for c in &self.constraints {
            let _ = writeln!(
                s,
                "  {}: {} {} {}",
                c.label,
                self.expr_string(&c.expr),
                c.cmp,
                c.rhs
            );
        }
        let _ = writeln!(s, "Bounds");
        for (i, v) in self.vars.iter().enumerate() {
            let up = v
                .upper
                .map(|u| u.to_string())
                .unwrap_or_else(|| "+inf".to_string());
            let _ = writeln!(s, "  {} <= {} <= {}", v.lower, self.vars[i].name, up);
        }
        let ints: Vec<&str> = self
            .vars
            .iter()
            .filter(|v| v.integer)
            .map(|v| v.name.as_str())
            .collect();
        if !ints.is_empty() {
            let _ = writeln!(s, "General\n  {}", ints.join(" "));
        }
        let _ = writeln!(s, "End");
        s
    }

    fn expr_string(&self, e: &LinExpr) -> String {
        let mut parts = Vec::new();
        for (v, c) in e.iter() {
            parts.push(format!("{} {}", c, self.vars[v.0].name));
        }
        if !e.constant().is_zero() || parts.is_empty() {
            parts.push(e.constant().to_string());
        }
        parts.join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_algebra() {
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        let e = (LinExpr::from(x) * 2 + LinExpr::from(y)) - LinExpr::from(x);
        assert_eq!(e.coeff(x), Rational::ONE);
        assert_eq!(e.coeff(y), Rational::ONE);
    }

    #[test]
    fn eval_and_feasibility() {
        let mut m = Model::new("t");
        let x = m.add_int_var("x");
        let y = m.add_int_var("y");
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Cmp::Le, 5, "c0");
        let a = vec![Rational::from(2), Rational::from(3)];
        assert!(m.is_feasible(&a));
        let b = vec![Rational::from(3), Rational::from(3)];
        assert!(!m.is_feasible(&b));
        let frac = vec![Rational::new(1, 2), Rational::from(0)];
        assert!(!m.is_feasible(&frac), "integrality must be enforced");
    }

    #[test]
    fn constraint_constant_folding() {
        let mut m = Model::new("t");
        let x = m.add_var("x");
        m.add_constraint(LinExpr::from(x) + 3, Cmp::Ge, 5, "c");
        assert_eq!(m.constraints()[0].rhs, Rational::from(2));
    }

    #[test]
    fn lp_dump_contains_pieces() {
        let mut m = Model::new("dump");
        let x = m.add_int_var("start_0");
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 1, "dep");
        m.set_objective(Sense::Minimize, LinExpr::from(x));
        let s = m.to_lp_string();
        assert!(s.contains("Minimize"));
        assert!(s.contains("dep:"));
        assert!(s.contains("start_0"));
        assert!(s.contains("General"));
    }
}
