//! Exact rational arithmetic on `i128`.
//!
//! The simplex solver in this crate works over exact rationals so that
//! optimality and integrality decisions are never subject to floating-point
//! noise. Values are kept normalized (reduced by their gcd, denominator
//! strictly positive), which keeps intermediate magnitudes small for the
//! near-totally-unimodular systems produced by the ImaGen scheduler.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0`, always reduced.
///
/// # Examples
///
/// ```
/// use imagen_ilp::Rational;
///
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert!(Rational::from(2) > a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(a: i128, b: i128) -> i128 {
    // Work on unsigned magnitudes: negating `i128::MIN` in signed space
    // overflows (silently wrapping in release builds), which used to make
    // gcd(i128::MIN, k) garbage. The result only exceeds `i128::MAX` when
    // both magnitudes are 2^127, which no reduced rational can produce.
    let mut a = a.unsigned_abs();
    let mut b = b.unsigned_abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    assert!(a <= i128::MAX as u128, "gcd magnitude overflows i128");
    a as i128
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a new rational `num / den`, reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`, or if normalization overflows `i128` (only
    /// possible when a magnitude-`2^127` numerator or denominator must be
    /// negated, e.g. `new(1, i128::MIN)`).
    #[track_caller]
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rational::ZERO;
        }
        if num == den {
            return Rational::ONE;
        }
        // Both operands are nonzero and distinct, so at least one
        // magnitude is below 2^127 and the gcd (≤ the smaller magnitude)
        // always fits an i128.
        let g = gcd(num, den);
        let (mut n, mut d) = (num / g, den / g);
        if d < 0 {
            n = n
                .checked_neg()
                .unwrap_or_else(|| panic!("rational overflow normalizing {num}/{den}"));
            d = d
                .checked_neg()
                .unwrap_or_else(|| panic!("rational overflow normalizing {num}/{den}"));
        }
        Rational { num: n, den: d }
    }

    /// Returns the numerator of the reduced form.
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Returns the (strictly positive) denominator of the reduced form.
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is an integer (denominator one).
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The largest integer less than or equal to this value.
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer greater than or equal to this value.
    pub fn ceil(&self) -> i128 {
        // Remainder form rather than `-((-num).div_euclid(den))`: negating
        // an `i128::MIN` numerator overflows.
        let q = self.num.div_euclid(self.den);
        if self.num.rem_euclid(self.den) == 0 {
            q
        } else {
            q + 1
        }
    }

    /// The fractional part `self - self.floor()`, in `[0, 1)`.
    pub fn fract(&self) -> Rational {
        *self - Rational::from(self.floor())
    }

    /// Absolute value.
    ///
    /// # Panics
    ///
    /// Panics if the numerator is `i128::MIN` (its magnitude is not
    /// representable).
    #[track_caller]
    pub fn abs(&self) -> Rational {
        let num = if self.num < 0 {
            self.num
                .checked_neg()
                .unwrap_or_else(|| panic!("rational abs overflow on {self}"))
        } else {
            self.num
        };
        Rational { num, den: self.den }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[track_caller]
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Converts to `f64` (approximately; for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Returns the integer value if the rational is integral.
    pub fn to_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Checked addition; `None` on `i128` overflow.
    pub fn checked_add(&self, rhs: &Rational) -> Option<Rational> {
        if self.den == 1 && rhs.den == 1 {
            // Integer fast path: no gcd normalization needed.
            return Some(Rational {
                num: self.num.checked_add(rhs.num)?,
                den: 1,
            });
        }
        let g = gcd(self.den, rhs.den);
        let lcm_l = self.den / g;
        let n = self
            .num
            .checked_mul(rhs.den / g)?
            .checked_add(rhs.num.checked_mul(lcm_l)?)?;
        let d = lcm_l.checked_mul(rhs.den)?;
        Some(Rational::new(n, d))
    }

    /// Checked subtraction; `None` on `i128` overflow.
    ///
    /// Computed directly (not as `a + (-b)`) so that subtracting a
    /// magnitude-`2^127` value works wherever the result is representable.
    pub fn checked_sub(&self, rhs: &Rational) -> Option<Rational> {
        if self.den == 1 && rhs.den == 1 {
            return Some(Rational {
                num: self.num.checked_sub(rhs.num)?,
                den: 1,
            });
        }
        let g = gcd(self.den, rhs.den);
        let lcm_l = self.den / g;
        let n = self
            .num
            .checked_mul(rhs.den / g)?
            .checked_sub(rhs.num.checked_mul(lcm_l)?)?;
        let d = lcm_l.checked_mul(rhs.den)?;
        Some(Rational::new(n, d))
    }

    /// Checked multiplication; `None` on `i128` overflow.
    pub fn checked_mul(&self, rhs: &Rational) -> Option<Rational> {
        if self.den == 1 && rhs.den == 1 {
            // Integer fast path: no cross-reduction needed.
            return Some(Rational {
                num: self.num.checked_mul(rhs.num)?,
                den: 1,
            });
        }
        // Cross-reduce before multiplying to minimize overflow risk.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let n = (self.num / g1).checked_mul(rhs.num / g2)?;
        let d = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(n, d))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    #[track_caller]
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(&rhs).expect("rational addition overflow")
    }
}

impl Sub for Rational {
    type Output = Rational;
    #[track_caller]
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(&rhs)
            .expect("rational subtraction overflow")
    }
}

impl Mul for Rational {
    type Output = Rational;
    #[track_caller]
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs)
            .expect("rational multiplication overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[track_caller]
    fn div(self, rhs: Rational) -> Rational {
        self.checked_mul(&rhs.recip())
            .expect("rational division overflow")
    }
}

impl Neg for Rational {
    type Output = Rational;
    #[track_caller]
    fn neg(self) -> Rational {
        Rational {
            num: self
                .num
                .checked_neg()
                .unwrap_or_else(|| panic!("rational negation overflow on {self}")),
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Signs first; magnitudes by continued-fraction descent, which is
        // exact at any magnitude (the previous cross-multiplication could
        // overflow an i128 for values near the representation limits).
        let (sa, sb) = (self.num.signum(), other.num.signum());
        if sa != sb {
            return sa.cmp(&sb);
        }
        if sa == 0 {
            return Ordering::Equal;
        }
        let mag = cmp_frac(
            self.num.unsigned_abs(),
            self.den.unsigned_abs(),
            other.num.unsigned_abs(),
            other.den.unsigned_abs(),
        );
        if sa > 0 {
            mag
        } else {
            mag.reverse()
        }
    }
}

/// Compares `an/ad` against `bn/bd` (all strictly positive) by comparing
/// integer parts and recursing on reciprocals of the fractional parts —
/// Euclid's algorithm run on both numbers in lockstep. Exact and
/// overflow-free for any `u128` operands.
fn cmp_frac(mut an: u128, mut ad: u128, mut bn: u128, mut bd: u128) -> Ordering {
    let mut flipped = false;
    loop {
        let (qa, ra) = (an / ad, an % ad);
        let (qb, rb) = (bn / bd, bn % bd);
        let ord = if qa != qb {
            qa.cmp(&qb)
        } else {
            match (ra == 0, rb == 0) {
                (true, true) => return Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => {
                    // ra/ad vs rb/bd flips under reciprocal: ad/ra vs bd/rb.
                    (an, ad, bn, bd) = (ad, ra, bd, rb);
                    flipped = !flipped;
                    continue;
                }
            }
        };
        return if flipped { ord.reverse() } else { ord };
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::new(6, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn zero_numerator_normalizes() {
        let r = Rational::new(0, -7);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(4, 2).floor(), 2);
        assert_eq!(Rational::new(4, 2).ceil(), 2);
        assert_eq!(Rational::new(7, 2).fract(), Rational::new(1, 2));
        assert_eq!(Rational::new(-7, 2).fract(), Rational::new(1, 2));
    }

    #[test]
    fn integrality() {
        assert!(Rational::new(4, 2).is_integer());
        assert_eq!(Rational::new(4, 2).to_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).to_integer(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 6).to_string(), "1/2");
        assert_eq!(Rational::from(5).to_string(), "5");
    }

    #[test]
    fn i128_min_constructs_and_compares() {
        let min = Rational::new(i128::MIN, 1);
        assert_eq!(min.numer(), i128::MIN);
        assert_eq!(min.denom(), 1);
        assert_eq!(Rational::new(0, i128::MIN), Rational::ZERO);
        assert_eq!(Rational::new(i128::MIN, i128::MIN), Rational::ONE);
        assert!(min < Rational::ZERO);
        assert!(min < Rational::new(i128::MIN, 2));
        assert_eq!(min.cmp(&min), Ordering::Equal);
        // Even halves reduce without negating the raw i128::MIN.
        let half = Rational::new(i128::MIN, 2);
        assert_eq!(half.numer(), i128::MIN / 2);
        assert_eq!(half.denom(), 1);
        assert_eq!(min.floor(), i128::MIN);
        assert_eq!(min.ceil(), i128::MIN);
        assert_eq!(min.fract(), Rational::ZERO);
        assert_eq!(min - min, Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "negation overflow")]
    fn i128_min_negation_panics() {
        let _ = -Rational::new(i128::MIN, 1);
    }

    #[test]
    #[should_panic(expected = "abs overflow")]
    fn i128_min_abs_panics() {
        let _ = Rational::new(i128::MIN, 1).abs();
    }

    #[test]
    #[should_panic(expected = "rational overflow normalizing")]
    fn i128_min_denominator_panics() {
        let _ = Rational::new(1, i128::MIN);
    }

    #[test]
    fn checked_overflow_detected() {
        let big = Rational::from(i128::MAX / 2);
        assert!(big.checked_add(&big).is_none() || big.checked_add(&big).is_some());
        let huge = Rational::new(i128::MAX, 1);
        assert!(huge.checked_mul(&Rational::from(3)).is_none());
    }
}
