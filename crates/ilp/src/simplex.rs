//! Two-phase primal simplex over exact rationals.
//!
//! The solver is deliberately straightforward (dense tableau, Bland's rule)
//! because the ImaGen scheduling problems are small — tens of variables,
//! hundreds of constraints — and exactness matters more than raw speed.
//! Bland's rule guarantees termination in the presence of degeneracy.

use crate::model::{Cmp, Model, Sense};
use crate::Rational;
use std::fmt;

/// Errors produced by the LP/ILP solvers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SolveError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Branch-and-bound exceeded its node budget.
    NodeLimit(usize),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::NodeLimit(n) => {
                write!(f, "branch-and-bound node limit of {n} exceeded")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal assignment returned by the solvers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Solution {
    pub(crate) values: Vec<Rational>,
    pub(crate) objective: Rational,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, v: crate::VarId) -> Rational {
        self.values[v.index()]
    }

    /// Integer value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the value is not integral (cannot happen for solutions
    /// returned by [`Model::solve`] on integer variables) or does not fit
    /// in an `i64` — a silent wrapping cast here would hand the scheduler
    /// garbage start cycles.
    #[track_caller]
    pub fn int_value(&self, v: crate::VarId) -> i64 {
        let value = self.values[v.index()]
            .to_integer()
            .expect("variable value is not integral");
        i64::try_from(value)
            .unwrap_or_else(|_| panic!("variable value {value} does not fit in an i64"))
    }

    /// The optimal objective value.
    pub fn objective_value(&self) -> Rational {
        self.objective
    }

    /// All variable values, indexed by [`crate::VarId::index`].
    pub fn values(&self) -> &[Rational] {
        &self.values
    }
}

/// Dense simplex tableau in canonical form (basis columns are identity).
struct Tableau {
    /// `m x n_total` coefficient rows.
    rows: Vec<Vec<Rational>>,
    /// Right-hand sides (always nonnegative in canonical form).
    rhs: Vec<Rational>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Reduced-cost row.
    obj: Vec<Rational>,
    /// Current objective value `c_B * x_B`.
    obj_val: Rational,
    /// Number of structural columns (shifted original variables).
    n_struct: usize,
    /// First artificial column index (columns >= this are artificial).
    art_start: usize,
}

enum RunOutcome {
    Optimal,
    Unbounded,
}

impl Tableau {
    fn pivot(&mut self, r: usize, c: usize) {
        crate::stats::record_pivot();
        let piv = self.rows[r][c];
        debug_assert!(!piv.is_zero());
        let inv = piv.recip();
        for x in self.rows[r].iter_mut() {
            if !x.is_zero() {
                *x = *x * inv;
            }
        }
        self.rhs[r] = self.rhs[r] * inv;
        let m = self.rows.len();
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = self.rows[i][c];
            if f.is_zero() {
                continue;
            }
            for j in 0..self.rows[i].len() {
                if self.rows[r][j].is_zero() {
                    continue;
                }
                let delta = self.rows[r][j] * f;
                self.rows[i][j] -= delta;
            }
            let d = self.rhs[r] * f;
            self.rhs[i] -= d;
        }
        let f = self.obj[c];
        if !f.is_zero() {
            for j in 0..self.obj.len() {
                if self.rows[r][j].is_zero() {
                    continue;
                }
                let delta = self.rows[r][j] * f;
                self.obj[j] -= delta;
            }
            // Entering variable takes value rhs[r] (already normalized), so
            // the objective moves by its reduced cost times that amount.
            let d = self.rhs[r] * f;
            self.obj_val += d;
        }
        self.basis[r] = c;
    }

    /// Rebuilds the reduced-cost row for cost vector `costs` given the basis.
    fn canonicalize_objective(&mut self, costs: &[Rational]) {
        self.obj = costs.to_vec();
        self.obj_val = Rational::ZERO;
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = costs[b];
            if cb.is_zero() {
                continue;
            }
            for j in 0..self.obj.len() {
                if self.rows[i][j].is_zero() {
                    continue;
                }
                let delta = self.rows[i][j] * cb;
                self.obj[j] -= delta;
            }
            self.obj_val += self.rhs[i] * cb;
        }
    }

    /// Runs simplex iterations with Bland's rule until optimal or unbounded.
    /// `allowed` limits the entering columns (used to freeze artificials).
    fn run(&mut self, allowed: usize) -> RunOutcome {
        loop {
            // Bland: entering column = smallest index with negative reduced cost.
            let mut entering = None;
            for j in 0..allowed {
                if self.obj[j].is_negative() {
                    entering = Some(j);
                    break;
                }
            }
            let Some(c) = entering else {
                return RunOutcome::Optimal;
            };
            // Ratio test; Bland tie-break on smallest basic variable index.
            let mut leave: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][c];
                if a.is_positive() {
                    let ratio = self.rhs[i] / a;
                    match &leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li]) {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((r, _)) = leave else {
                return RunOutcome::Unbounded;
            };
            self.pivot(r, c);
        }
    }
}

/// Solves the LP relaxation of `model` (integrality dropped).
///
/// Returns variable values in original (unshifted) space.
pub(crate) fn solve_lp(model: &Model) -> Result<Solution, SolveError> {
    let n = model.vars.len();

    // Shift variables by their lower bound so every structural column is >= 0.
    let lower: Vec<Rational> = model.vars.iter().map(|v| v.lower).collect();

    // Rows: model constraints (with shifted RHS) + upper-bound rows.
    struct Row {
        coeffs: Vec<Rational>,
        cmp: Cmp,
        rhs: Rational,
    }
    let mut raw_rows: Vec<Row> = Vec::new();
    for c in &model.constraints {
        let mut coeffs = vec![Rational::ZERO; n];
        let mut shift = Rational::ZERO;
        for (v, k) in c.expr.iter() {
            coeffs[v.index()] += k;
            shift += k * lower[v.index()];
        }
        raw_rows.push(Row {
            coeffs,
            cmp: c.cmp,
            rhs: c.rhs - shift,
        });
    }
    for (i, def) in model.vars.iter().enumerate() {
        if let Some(u) = def.upper {
            let mut coeffs = vec![Rational::ZERO; n];
            coeffs[i] = Rational::ONE;
            raw_rows.push(Row {
                coeffs,
                cmp: Cmp::Le,
                rhs: u - lower[i],
            });
        }
    }

    // Normalize RHS signs.
    for row in &mut raw_rows {
        if row.rhs.is_negative() {
            for c in &mut row.coeffs {
                *c = -*c;
            }
            row.rhs = -row.rhs;
            row.cmp = match row.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = raw_rows.len();
    // Column layout: [structural | slack/surplus | artificial].
    let n_slack = raw_rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = raw_rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Ge | Cmp::Eq))
        .count();
    let art_start = n + n_slack;
    let total = n + n_slack + n_art;

    let mut rows = vec![vec![Rational::ZERO; total]; m];
    let mut rhs = vec![Rational::ZERO; m];
    let mut basis = vec![0usize; m];
    let mut next_slack = n;
    let mut next_art = art_start;
    for (i, row) in raw_rows.iter().enumerate() {
        rows[i][..n].copy_from_slice(&row.coeffs);
        rhs[i] = row.rhs;
        match row.cmp {
            Cmp::Le => {
                rows[i][next_slack] = Rational::ONE;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                rows[i][next_slack] = -Rational::ONE;
                next_slack += 1;
                rows[i][next_art] = Rational::ONE;
                basis[i] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                rows[i][next_art] = Rational::ONE;
                basis[i] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        rows,
        rhs,
        basis,
        obj: vec![Rational::ZERO; total],
        obj_val: Rational::ZERO,
        n_struct: n,
        art_start,
    };

    // Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        let mut costs = vec![Rational::ZERO; total];
        for c in costs.iter_mut().skip(art_start) {
            *c = Rational::ONE;
        }
        t.canonicalize_objective(&costs);
        match t.run(total) {
            RunOutcome::Optimal => {}
            RunOutcome::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
        }
        if t.obj_val.is_positive() {
            return Err(SolveError::Infeasible);
        }
        // Drive any (degenerate) artificial out of the basis.
        for i in 0..t.rows.len() {
            if t.basis[i] >= t.art_start {
                if let Some(c) = (0..t.art_start).find(|&j| !t.rows[i][j].is_zero()) {
                    t.pivot(i, c);
                }
                // Rows with no structural support are redundant; the
                // artificial stays basic at value zero, which is harmless
                // as long as it never re-enters (phase 2 freezes it).
            }
        }
    }

    // Phase 2: original objective (converted to minimization).
    let mut costs = vec![Rational::ZERO; total];
    for (v, k) in model.objective.iter() {
        costs[v.index()] += match model.sense {
            Sense::Minimize => k,
            Sense::Maximize => -k,
        };
    }
    t.canonicalize_objective(&costs);
    match t.run(t.art_start) {
        RunOutcome::Optimal => {}
        RunOutcome::Unbounded => return Err(SolveError::Unbounded),
    }

    // Extract values (shift back by lower bounds).
    let mut values = lower;
    let mut shifted = vec![Rational::ZERO; t.n_struct];
    for (i, &b) in t.basis.iter().enumerate() {
        if b < t.n_struct {
            shifted[b] = t.rhs[i];
        }
    }
    for (i, v) in values.iter_mut().enumerate() {
        *v += shifted[i];
    }

    let mut objective = model.objective.constant();
    for (v, k) in model.objective.iter() {
        objective += values[v.index()] * k;
    }

    Ok(Solution { values, objective })
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LinExpr, Model, Rational, Sense, SolveError};

    #[test]
    fn basic_maximize() {
        // max 3x + 2y s.t. x + y <= 4; x + 3y <= 6 -> x=4, y=0, obj=12.
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Cmp::Le, 4, "c1");
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y) * 3, Cmp::Le, 6, "c2");
        m.set_objective(Sense::Maximize, LinExpr::from(x) * 3 + LinExpr::from(y) * 2);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.objective_value(), Rational::from(12));
        assert_eq!(s.value(x), Rational::from(4));
        assert_eq!(s.value(y), Rational::from(0));
    }

    #[test]
    fn basic_minimize_with_ge() {
        // min x + y s.t. x + 2y >= 4; 3x + y >= 6 -> x=8/5, y=6/5, obj=14/5.
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y) * 2, Cmp::Ge, 4, "c1");
        m.add_constraint(LinExpr::from(x) * 3 + LinExpr::from(y), Cmp::Ge, 6, "c2");
        m.set_objective(Sense::Minimize, LinExpr::from(x) + LinExpr::from(y));
        let s = m.solve_lp().unwrap();
        assert_eq!(s.objective_value(), Rational::new(14, 5));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("t");
        let x = m.add_var("x");
        m.add_constraint(LinExpr::from(x), Cmp::Le, 1, "c1");
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 2, "c2");
        assert_eq!(m.solve_lp().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("t");
        let x = m.add_var("x");
        m.set_objective(Sense::Maximize, LinExpr::from(x));
        assert_eq!(m.solve_lp().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y == 10, x - y == 2 -> x=6, y=4.
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Cmp::Eq, 10, "sum");
        m.add_constraint(LinExpr::from(x) - LinExpr::from(y), Cmp::Eq, 2, "diff");
        m.set_objective(Sense::Minimize, LinExpr::from(x) + LinExpr::from(y));
        let s = m.solve_lp().unwrap();
        assert_eq!(s.value(x), Rational::from(6));
        assert_eq!(s.value(y), Rational::from(4));
    }

    #[test]
    fn lower_bounds_shifted_correctly() {
        // min x with x >= 5 (bound) and x >= 3 (constraint) -> 5.
        let mut m = Model::new("t");
        let x = m.add_var("x");
        m.set_bounds(x, 5, None);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 3, "c");
        m.set_objective(Sense::Minimize, LinExpr::from(x));
        let s = m.solve_lp().unwrap();
        assert_eq!(s.value(x), Rational::from(5));
    }

    #[test]
    fn upper_bounds_respected() {
        let mut m = Model::new("t");
        let x = m.add_var("x");
        m.set_bounds(x, 0, Some(7));
        m.set_objective(Sense::Maximize, LinExpr::from(x));
        let s = m.solve_lp().unwrap();
        assert_eq!(s.value(x), Rational::from(7));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-flavored degeneracy; Bland's rule must terminate.
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        let z = m.add_var("z");
        m.add_constraint(LinExpr::from(x), Cmp::Le, 1, "c1");
        m.add_constraint(LinExpr::from(x) * 4 + LinExpr::from(y), Cmp::Le, 8, "c2");
        m.add_constraint(
            LinExpr::from(x) * 8 + LinExpr::from(y) * 4 + LinExpr::from(z),
            Cmp::Le,
            64,
            "c3",
        );
        m.set_objective(
            Sense::Maximize,
            LinExpr::from(x) * 4 + LinExpr::from(y) * 2 + LinExpr::from(z),
        );
        let s = m.solve_lp().unwrap();
        assert_eq!(s.objective_value(), Rational::from(64));
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Cmp::Eq, 4, "c1");
        m.add_constraint(
            LinExpr::from(x) * 2 + LinExpr::from(y) * 2,
            Cmp::Eq,
            8,
            "c2-redundant",
        );
        m.set_objective(Sense::Minimize, LinExpr::from(x));
        let s = m.solve_lp().unwrap();
        assert_eq!(s.value(x), Rational::ZERO);
        assert_eq!(s.value(y), Rational::from(4));
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -2 means y >= x + 2.
        let mut m = Model::new("t");
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.add_constraint(LinExpr::from(x) - LinExpr::from(y), Cmp::Le, -2, "c");
        m.set_objective(Sense::Minimize, LinExpr::from(y));
        let s = m.solve_lp().unwrap();
        assert_eq!(s.value(y), Rational::from(2));
    }
}
