//! Process-global solver statistics hook.
//!
//! The simplex pivot is the unit of work the whole optimizer bottoms
//! out in, so profilers (DSE `--profile`, the serve stats endpoint)
//! want a running pivot count without threading a handle through every
//! `Model::solve` call. A single relaxed atomic does it: each pivot is
//! O(m·n) exact-rational row operations, so the added `fetch_add` is
//! noise. Readers take deltas (`pivot_count()` before/after); with
//! concurrent solves a delta covers *all* solver activity in the
//! window, which is the useful number for profiling anyway.

use std::sync::atomic::{AtomicU64, Ordering};

static PIVOTS: AtomicU64 = AtomicU64::new(0);

/// Records one simplex pivot. Called by the tableau; public so
/// alternative solver frontends can participate.
pub fn record_pivot() {
    PIVOTS.fetch_add(1, Ordering::Relaxed);
}

/// Total simplex pivots performed by this process so far.
pub fn pivot_count() -> u64 {
    PIVOTS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pivots_accumulate() {
        let before = pivot_count();
        record_pivot();
        record_pivot();
        assert!(pivot_count() >= before + 2);
    }
}
