//! Property-based cross-checks of the ILP substrate:
//! simplex vs. the difference-constraint solver vs. brute-force enumeration.

use imagen_ilp::{Cmp, DiffSystem, LinExpr, Model, Rational, Sense};
use proptest::prelude::*;

/// Strategy: a random difference system over `n` variables, biased toward
/// feasible DAG-like systems (edges from lower to higher index).
fn diff_system(n: usize) -> impl Strategy<Value = Vec<(usize, usize, i64)>> {
    let edge = (0..n, 0..n, -20i64..60);
    proptest::collection::vec(edge, 0..12).prop_map(move |edges| {
        edges
            .into_iter()
            .filter(|(u, v, _)| u != v)
            .map(|(u, v, c)| if u > v { (u, v, c) } else { (u, v, c.min(0)) })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The componentwise-minimal solution of a feasible difference system
    /// must match the simplex optimum when minimizing the plain sum of
    /// variables (a monotone objective).
    #[test]
    fn diff_solver_matches_simplex(edges in diff_system(5)) {
        let n = 5;
        let mut sys = DiffSystem::new(n);
        for &(u, v, c) in &edges {
            sys.add_ge(u, v, c);
        }
        let minimal = sys.minimal_solution();

        let mut m = Model::new("prop");
        let vars: Vec<_> = (0..n).map(|i| m.add_int_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        for &v in &vars {
            obj = obj + LinExpr::from(v);
        }
        for &(u, v, c) in &edges {
            m.add_diff_ge(vars[u], vars[v], c, "e");
        }
        m.set_objective(Sense::Minimize, obj);
        let lp = m.solve();

        match (minimal, lp) {
            (Ok(xs), Ok(sol)) => {
                let sum: i64 = xs.iter().sum();
                prop_assert_eq!(Rational::from(sum), sol.objective_value());
                // And the simplex answer must satisfy the system.
                let vals: Vec<i64> = vars.iter().map(|&v| sol.int_value(v)).collect();
                prop_assert!(sys.is_feasible(&vals));
            }
            (Err(_), Err(_)) => {} // both infeasible: consistent
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "solvers disagree on feasibility: diff={a:?} simplex-ok={}",
                    b.is_ok()
                )));
            }
        }
    }

    /// Branch-and-bound must agree with brute-force enumeration on tiny
    /// bounded integer programs.
    #[test]
    fn bnb_matches_bruteforce(
        a in proptest::array::uniform4(-4i64..5),
        b in 0i64..30,
        c in proptest::array::uniform2(-3i64..4),
    ) {
        let ub = 6i64;
        let mut m = Model::new("bf");
        let x = m.add_int_var("x");
        let y = m.add_int_var("y");
        m.set_bounds(x, 0, Some(ub));
        m.set_bounds(y, 0, Some(ub));
        let e1 = LinExpr::from(x) * a[0] + LinExpr::from(y) * a[1];
        let e2 = LinExpr::from(x) * a[2] + LinExpr::from(y) * a[3];
        m.add_constraint(e1, Cmp::Le, b, "c1");
        m.add_constraint(e2, Cmp::Ge, -b, "c2");
        m.set_objective(Sense::Maximize, LinExpr::from(x) * c[0] + LinExpr::from(y) * c[1]);

        // Brute force over the (ub+1)^2 grid.
        let mut best: Option<i64> = None;
        for xv in 0..=ub {
            for yv in 0..=ub {
                let ok1 = a[0] * xv + a[1] * yv <= b;
                let ok2 = a[2] * xv + a[3] * yv >= -b;
                if ok1 && ok2 {
                    let obj = c[0] * xv + c[1] * yv;
                    best = Some(best.map_or(obj, |cur| cur.max(obj)));
                }
            }
        }

        match (best, m.solve()) {
            (Some(bf), Ok(sol)) => prop_assert_eq!(Rational::from(bf), sol.objective_value()),
            (None, Err(_)) => {}
            (bf, sol) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility mismatch: brute={bf:?} solver-ok={}",
                    sol.is_ok()
                )));
            }
        }
    }

    /// Rational arithmetic is a field on small values.
    #[test]
    fn rational_field_axioms(
        an in -50i128..50, ad in 1i128..20,
        bn in -50i128..50, bd in 1i128..20,
        cn in -50i128..50, cd in 1i128..20,
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(a / b * b, a);
        }
        // Ordering consistent with f64 on this range.
        prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
    }

    /// Rational arithmetic near the `i128` extremes: operations either
    /// produce the exact value or refuse (checked `None`) — never a
    /// silently wrapped result.
    #[test]
    fn rational_extreme_magnitudes(pick_a in 0usize..8, pick_b in 0usize..8, d in 1i128..5) {
        const EDGES: [i128; 8] = [
            i128::MIN,
            i128::MIN + 1,
            i128::MIN / 2,
            -1,
            0,
            1,
            i128::MAX / 2,
            i128::MAX,
        ];
        let a = Rational::new(EDGES[pick_a], d);
        let b = Rational::new(EDGES[pick_b], d);

        // Construction invariants: reduced, positive denominator.
        prop_assert!(a.denom() > 0);
        prop_assert!(b.denom() > 0);

        // Self-subtraction is exact even at magnitude 2^127.
        prop_assert_eq!(a.checked_sub(&a), Some(Rational::ZERO));

        // Checked ops round-trip when they succeed.
        if let Some(s) = a.checked_add(&b) {
            prop_assert_eq!(s.checked_sub(&b), Some(a));
        }
        if let Some(p) = a.checked_mul(&b) {
            if !b.is_zero() && b.numer() != i128::MIN {
                prop_assert_eq!(p / b, a);
            }
        }

        // Ordering is total and consistent with sign at the extremes.
        prop_assert_eq!(a < b, b > a);
        prop_assert_eq!(a == b, EDGES[pick_a] == EDGES[pick_b]);
        if a.is_negative() {
            prop_assert!(a < Rational::ZERO);
        }

        // floor/ceil stay in range and bracket the value.
        prop_assert!(Rational::from(a.floor()) <= a);
        prop_assert!(Rational::from(a.ceil()) >= a);
        prop_assert!(a.ceil() - a.floor() <= 1);
    }

    /// floor/ceil/fract are consistent.
    #[test]
    fn rational_floor_ceil(n in -500i128..500, d in 1i128..40) {
        let r = Rational::new(n, d);
        prop_assert!(Rational::from(r.floor()) <= r);
        prop_assert!(Rational::from(r.ceil()) >= r);
        prop_assert!(r.ceil() - r.floor() <= 1);
        let fr = r.fract();
        prop_assert!(fr >= Rational::ZERO && fr < Rational::ONE);
        prop_assert_eq!(Rational::from(r.floor()) + fr, r);
    }
}
