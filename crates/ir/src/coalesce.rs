//! Line-coalescing DAG rewrite (paper Sec. 6, Algo. 1).
//!
//! When a memory block is large enough to hold `g > 1` image rows, several
//! line-buffer rows can be *coalesced* into one block, reducing the block
//! count (and hence SRAM/BRAM area). The paper expresses this to the
//! optimizer by splitting each consumer into "virtual stages" that share a
//! start cycle; in this implementation the virtual stages are the
//! [`ReadPort`]s of an edge — contiguous row groups of at most `g` rows —
//! which share the consumer's start cycle by construction.
//!
//! The split is bounded by the port count `P` of the blocks: a block of
//! `g` rows receives up to `min(height, g)` simultaneous reads from one
//! consumer, so `g` may not exceed `P` (writer traffic is kept off
//! saturated blocks by the scheduler's contention constraints).

use crate::graph::{Dag, EdgeId, ReadPort};

/// Per-buffer coalescing decision: how many rows share one memory block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoalesceFactor(u32);

impl CoalesceFactor {
    /// No coalescing: one row per block.
    pub const NONE: CoalesceFactor = CoalesceFactor(1);

    /// Creates a factor of `g` rows per block.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    #[track_caller]
    pub fn new(g: u32) -> CoalesceFactor {
        assert!(g > 0, "coalescing factor must be at least 1");
        CoalesceFactor(g)
    }

    /// Rows per block.
    pub fn rows_per_block(&self) -> u32 {
        self.0
    }

    /// Whether this factor actually coalesces (`g > 1`).
    pub fn is_coalesced(&self) -> bool {
        self.0 > 1
    }

    /// The legal factor for a block with `ports` ports and capacity for
    /// `rows_fitting` rows of the target image, following Algo. 1's bound
    /// `K = min(P, ·)`.
    pub fn legal(ports: u32, rows_fitting: u32) -> CoalesceFactor {
        CoalesceFactor(ports.min(rows_fitting).max(1))
    }
}

/// Report of one rewritten edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoalescedEdge {
    /// The edge whose ports were split.
    pub edge: EdgeId,
    /// Number of virtual stages (read ports) after the split.
    pub virtual_stages: u32,
}

/// Applies line coalescing to every edge whose producer's buffer uses a
/// coalesced block layout.
///
/// `factor(producer_index)` returns the coalescing factor chosen for each
/// producer's line buffer (e.g. from the memory specification, or from a
/// DSE sweep assigning DP vs. DPLC per stage). Edges reading a coalesced
/// buffer get their window rows re-partitioned into ports of at most `g`
/// rows — the paper's virtual stages (a 3-row window with `g = 2` becomes
/// ports of 2 and 1 rows, matching Fig. 7's `K21`/`K22`).
///
/// Returns the list of rewritten edges.
pub fn apply_line_coalescing(
    dag: &mut Dag,
    factor: impl Fn(usize) -> CoalesceFactor,
) -> Vec<CoalescedEdge> {
    let mut rewritten = Vec::new();
    let edge_ids: Vec<EdgeId> = dag.edges().map(|(id, _)| id).collect();
    for id in edge_ids {
        let e = dag.edge(id);
        let g = factor(e.producer().index());
        if !g.is_coalesced() {
            continue;
        }
        let w = *e.window();
        if w.height <= 1 {
            continue;
        }
        let g = g.rows_per_block();
        // Partition rows [lag, lag + height) into chunks of at most g rows.
        // Chunks are anchored to the window top, mirroring Fig. 7 where the
        // first virtual stage takes the full-block rows and the last takes
        // the remainder.
        let mut ports = Vec::new();
        let mut row = w.lag;
        let end = w.lag + w.height;
        while row < end {
            let h = g.min(end - row);
            ports.push(ReadPort {
                row_offset: row,
                height: h,
            });
            row += h;
        }
        if ports.len() > 1 {
            let n = ports.len() as u32;
            dag.set_edge_ports(id, ports);
            rewritten.push(CoalescedEdge {
                edge: id,
                virtual_stages: n,
            });
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::graph::Dag;

    fn column(slot: usize, h: i32) -> Expr {
        Expr::sum((0..h).map(move |dy| Expr::tap(slot, 0, dy)))
    }

    #[test]
    fn factor_legality() {
        assert_eq!(CoalesceFactor::legal(2, 4).rows_per_block(), 2);
        assert_eq!(CoalesceFactor::legal(2, 1).rows_per_block(), 1);
        assert_eq!(CoalesceFactor::legal(1, 4).rows_per_block(), 1);
        assert!(!CoalesceFactor::NONE.is_coalesced());
    }

    #[test]
    fn fig7_three_rows_two_ports() {
        // Fig. 7: K1 -> K2 with a 3-row window, dual-port blocks holding
        // two rows: K2 splits into virtual stages of heights 2 and 1.
        let mut dag = Dag::new("fig7");
        let k1 = dag.add_input("K1");
        let k2 = dag.add_stage("K2", &[k1], column(0, 3)).unwrap();
        dag.mark_output(k2);
        let rewritten = apply_line_coalescing(&mut dag, |_| CoalesceFactor::new(2));
        assert_eq!(rewritten.len(), 1);
        assert_eq!(rewritten[0].virtual_stages, 2);
        let (_, e) = dag.consumer_edges(k1).next().unwrap();
        assert_eq!(
            e.ports(),
            &[
                ReadPort {
                    row_offset: 0,
                    height: 2
                },
                ReadPort {
                    row_offset: 2,
                    height: 1
                }
            ]
        );
    }

    #[test]
    fn tall_window_chunks_by_factor() {
        // An 18-row window (Xcorr-m's tall stencil) with g=2 -> 9 ports.
        let mut dag = Dag::new("tall");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], column(0, 18)).unwrap();
        dag.mark_output(k1);
        let rewritten = apply_line_coalescing(&mut dag, |_| CoalesceFactor::new(2));
        assert_eq!(rewritten[0].virtual_stages, 9);
        let (_, e) = dag.consumer_edges(k0).next().unwrap();
        assert!(e.ports().iter().all(|p| p.height <= 2));
        let total: u32 = e.ports().iter().map(|p| p.height).sum();
        assert_eq!(total, 18);
    }

    #[test]
    fn single_row_windows_untouched() {
        let mut dag = Dag::new("pt");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], Expr::tap(0, 0, 0)).unwrap();
        dag.mark_output(k1);
        let rewritten = apply_line_coalescing(&mut dag, |_| CoalesceFactor::new(2));
        assert!(rewritten.is_empty());
    }

    #[test]
    fn per_producer_selectivity() {
        // Only K1's buffer is coalesced; K0's stays row-per-block.
        let mut dag = Dag::new("sel");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], column(0, 3)).unwrap();
        let k2 = dag.add_stage("K2", &[k1], column(0, 3)).unwrap();
        dag.mark_output(k2);
        let k1_idx = k1.index();
        let rewritten = apply_line_coalescing(&mut dag, |p| {
            if p == k1_idx {
                CoalesceFactor::new(2)
            } else {
                CoalesceFactor::NONE
            }
        });
        assert_eq!(rewritten.len(), 1);
        let (_, e01) = dag.consumer_edges(k0).next().unwrap();
        assert_eq!(e01.ports().len(), 1);
        let (_, e12) = dag.consumer_edges(k1).next().unwrap();
        assert_eq!(e12.ports().len(), 2);
    }

    #[test]
    fn lagged_windows_partition_from_lag() {
        // A window with lag 1, height 3 partitions rows [1..4).
        let mut dag = Dag::new("lagged");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0, k0],
                Expr::bin(
                    crate::expr::BinOp::Add,
                    column(0, 4),
                    Expr::sum((1..4).map(|dy| Expr::tap(1, 0, dy))),
                ),
            )
            .unwrap();
        dag.mark_output(k1);
        let (_, e) = dag.producer_edges(k1).find(|(_, e)| e.slot() == 1).unwrap();
        assert_eq!(e.window().lag, 1);
        apply_line_coalescing(&mut dag, |_| CoalesceFactor::new(2));
        let (_, e) = dag.producer_edges(k1).find(|(_, e)| e.slot() == 1).unwrap();
        assert_eq!(e.ports()[0].row_offset, 1);
        assert_eq!(e.ports()[0].height, 2);
        assert_eq!(e.ports()[1].row_offset, 3);
        assert_eq!(e.ports()[1].height, 1);
    }
}
