//! Stencil kernel expressions.
//!
//! A [`Kernel`] is the per-output-pixel computation of a pipeline stage: an
//! expression tree over *taps* — reads of producer pixels at fixed offsets
//! `(dx, dy)` from the current raster position. Kernels are produced by the
//! DSL front end (`imagen-dsl`), evaluated by the golden executor and the
//! cycle-level simulator (`imagen-sim`), and translated to Verilog
//! (`imagen-rtl`).
//!
//! Pixel values are modeled as `i64` throughout the software stack; the
//! hardware uses fixed-width integers, and the RTL generator sizes
//! intermediates accordingly.

use std::fmt;

/// Binary arithmetic operators available to kernels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division (rounds toward zero; division by zero yields zero,
    /// matching the generated hardware's guarded divider).
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic shift left. Out-of-range amounts (`< 0` or `> 63`)
    /// follow the emitted Verilog's `<<<`: the amount is treated as
    /// unsigned, so the result is `0` (see [`Expr::eval`]).
    Shl,
    /// Arithmetic shift right. Out-of-range amounts (`< 0` or `> 63`)
    /// follow the emitted Verilog's `>>>`: the result is the sign fill
    /// (`0` or `-1`; see [`Expr::eval`]).
    Shr,
}

impl BinOp {
    /// Operator mnemonic used by the pretty printer and RTL generator.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// Comparison operators (produce `1` for true, `0` for false).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Operator mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Applies the comparison.
    pub fn apply(&self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A kernel expression node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// A producer tap: pixel `(x + dx, y + dy)` of the `slot`-th producer
    /// of the stage (slots index the stage's producer list).
    Tap {
        /// Index into the owning stage's producer list.
        slot: usize,
        /// Horizontal offset from the current raster position.
        dx: i32,
        /// Vertical offset from the current raster position.
        dy: i32,
    },
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing `0` or `1`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `if cond != 0 { then } else { otherwise }`.
    Select {
        /// Condition (nonzero = true).
        cond: Box<Expr>,
        /// Value when the condition is nonzero.
        then: Box<Expr>,
        /// Value when the condition is zero.
        otherwise: Box<Expr>,
    },
    /// `clamp(value, lo, hi)` with `lo <= hi` enforced at evaluation.
    Clamp {
        /// Value being clamped.
        value: Box<Expr>,
        /// Lower limit.
        lo: Box<Expr>,
        /// Upper limit.
        hi: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a tap of producer `slot` at offset `(dx, dy)`.
    pub fn tap(slot: usize, dx: i32, dy: i32) -> Expr {
        Expr::Tap { slot, dx, dy }
    }

    /// Shorthand for a binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Shorthand for a comparison node.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Shorthand for a select node.
    pub fn select(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    /// Sum of a sequence of expressions (zero if empty).
    pub fn sum<I: IntoIterator<Item = Expr>>(items: I) -> Expr {
        let mut it = items.into_iter();
        let first = it.next().unwrap_or(Expr::Const(0));
        it.fold(first, |acc, e| Expr::bin(BinOp::Add, acc, e))
    }

    /// Evaluates the kernel. `fetch(slot, dx, dy)` supplies tap values.
    ///
    /// Arithmetic is wrapping on `i64` (far wider than the 16-bit pixel
    /// datapath, so real kernels never wrap); division by zero yields
    /// zero. Shift amounts follow the emitted Verilog's `<<<`/`>>>`
    /// semantics on a 64-bit datapath: the amount is treated as
    /// unsigned, so negative or `> 63` amounts shift everything out —
    /// `0` for `<<`, the sign fill (`0`/`-1`) for `>>`. (The model
    /// formerly clamped amounts to `0..=62`, silently diverging from
    /// the generated hardware; the hardware behavior is the pinned one.)
    pub fn eval(&self, fetch: &mut impl FnMut(usize, i32, i32) -> i64) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Tap { slot, dx, dy } => fetch(*slot, *dx, *dy),
            Expr::Neg(e) => e.eval(fetch).wrapping_neg(),
            Expr::Abs(e) => e.eval(fetch).wrapping_abs(),
            Expr::Bin(op, a, b) => {
                let a = a.eval(fetch);
                let b = b.eval(fetch);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Shl => {
                        if (0..64).contains(&b) {
                            a.wrapping_shl(b as u32)
                        } else {
                            0
                        }
                    }
                    BinOp::Shr => {
                        let amt = if (0..64).contains(&b) { b as u32 } else { 63 };
                        a.wrapping_shr(amt)
                    }
                }
            }
            Expr::Cmp(op, a, b) => {
                let a = a.eval(fetch);
                let b = b.eval(fetch);
                i64::from(op.apply(a, b))
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                if cond.eval(fetch) != 0 {
                    then.eval(fetch)
                } else {
                    otherwise.eval(fetch)
                }
            }
            Expr::Clamp { value, lo, hi } => {
                let v = value.eval(fetch);
                let lo = lo.eval(fetch);
                let hi = hi.eval(fetch);
                if lo > hi {
                    lo
                } else {
                    v.clamp(lo, hi)
                }
            }
        }
    }

    /// Visits every tap in the expression.
    pub fn for_each_tap(&self, f: &mut impl FnMut(usize, i32, i32)) {
        match self {
            Expr::Const(_) => {}
            Expr::Tap { slot, dx, dy } => f(*slot, *dx, *dy),
            Expr::Neg(e) | Expr::Abs(e) => e.for_each_tap(f),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.for_each_tap(f);
                b.for_each_tap(f);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                cond.for_each_tap(f);
                then.for_each_tap(f);
                otherwise.for_each_tap(f);
            }
            Expr::Clamp { value, lo, hi } => {
                value.for_each_tap(f);
                lo.for_each_tap(f);
                hi.for_each_tap(f);
            }
        }
    }

    /// Rewrites every tap through `f`, returning the transformed expression.
    pub fn map_taps(&self, f: &impl Fn(usize, i32, i32) -> Expr) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Tap { slot, dx, dy } => f(*slot, *dx, *dy),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_taps(f))),
            Expr::Abs(e) => Expr::Abs(Box::new(e.map_taps(f))),
            Expr::Bin(op, a, b) => Expr::bin(*op, a.map_taps(f), b.map_taps(f)),
            Expr::Cmp(op, a, b) => Expr::cmp(*op, a.map_taps(f), b.map_taps(f)),
            Expr::Select {
                cond,
                then,
                otherwise,
            } => Expr::select(cond.map_taps(f), then.map_taps(f), otherwise.map_taps(f)),
            Expr::Clamp { value, lo, hi } => Expr::Clamp {
                value: Box::new(value.map_taps(f)),
                lo: Box::new(lo.map_taps(f)),
                hi: Box::new(hi.map_taps(f)),
            },
        }
    }

    /// Tap bounding box per producer slot: `(dx_min, dx_max, dy_min, dy_max)`.
    ///
    /// Returns a vector indexed by slot covering `0..=max_slot`; slots with
    /// no taps get `None`.
    pub fn tap_extents(&self) -> Vec<Option<TapExtent>> {
        let mut out: Vec<Option<TapExtent>> = Vec::new();
        self.for_each_tap(&mut |slot, dx, dy| {
            if out.len() <= slot {
                out.resize(slot + 1, None);
            }
            let e = out[slot].get_or_insert(TapExtent {
                dx_min: dx,
                dx_max: dx,
                dy_min: dy,
                dy_max: dy,
            });
            e.dx_min = e.dx_min.min(dx);
            e.dx_max = e.dx_max.max(dx);
            e.dy_min = e.dy_min.min(dy);
            e.dy_max = e.dy_max.max(dy);
        });
        out
    }

    /// Counts operations by kind, for PE area/power estimation.
    pub fn op_census(&self) -> OpCensus {
        let mut c = OpCensus::default();
        self.census_into(&mut c);
        c
    }

    fn census_into(&self, c: &mut OpCensus) {
        match self {
            Expr::Const(_) => {}
            Expr::Tap { .. } => c.taps += 1,
            Expr::Neg(e) | Expr::Abs(e) => {
                c.adds += 1;
                e.census_into(c);
            }
            Expr::Bin(op, a, b) => {
                match op {
                    BinOp::Mul => c.muls += 1,
                    BinOp::Div => c.divs += 1,
                    _ => c.adds += 1,
                }
                a.census_into(c);
                b.census_into(c);
            }
            Expr::Cmp(_, a, b) => {
                c.cmps += 1;
                a.census_into(c);
                b.census_into(c);
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                c.muxes += 1;
                cond.census_into(c);
                then.census_into(c);
                otherwise.census_into(c);
            }
            Expr::Clamp { value, lo, hi } => {
                c.cmps += 2;
                c.muxes += 2;
                value.census_into(c);
                lo.census_into(c);
                hi.census_into(c);
            }
        }
    }
}

/// Tap bounding box of one producer slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TapExtent {
    /// Smallest horizontal offset.
    pub dx_min: i32,
    /// Largest horizontal offset.
    pub dx_max: i32,
    /// Smallest vertical offset.
    pub dy_min: i32,
    /// Largest vertical offset.
    pub dy_max: i32,
}

impl TapExtent {
    /// Stencil window height `dy_max - dy_min + 1`.
    pub fn height(&self) -> u32 {
        (self.dy_max - self.dy_min + 1) as u32
    }

    /// Stencil window width `dx_max - dx_min + 1`.
    pub fn width(&self) -> u32 {
        (self.dx_max - self.dx_min + 1) as u32
    }
}

/// Operation counts of a kernel, used for PE area/power estimation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpCensus {
    /// Producer taps (register reads from the shift-register array).
    pub taps: usize,
    /// Adders/subtractors (incl. neg/abs/min/max/shifts).
    pub adds: usize,
    /// Multipliers.
    pub muls: usize,
    /// Dividers.
    pub divs: usize,
    /// Comparators.
    pub cmps: usize,
    /// Multiplexers.
    pub muxes: usize,
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Tap { slot, dx, dy } => write!(f, "in{slot}(x{dx:+},y{dy:+})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Abs(e) => write!(f, "abs({e})"),
            Expr::Bin(op, a, b) => match op {
                BinOp::Min | BinOp::Max => write!(f, "{}({a}, {b})", op.mnemonic()),
                _ => write!(f, "({a} {} {b})", op.mnemonic()),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.mnemonic()),
            Expr::Select {
                cond,
                then,
                otherwise,
            } => write!(f, "select({cond}, {then}, {otherwise})"),
            Expr::Clamp { value, lo, hi } => write!(f, "clamp({value}, {lo}, {hi})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: i64) -> impl FnMut(usize, i32, i32) -> i64 {
        move |_, _, _| v
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Const(3), Expr::Const(4)),
            Expr::Const(5),
        );
        assert_eq!(e.eval(&mut flat(0)), 17);
    }

    #[test]
    fn eval_taps_positional() {
        let e = Expr::bin(BinOp::Sub, Expr::tap(0, 1, 0), Expr::tap(0, -1, 0));
        let mut fetch = |_s: usize, dx: i32, _dy: i32| (dx * 10) as i64;
        assert_eq!(e.eval(&mut fetch), 20);
    }

    #[test]
    fn eval_division_guards() {
        let e = Expr::bin(BinOp::Div, Expr::Const(7), Expr::Const(0));
        assert_eq!(e.eval(&mut flat(0)), 0);
        let e = Expr::bin(BinOp::Div, Expr::Const(-7), Expr::Const(2));
        assert_eq!(e.eval(&mut flat(0)), -3);
    }

    #[test]
    fn eval_select_and_cmp() {
        let e = Expr::select(
            Expr::cmp(CmpOp::Gt, Expr::tap(0, 0, 0), Expr::Const(10)),
            Expr::Const(1),
            Expr::Const(2),
        );
        assert_eq!(e.eval(&mut flat(20)), 1);
        assert_eq!(e.eval(&mut flat(5)), 2);
    }

    #[test]
    fn eval_clamp() {
        let e = Expr::Clamp {
            value: Box::new(Expr::tap(0, 0, 0)),
            lo: Box::new(Expr::Const(0)),
            hi: Box::new(Expr::Const(255)),
        };
        assert_eq!(e.eval(&mut flat(300)), 255);
        assert_eq!(e.eval(&mut flat(-5)), 0);
        assert_eq!(e.eval(&mut flat(42)), 42);
    }

    #[test]
    fn extents_cover_all_slots() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::tap(0, -1, -1),
            Expr::bin(BinOp::Add, Expr::tap(0, 1, 1), Expr::tap(1, 0, 2)),
        );
        let ex = e.tap_extents();
        assert_eq!(ex.len(), 2);
        let e0 = ex[0].unwrap();
        assert_eq!((e0.dx_min, e0.dx_max, e0.dy_min, e0.dy_max), (-1, 1, -1, 1));
        assert_eq!(e0.height(), 3);
        assert_eq!(e0.width(), 3);
        let e1 = ex[1].unwrap();
        assert_eq!(e1.height(), 1);
    }

    #[test]
    fn map_taps_shifts_offsets() {
        let e = Expr::tap(0, 2, 3);
        let shifted = e.map_taps(&|slot, dx, dy| Expr::tap(slot, dx - 2, dy - 3));
        assert_eq!(shifted, Expr::tap(0, 0, 0));
    }

    #[test]
    fn census_counts() {
        // 3x3 sum: 9 taps, 8 adds.
        let taps = (0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1));
        let e = Expr::sum(taps);
        let c = e.op_census();
        assert_eq!(c.taps, 9);
        assert_eq!(c.adds, 8);
        assert_eq!(c.muls, 0);
    }

    #[test]
    fn sum_of_empty_is_zero() {
        assert_eq!(Expr::sum(std::iter::empty()), Expr::Const(0));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::bin(BinOp::Add, Expr::tap(0, -1, 0), Expr::Const(2));
        assert_eq!(e.to_string(), "(in0(x-1,y+0) + 2)");
    }

    #[test]
    fn shift_semantics_match_verilog() {
        let shl = |a: i64, b: i64| Expr::bin(BinOp::Shl, Expr::Const(a), Expr::Const(b));
        let shr = |a: i64, b: i64| Expr::bin(BinOp::Shr, Expr::Const(a), Expr::Const(b));
        // In-range amounts shift normally.
        assert_eq!(shl(1, 4).eval(&mut flat(0)), 16);
        assert_eq!(shr(1024, 3).eval(&mut flat(0)), 128);
        assert_eq!(shr(-8, 1).eval(&mut flat(0)), -4, "arithmetic shift");
        assert_eq!(shl(1, 63).eval(&mut flat(0)), i64::MIN);
        assert_eq!(shr(i64::MIN, 63).eval(&mut flat(0)), -1);
        // Out-of-range amounts behave like Verilog's `<<<`/`>>>` with an
        // unsigned amount: everything shifts out.
        for amt in [64, 100, i64::MAX, -1, -100, i64::MIN] {
            assert_eq!(shl(1024, amt).eval(&mut flat(0)), 0, "shl by {amt}");
            assert_eq!(shr(1024, amt).eval(&mut flat(0)), 0, "shr(+) by {amt}");
            assert_eq!(shr(-1024, amt).eval(&mut flat(0)), -1, "shr(-) by {amt}");
        }
    }
}
