//! The pipeline DAG: stages, producer→consumer edges, stencil windows.
//!
//! Stages are appended in topological order by construction (a stage's
//! producers must already exist), so stage indices double as a topological
//! order and acyclicity holds by construction.
//!
//! # Window normalization
//!
//! Kernels may tap producers at arbitrary offsets (e.g. a centered 3×3
//! window uses `dy ∈ [-1, 1]`). At construction every stage is normalized
//! by a global shift so that all taps satisfy `dy >= 0` and `dx <= 0`:
//! the newest pixel any tap needs at raster step `k` then has producer
//! index at most `k + (lag + height - 1) * W`, which is exactly the form
//! the ImaGen scheduling constraints (Equ. 1b, Equ. 12) expect. The shift
//! only relabels output coordinates; both the golden executor and the
//! cycle-level simulator use the same normalized semantics, so functional
//! comparisons are exact.

use crate::expr::{Expr, TapExtent};
use std::fmt;

/// Identifier of a stage within a [`Dag`].
///
/// Stage ids are dense indices assigned in insertion (= topological) order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StageId(pub(crate) usize);

impl StageId {
    /// Dense index of the stage (also its topological position).
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds a stage id from a dense index (callers must ensure the index
    /// is valid for the DAG it will be used with).
    pub fn from_index(index: usize) -> StageId {
        StageId(index)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Identifier of an edge within a [`Dag`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Dense index of the edge.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds an edge id from a dense index (callers must ensure the index
    /// is valid for the DAG it will be used with).
    pub fn from_index(index: usize) -> EdgeId {
        EdgeId(index)
    }
}

/// Per-stage resampling rate, relative to the stage's producers.
///
/// A `Down { fx, fy }` stage emits one output pixel per `fx × fy` block
/// of its producers' grid; an `Up { fx, fy }` stage emits `fx × fy`
/// output pixels per producer pixel (nearest-neighbour expansion of the
/// tap coordinates — the kernel still sees arbitrary stencil offsets in
/// the *producer* grid). `Unit` is the classic fixed-rate stage; every
/// pre-multirate pipeline is all-`Unit` by construction.
///
/// Rates compose down the DAG into a per-stage *cumulative scale*
/// (see [`Dag::stage_scales`]): the factor between the base (input)
/// grid and the stage's own grid on each axis. All producers of a stage
/// must sit at the same cumulative scale ([`IrError::RateMismatch`]
/// otherwise), and upsampling must never rise above the base grid
/// ([`IrError::UpsampleAboveBase`]) — the accelerator streams at most
/// one pixel per cycle per stage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rate {
    /// Same grid as the producers (the implicit pre-multirate rate).
    Unit,
    /// Emit one pixel per `fx × fy` producer block (decimation).
    Down {
        /// Horizontal factor (`>= 1`).
        fx: u32,
        /// Vertical factor (`>= 1`).
        fy: u32,
    },
    /// Emit `fx × fy` pixels per producer pixel (expansion).
    Up {
        /// Horizontal factor (`>= 1`).
        fx: u32,
        /// Vertical factor (`>= 1`).
        fy: u32,
    },
}

impl Rate {
    /// Whether this is the unit rate.
    pub fn is_unit(&self) -> bool {
        matches!(self, Rate::Unit)
    }

    /// `(fx, fy)` factors; `(1, 1)` for the unit rate.
    pub fn factors(&self) -> (u32, u32) {
        match *self {
            Rate::Unit => (1, 1),
            Rate::Down { fx, fy } | Rate::Up { fx, fy } => (fx, fy),
        }
    }

    /// Canonical form: factor-1 `Down`/`Up` collapse to `Unit`, so the
    /// same hardware has one spelling (and one fingerprint).
    pub fn normalized(self) -> Rate {
        match self {
            Rate::Down { fx: 1, fy: 1 } | Rate::Up { fx: 1, fy: 1 } => Rate::Unit,
            r => r,
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::Unit => write!(f, "1:1"),
            Rate::Down { fx, fy } => write!(f, "down({fx},{fy})"),
            Rate::Up { fx, fy } => write!(f, "up({fx},{fy})"),
        }
    }
}

/// Largest accepted rate factor (and cumulative scale) on one axis,
/// `2^20` — the same plausibility bound as [`MAX_WINDOW_SPAN`]. Factors
/// of `0` or beyond this are rejected with [`IrError::RateOutOfRange`]
/// before any scale arithmetic can wrap.
pub const MAX_RATE_FACTOR: u64 = 1 << 20;

/// What a stage does.
#[derive(Clone, PartialEq, Debug)]
pub enum StageKind {
    /// Pipeline input: streams pixels from the (double-buffered) input
    /// buffer; has no producers.
    Input,
    /// A stencil compute stage evaluating `kernel` once per output pixel.
    Compute {
        /// The per-pixel expression (normalized offsets).
        kernel: Expr,
    },
}

/// Provenance of a stage (used by transforms and reporting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Origin {
    /// Authored by the user program.
    User,
    /// Dummy relay stage inserted by Darkroom-style linearization; mirrors
    /// the read pattern of the referenced stage.
    Relay {
        /// The sibling consumer whose read pattern this relay mirrors.
        mirrors: StageId,
    },
}

/// A pipeline stage.
#[derive(Clone, Debug)]
pub struct Stage {
    pub(crate) name: String,
    pub(crate) kind: StageKind,
    pub(crate) producers: Vec<StageId>,
    pub(crate) is_output: bool,
    pub(crate) origin: Origin,
    /// Normalization shift `(sx, sy)` applied to the user's tap offsets:
    /// stored taps are `(dx - sx, dy + sy)` of the authored ones.
    pub(crate) norm_shift: (i32, i32),
    pub(crate) sync_group: Option<u32>,
    /// Resampling rate relative to the producers (always canonical,
    /// see [`Rate::normalized`]).
    pub(crate) rate: Rate,
}

impl Stage {
    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stage kind.
    pub fn kind(&self) -> &StageKind {
        &self.kind
    }

    /// Producer stages, in tap-slot order.
    pub fn producers(&self) -> &[StageId] {
        &self.producers
    }

    /// Whether this stage writes the pipeline output buffer.
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Whether this is the pipeline input stage.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, StageKind::Input)
    }

    /// Stage provenance.
    pub fn origin(&self) -> Origin {
        self.origin
    }

    /// The kernel, if this is a compute stage.
    pub fn kernel(&self) -> Option<&Expr> {
        match &self.kind {
            StageKind::Compute { kernel } => Some(kernel),
            StageKind::Input => None,
        }
    }

    /// Normalization shift `(sx, sy)` applied to authored tap offsets.
    pub fn norm_shift(&self) -> (i32, i32) {
        self.norm_shift
    }

    /// Start-cycle synchronization group, if any (stages in the same group
    /// are constrained to start at the same cycle).
    pub fn sync_group(&self) -> Option<u32> {
        self.sync_group
    }

    /// Resampling rate relative to this stage's producers.
    pub fn rate(&self) -> Rate {
        self.rate
    }
}

/// The stencil window of one producer→consumer edge, in normalized
/// coordinates.
///
/// At raster step `k = (y, x)` the consumer reads producer rows
/// `y + lag .. y + lag + height - 1` (one column per cycle; horizontal
/// context lives in the shift-register array spanning `dx_min ..= dx_max`,
/// with `dx_max <= 0`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Window {
    /// First row offset read below the consumer anchor (`>= 0`).
    pub lag: u32,
    /// Number of consecutive rows read (`>= 1`). The paper's stencil
    /// height `SH` equals `height`; `lag` is zero except for
    /// multi-producer stages with mismatched anchors.
    pub height: u32,
    /// Leftmost horizontal tap (`<= dx_max`).
    pub dx_min: i32,
    /// Rightmost horizontal tap (`<= 0` after normalization).
    pub dx_max: i32,
}

impl Window {
    /// Window covering a single pixel.
    pub fn point() -> Window {
        Window {
            lag: 0,
            height: 1,
            dx_min: 0,
            dx_max: 0,
        }
    }

    /// Stencil width in columns.
    pub fn width(&self) -> u32 {
        (self.dx_max - self.dx_min + 1) as u32
    }

    /// Newest row offset read: `lag + height - 1` (the paper's `SH - 1`
    /// when `lag == 0`).
    pub fn newest_row(&self) -> u32 {
        self.lag + self.height - 1
    }

    fn from_extent(e: &TapExtent) -> Window {
        debug_assert!(e.dy_min >= 0 && e.dx_max <= 0);
        Window {
            lag: e.dy_min as u32,
            height: e.height(),
            dx_min: e.dx_min,
            dx_max: e.dx_max,
        }
    }
}

/// One contiguous group of window rows read through a single memory port.
///
/// An un-coalesced edge has exactly one port covering the whole window.
/// Line coalescing (paper Sec. 6 / Algo. 1) splits the window into several
/// ports — the "virtual stages" — each confined to one memory block's rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadPort {
    /// First row offset (from the consumer anchor) this port reads.
    pub row_offset: u32,
    /// Number of consecutive rows this port reads.
    pub height: u32,
}

/// A producer→consumer data edge.
#[derive(Clone, Debug)]
pub struct Edge {
    pub(crate) producer: StageId,
    pub(crate) consumer: StageId,
    /// Tap slot in the consumer's kernel referring to this producer.
    pub(crate) slot: usize,
    pub(crate) window: Window,
    pub(crate) ports: Vec<ReadPort>,
}

impl Edge {
    /// The producing stage.
    pub fn producer(&self) -> StageId {
        self.producer
    }

    /// The consuming stage.
    pub fn consumer(&self) -> StageId {
        self.consumer
    }

    /// The consumer's tap slot served by this edge.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The stencil window.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Read ports (one for plain edges; several after line coalescing).
    pub fn ports(&self) -> &[ReadPort] {
        &self.ports
    }
}

/// Errors raised while building or validating a [`Dag`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IrError {
    /// A kernel tap referenced a slot with no corresponding producer.
    UnknownSlot {
        /// Offending stage name.
        stage: String,
        /// The out-of-range slot.
        slot: usize,
        /// Number of producers declared.
        producers: usize,
    },
    /// A producer id did not exist at stage construction time.
    UnknownProducer {
        /// Offending stage name.
        stage: String,
    },
    /// A declared producer is never tapped by the kernel.
    UnreadProducer {
        /// Offending stage name.
        stage: String,
        /// The unread slot.
        slot: usize,
    },
    /// The DAG has no output stage.
    NoOutput,
    /// The DAG has no input stage.
    NoInput,
    /// A non-output stage has no consumers (dead code).
    DeadStage {
        /// Name of the dead stage.
        stage: String,
    },
    /// A stage name was used twice.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A kernel's tap span exceeds [`MAX_WINDOW_SPAN`] on some axis.
    ///
    /// Arbitrary `i32` offsets are accepted per tap, but the *span* —
    /// `max - min + 1` over a stage's taps, which sizes windows, shift
    /// register arrays and line buffers — must stay within a hardware
    /// plausibility bound, both to reject nonsense programs early and to
    /// keep all downstream `i32`/`u32` window arithmetic overflow-free.
    WindowTooLarge {
        /// Offending stage name.
        stage: String,
        /// The offending span (columns or rows).
        span: u64,
    },
    /// A rate factor (or the cumulative scale it produces) is `0` or
    /// exceeds [`MAX_RATE_FACTOR`] on some axis.
    RateOutOfRange {
        /// Offending stage name.
        stage: String,
        /// The offending factor or cumulative scale.
        factor: u64,
    },
    /// The producers of a stage sit at different cumulative scales, so
    /// the stage's taps would mix grids of different resolution.
    RateMismatch {
        /// Offending stage name.
        stage: String,
    },
    /// An `up(..)` stage would rise above the base (input) grid, which
    /// needs more than one pixel per cycle.
    UpsampleAboveBase {
        /// Offending stage name.
        stage: String,
    },
}

/// Largest accepted stencil span (columns or rows) of a single stage,
/// `2^20`. A window this size already dwarfs any real frame; beyond it,
/// [`Dag::add_stage`] returns [`IrError::WindowTooLarge`] instead of
/// risking `i32` overflow in normalization and window arithmetic.
pub const MAX_WINDOW_SPAN: u64 = 1 << 20;

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownSlot {
                stage,
                slot,
                producers,
            } => write!(
                f,
                "stage `{stage}` taps slot {slot} but declares only {producers} producer(s)"
            ),
            IrError::UnknownProducer { stage } => {
                write!(
                    f,
                    "stage `{stage}` references a producer that does not exist"
                )
            }
            IrError::UnreadProducer { stage, slot } => {
                write!(
                    f,
                    "stage `{stage}` never reads its declared producer {slot}"
                )
            }
            IrError::NoOutput => write!(f, "pipeline has no output stage"),
            IrError::NoInput => write!(f, "pipeline has no input stage"),
            IrError::DeadStage { stage } => {
                write!(f, "stage `{stage}` has no consumers and is not an output")
            }
            IrError::DuplicateName { name } => {
                write!(f, "stage name `{name}` is used more than once")
            }
            IrError::WindowTooLarge { stage, span } => {
                write!(
                    f,
                    "stage `{stage}` spans {span} rows/columns, above the supported {MAX_WINDOW_SPAN}"
                )
            }
            IrError::RateOutOfRange { stage, factor } => {
                write!(
                    f,
                    "stage `{stage}` has rate factor {factor}, outside the supported 1..={MAX_RATE_FACTOR}"
                )
            }
            IrError::RateMismatch { stage } => {
                write!(
                    f,
                    "stage `{stage}` taps producers at different cumulative rates"
                )
            }
            IrError::UpsampleAboveBase { stage } => {
                write!(
                    f,
                    "stage `{stage}` upsamples above the base input grid (more than one pixel per cycle)"
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

/// An image-processing pipeline as a DAG of stencil stages.
///
/// # Examples
///
/// The paper's running example (Fig. 1): `K0 → K1 → K2`, with `K2` also
/// reading `K0` directly:
///
/// ```
/// use imagen_ir::{Dag, Expr, BinOp};
///
/// let mut dag = Dag::new("fig1");
/// let k0 = dag.add_input("K0");
/// let k1 = dag.add_stage("K1", &[k0], Expr::sum(
///     (0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1)),
/// ))?;
/// let k2 = dag.add_stage("K2", &[k0, k1], Expr::bin(
///     BinOp::Add,
///     Expr::tap(0, 0, 0),
///     Expr::sum((0..9).map(|i| Expr::tap(1, i % 3 - 1, i / 3 - 1))),
/// ))?;
/// dag.mark_output(k2);
/// dag.validate()?;
/// assert_eq!(dag.num_stages(), 3);
/// assert_eq!(dag.multi_consumer_stages(), vec![k0]);
/// # Ok::<(), imagen_ir::IrError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Dag {
    name: String,
    stages: Vec<Stage>,
    edges: Vec<Edge>,
    next_sync_group: u32,
}

impl Dag {
    /// Creates an empty pipeline.
    pub fn new(name: impl Into<String>) -> Dag {
        Dag {
            name: name.into(),
            stages: Vec::new(),
            edges: Vec::new(),
            next_sync_group: 0,
        }
    }

    /// Pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the pipeline.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds an input stage (no producers).
    pub fn add_input(&mut self, name: impl Into<String>) -> StageId {
        self.stages.push(Stage {
            name: name.into(),
            kind: StageKind::Input,
            producers: Vec::new(),
            is_output: false,
            origin: Origin::User,
            norm_shift: (0, 0),
            sync_group: None,
            rate: Rate::Unit,
        });
        StageId(self.stages.len() - 1)
    }

    /// Adds a compute stage reading `producers` through `kernel`.
    ///
    /// The kernel's tap offsets may be arbitrary; they are normalized here
    /// (see module docs). Producers must already exist, which keeps the
    /// graph acyclic by construction.
    ///
    /// # Errors
    ///
    /// [`IrError::UnknownSlot`], [`IrError::UnknownProducer`], or
    /// [`IrError::UnreadProducer`].
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        producers: &[StageId],
        kernel: Expr,
    ) -> Result<StageId, IrError> {
        self.add_stage_full(name, producers, kernel, Origin::User, &[])
    }

    /// Adds a compute stage with an explicit resampling [`Rate`].
    ///
    /// # Errors
    ///
    /// Everything [`Dag::add_stage`] raises, plus
    /// [`IrError::RateOutOfRange`], [`IrError::RateMismatch`] and
    /// [`IrError::UpsampleAboveBase`].
    pub fn add_stage_rated(
        &mut self,
        name: impl Into<String>,
        producers: &[StageId],
        kernel: Expr,
        rate: Rate,
    ) -> Result<StageId, IrError> {
        self.add_stage_rated_full(name, producers, kernel, rate, Origin::User, &[])
    }

    /// Adds a compute stage with explicit per-slot window overrides.
    ///
    /// `window_overrides` pairs `(slot, window)` force an edge's window to
    /// be at least the given shape (used by linearization relays, which
    /// must *read* in their mirrored sibling's pattern even though their
    /// kernel only forwards a single tap). Overrides are given in
    /// normalized coordinates and must contain the kernel's own extent.
    ///
    /// # Errors
    ///
    /// Same as [`Dag::add_stage`].
    pub fn add_stage_full(
        &mut self,
        name: impl Into<String>,
        producers: &[StageId],
        kernel: Expr,
        origin: Origin,
        window_overrides: &[(usize, Window)],
    ) -> Result<StageId, IrError> {
        self.add_stage_rated_full(name, producers, kernel, Rate::Unit, origin, window_overrides)
    }

    /// The full constructor: explicit rate, origin and window overrides.
    ///
    /// # Errors
    ///
    /// See [`Dag::add_stage`] and [`Dag::add_stage_rated`].
    pub fn add_stage_rated_full(
        &mut self,
        name: impl Into<String>,
        producers: &[StageId],
        kernel: Expr,
        rate: Rate,
        origin: Origin,
        window_overrides: &[(usize, Window)],
    ) -> Result<StageId, IrError> {
        let name = name.into();
        let rate = rate.normalized();
        // Rate factors are bounded before any scale arithmetic.
        {
            let (fx, fy) = rate.factors();
            for f in [fx as u64, fy as u64] {
                if f == 0 || f > MAX_RATE_FACTOR {
                    return Err(IrError::RateOutOfRange {
                        stage: name,
                        factor: f,
                    });
                }
            }
        }
        for p in producers {
            if p.0 >= self.stages.len() {
                return Err(IrError::UnknownProducer { stage: name });
            }
        }

        // Rate composition: all producers must sit at one cumulative
        // scale, and this stage's own scale must stay within
        // `1..=MAX_RATE_FACTOR` on both axes (an `up` below 1 would need
        // more than one pixel per cycle; a runaway `down` chain is as
        // implausible as an oversized window).
        if !producers.is_empty() {
            let scales = self.stage_scales();
            let base = scales[producers[0].0];
            if producers.iter().any(|p| scales[p.0] != base) {
                return Err(IrError::RateMismatch { stage: name });
            }
            let (fx, fy) = rate.factors();
            let scale = match rate {
                Rate::Unit => base,
                Rate::Down { .. } => (base.0 * fx as u64, base.1 * fy as u64),
                Rate::Up { .. } => {
                    if base.0 % fx as u64 != 0 || base.1 % fy as u64 != 0 {
                        return Err(IrError::UpsampleAboveBase { stage: name });
                    }
                    (base.0 / fx as u64, base.1 / fy as u64)
                }
            };
            for s in [scale.0, scale.1] {
                if s > MAX_RATE_FACTOR {
                    return Err(IrError::RateOutOfRange {
                        stage: name,
                        factor: s,
                    });
                }
            }
        }

        // Normalize: global shift so that dy >= 0 and dx <= 0 for all taps.
        let extents = kernel.tap_extents();
        for (slot, e) in extents.iter().enumerate() {
            if e.is_some() && slot >= producers.len() {
                return Err(IrError::UnknownSlot {
                    stage: name,
                    slot,
                    producers: producers.len(),
                });
            }
        }
        for slot in 0..producers.len() {
            if extents.get(slot).copied().flatten().is_none() {
                return Err(IrError::UnreadProducer { stage: name, slot });
            }
        }
        // Reject absurd stencil spans before any i32 window arithmetic
        // (normalization shifts, `width()`/`height()` casts) can overflow.
        // The span is global over slots because normalization applies one
        // global shift.
        // The raster anchor (offset 0) is part of the physical window, so
        // the hull includes it on every side.
        {
            let mut xl = 0i64;
            let mut xh = 0i64;
            let mut yl = 0i64;
            let mut yh = 0i64;
            for e in extents.iter().flatten() {
                xl = xl.min(e.dx_min as i64);
                xh = xh.max(e.dx_max as i64);
                yl = yl.min(e.dy_min as i64);
                yh = yh.max(e.dy_max as i64);
            }
            let span = ((xh - xl) as u64 + 1).max((yh - yl) as u64 + 1);
            if span > MAX_WINDOW_SPAN {
                return Err(IrError::WindowTooLarge { stage: name, span });
            }
        }
        let sy = extents
            .iter()
            .flatten()
            .map(|e| e.dy_min)
            .min()
            .unwrap_or(0)
            .min(0);
        let sx = extents
            .iter()
            .flatten()
            .map(|e| e.dx_max)
            .max()
            .unwrap_or(0)
            .max(0);
        let kernel = if sy != 0 || sx != 0 {
            kernel.map_taps(&|slot, dx, dy| Expr::tap(slot, dx - sx, dy - sy))
        } else {
            kernel
        };
        let extents = kernel.tap_extents();

        let id = StageId(self.stages.len());
        for (slot, p) in producers.iter().enumerate() {
            let mut window = Window::from_extent(
                extents[slot]
                    .as_ref()
                    .expect("validated above: every slot has taps"),
            );
            if let Some((_, w)) = window_overrides.iter().find(|(s, _)| *s == slot) {
                debug_assert!(
                    w.lag <= window.lag && w.newest_row() >= window.newest_row(),
                    "window override must contain the kernel extent"
                );
                window = *w;
            }
            self.edges.push(Edge {
                producer: *p,
                consumer: id,
                slot,
                window,
                ports: vec![ReadPort {
                    row_offset: window.lag,
                    height: window.height,
                }],
            });
        }
        self.stages.push(Stage {
            name,
            kind: StageKind::Compute { kernel },
            producers: producers.to_vec(),
            is_output: false,
            origin,
            norm_shift: (sx, sy),
            sync_group: None,
            rate,
        });
        Ok(id)
    }

    /// Per-stage cumulative scale `(sx, sy)`: the factor between the
    /// base (input) grid and the stage's own grid on each axis. Input
    /// stages are `(1, 1)`; a `down(2,2)` stage below them is `(2, 2)`
    /// (its frame is a quarter of the base frame). Scale consistency is
    /// validated at construction, so this never fails.
    pub fn stage_scales(&self) -> Vec<(u64, u64)> {
        let mut scales = vec![(1u64, 1u64); self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            let base = s
                .producers
                .first()
                .map(|p| scales[p.0])
                .unwrap_or((1, 1));
            let (fx, fy) = s.rate.factors();
            scales[i] = match s.rate {
                Rate::Unit => base,
                Rate::Down { .. } => (base.0 * fx as u64, base.1 * fy as u64),
                Rate::Up { .. } => (base.0 / fx as u64, base.1 / fy as u64),
            };
        }
        scales
    }

    /// Whether any stage has a non-unit rate.
    pub fn is_multirate(&self) -> bool {
        self.stages.iter().any(|s| !s.rate.is_unit())
    }

    /// Marks a stage as a pipeline output.
    pub fn mark_output(&mut self, id: StageId) {
        self.stages[id.0].is_output = true;
    }

    /// Constrains two stages to start at the same cycle (used for
    /// linearization relays; coalescing "virtual stages" are read ports of
    /// one physical stage and synchronize implicitly).
    pub fn synchronize(&mut self, a: StageId, b: StageId) {
        match (self.stages[a.0].sync_group, self.stages[b.0].sync_group) {
            (Some(ga), None) => self.stages[b.0].sync_group = Some(ga),
            (None, Some(gb)) => self.stages[a.0].sync_group = Some(gb),
            (None, None) => {
                let g = self.next_sync_group;
                self.next_sync_group += 1;
                self.stages[a.0].sync_group = Some(g);
                self.stages[b.0].sync_group = Some(g);
            }
            (Some(ga), Some(gb)) => {
                if ga != gb {
                    for s in &mut self.stages {
                        if s.sync_group == Some(gb) {
                            s.sync_group = Some(ga);
                        }
                    }
                }
            }
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Stage lookup.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.0]
    }

    /// Edge lookup.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Iterates over stage ids in topological order.
    pub fn stage_ids(&self) -> impl Iterator<Item = StageId> {
        (0..self.stages.len()).map(StageId)
    }

    /// Iterates over all stages with their ids, in topological order.
    pub fn stages(&self) -> impl Iterator<Item = (StageId, &Stage)> {
        self.stages.iter().enumerate().map(|(i, s)| (StageId(i), s))
    }

    /// Iterates over all edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Edges out of a producer (its consumers' reads).
    pub fn consumer_edges(&self, p: StageId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges().filter(move |(_, e)| e.producer == p)
    }

    /// Edges into a consumer (its producer reads), in slot order.
    pub fn producer_edges(&self, c: StageId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges().filter(move |(_, e)| e.consumer == c)
    }

    /// Distinct consumer stages of a producer.
    pub fn consumers_of(&self, p: StageId) -> Vec<StageId> {
        let mut out: Vec<StageId> = self
            .edges
            .iter()
            .filter(|e| e.producer == p)
            .map(|e| e.consumer)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Stages with more than one distinct consumer (the paper's
    /// "multiple-consumer" stages, Tbl. 3).
    pub fn multi_consumer_stages(&self) -> Vec<StageId> {
        self.stage_ids()
            .filter(|&s| self.consumers_of(s).len() > 1)
            .collect()
    }

    /// Whether any stage has multiple consumers (a `-m` algorithm).
    pub fn is_multi_consumer(&self) -> bool {
        !self.multi_consumer_stages().is_empty()
    }

    /// Stages that own a line buffer (those with at least one consumer).
    pub fn buffered_stages(&self) -> Vec<StageId> {
        self.stage_ids()
            .filter(|&s| self.edges.iter().any(|e| e.producer == s))
            .collect()
    }

    /// Replaces the read ports of an edge (used by line coalescing).
    ///
    /// # Panics
    ///
    /// Panics if the ports do not exactly partition the edge's window rows.
    #[track_caller]
    pub fn set_edge_ports(&mut self, id: EdgeId, ports: Vec<ReadPort>) {
        let e = &self.edges[id.0];
        let mut covered: Vec<u32> = Vec::new();
        for p in &ports {
            covered.extend(p.row_offset..p.row_offset + p.height);
        }
        covered.sort_unstable();
        let expect: Vec<u32> = (e.window.lag..=e.window.newest_row()).collect();
        assert_eq!(
            covered, expect,
            "read ports must partition the window rows exactly"
        );
        self.edges[id.0].ports = ports;
    }

    /// Computes the reachability relation: `reach[i]` has bit `j` set when
    /// there is a path from stage `i` to stage `j` (the paper's partial
    /// order `i ≼ j`, including reflexivity).
    pub fn reachability(&self) -> Reachability {
        let n = self.stages.len();
        let words = n.div_ceil(64);
        let mut reach = vec![vec![0u64; words]; n];
        // Process in reverse topological order: a stage reaches itself and
        // everything its consumers reach.
        for i in (0..n).rev() {
            reach[i][i / 64] |= 1 << (i % 64);
            let succ: Vec<usize> = self
                .edges
                .iter()
                .filter(|e| e.producer.0 == i)
                .map(|e| e.consumer.0)
                .collect();
            for s in succ {
                let (head, tail) = reach.split_at_mut(s.max(i));
                // i < s always (topological construction).
                let (src, dst) = (&tail[0], &mut head[i]);
                for w in 0..words {
                    dst[w] |= src[w];
                }
            }
        }
        Reachability { words, bits: reach }
    }

    /// A stable structural fingerprint of the pipeline: name, stages
    /// (kind, kernel, producers, outputs, sync groups), and edges
    /// (endpoints, windows, read ports).
    ///
    /// The normalization shift a stage was *constructed* with is pure
    /// provenance (it relabels authored coordinates; every consumer of
    /// the DAG reads the normalized kernels and windows hashed here), so
    /// it is deliberately **not** part of the fingerprint: a DAG built
    /// from centered taps and the same DAG re-lowered from its printed
    /// normalized form compile identically and fingerprint identically.
    ///
    /// Two DAGs with equal fingerprints compile identically for any given
    /// geometry and memory specification, which is what compile caches key
    /// on. The hash is FNV-1a over the structural fields, so it is stable
    /// across processes of the same build target (unlike `DefaultHasher`,
    /// whose output is unspecified); it is *not* defined to be portable
    /// across architectures, since the `Hash` impls feed native-endian
    /// bytes.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};

        /// FNV-1a, deliberately not `DefaultHasher` (whose output is
        /// unspecified across std versions).
        struct Fnv(u64);
        impl Hasher for Fnv {
            fn finish(&self) -> u64 {
                self.0
            }
            fn write(&mut self, bytes: &[u8]) {
                for &b in bytes {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x100_0000_01b3);
                }
            }
        }

        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        self.name.hash(&mut h);
        self.stages.len().hash(&mut h);
        for s in &self.stages {
            s.name.hash(&mut h);
            match &s.kind {
                StageKind::Input => 0u8.hash(&mut h),
                StageKind::Compute { kernel } => {
                    1u8.hash(&mut h);
                    kernel.hash(&mut h);
                }
            }
            s.producers.len().hash(&mut h);
            for p in &s.producers {
                p.0.hash(&mut h);
            }
            s.is_output.hash(&mut h);
            s.sync_group.hash(&mut h);
            // Unit-rate stages hash exactly as before rates existed, so
            // every pre-multirate pipeline keeps its fingerprint.
            match s.rate {
                Rate::Unit => {}
                Rate::Down { fx, fy } => (2u8, fx, fy).hash(&mut h),
                Rate::Up { fx, fy } => (3u8, fx, fy).hash(&mut h),
            }
        }
        self.edges.len().hash(&mut h);
        for e in &self.edges {
            e.producer.0.hash(&mut h);
            e.consumer.0.hash(&mut h);
            e.slot.hash(&mut h);
            let w = &e.window;
            (w.lag, w.height, w.dx_min, w.dx_max).hash(&mut h);
            e.ports.len().hash(&mut h);
            for p in &e.ports {
                (p.row_offset, p.height).hash(&mut h);
            }
        }
        h.finish()
    }

    /// Structural validation (see [`IrError`]).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), IrError> {
        if !self.stages.iter().any(|s| s.is_input()) {
            return Err(IrError::NoInput);
        }
        if !self.stages.iter().any(|s| s.is_output) {
            return Err(IrError::NoOutput);
        }
        let mut names: Vec<&str> = self.stages.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        for pair in names.windows(2) {
            if pair[0] == pair[1] {
                return Err(IrError::DuplicateName {
                    name: pair[0].to_string(),
                });
            }
        }
        for (id, s) in self.stages() {
            let has_consumer = self.edges.iter().any(|e| e.producer == id);
            if !s.is_output && !has_consumer {
                return Err(IrError::DeadStage {
                    stage: s.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Summary statistics (stage/edge counts, Tbl. 3 style).
    pub fn stats(&self) -> DagStats {
        DagStats {
            stages: self.num_stages(),
            edges: self.num_edges(),
            multi_consumer_stages: self.multi_consumer_stages().len(),
            relay_stages: self
                .stages
                .iter()
                .filter(|s| matches!(s.origin, Origin::Relay { .. }))
                .count(),
            max_stencil_height: self
                .edges
                .iter()
                .map(|e| e.window.newest_row() + 1)
                .max()
                .unwrap_or(0),
        }
    }

    /// Graphviz dot rendering (diagnostics).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph pipeline {\n  rankdir=LR;\n");
        for (id, st) in self.stages() {
            let shape = if st.is_input() {
                "invhouse"
            } else if st.is_output {
                "house"
            } else {
                "box"
            };
            let _ = writeln!(s, "  {} [label=\"{}\", shape={}];", id.0, st.name, shape);
        }
        for (_, e) in self.edges() {
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"{}x{}\"];",
                e.producer.0,
                e.consumer.0,
                e.window.height,
                e.window.width()
            );
        }
        s.push_str("}\n");
        s
    }
}

/// Dense reachability matrix over stages (see [`Dag::reachability`]).
#[derive(Clone, Debug)]
pub struct Reachability {
    words: usize,
    bits: Vec<Vec<u64>>,
}

impl Reachability {
    /// Whether there is a path from `a` to `b` (reflexive: `a ≼ a`).
    pub fn le(&self, a: StageId, b: StageId) -> bool {
        debug_assert!(self.words > 0);
        self.bits[a.0][b.0 / 64] & (1 << (b.0 % 64)) != 0
    }
}

/// Summary statistics of a DAG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DagStats {
    /// Total stage count (the paper's `N`).
    pub stages: usize,
    /// Total edge count.
    pub edges: usize,
    /// Stages with more than one distinct consumer.
    pub multi_consumer_stages: usize,
    /// Relay (dummy) stages introduced by linearization.
    pub relay_stages: usize,
    /// Largest `lag + height` over all windows.
    pub max_stencil_height: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    fn chain3() -> (Dag, StageId, StageId, StageId) {
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag.add_stage("K2", &[k1], box3(0)).unwrap();
        dag.mark_output(k2);
        (dag, k0, k1, k2)
    }

    #[test]
    fn construction_and_windows() {
        let (dag, k0, k1, _) = chain3();
        assert_eq!(dag.num_stages(), 3);
        assert_eq!(dag.num_edges(), 2);
        let (_, e) = dag.consumer_edges(k0).next().unwrap();
        assert_eq!(e.consumer(), k1);
        // Centered 3x3 window normalizes to lag 0, height 3, dx in [-2, 0].
        assert_eq!(e.window().lag, 0);
        assert_eq!(e.window().height, 3);
        assert_eq!(e.window().dx_min, -2);
        assert_eq!(e.window().dx_max, 0);
        assert_eq!(e.window().width(), 3);
    }

    #[test]
    fn normalization_shift_recorded() {
        let (dag, _, k1, _) = chain3();
        // Taps dy in [-1,1] -> shift sy = -1; dx in [-1,1] -> sx = 1.
        assert_eq!(dag.stage(k1).norm_shift(), (1, -1));
        // After normalization every tap satisfies dy >= 0, dx <= 0.
        let mut ok = true;
        dag.stage(k1)
            .kernel()
            .unwrap()
            .for_each_tap(&mut |_, dx, dy| {
                ok &= dy >= 0 && dx <= 0;
            });
        assert!(ok);
    }

    #[test]
    fn multi_producer_lag() {
        // Consumer reads 3x3 from K1 (dy -1..1) and 1x1 center from K0.
        let mut dag = Dag::new("lag");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(BinOp::Add, Expr::tap(0, 0, 0), box3(1)),
            )
            .unwrap();
        dag.mark_output(k2);
        // Global shift sy=-1 moves K0's point tap to dy=1: lag 1, height 1.
        let e0 = dag
            .producer_edges(k2)
            .find(|(_, e)| e.slot() == 0)
            .unwrap()
            .1;
        assert_eq!(e0.window().lag, 1);
        assert_eq!(e0.window().height, 1);
        let e1 = dag
            .producer_edges(k2)
            .find(|(_, e)| e.slot() == 1)
            .unwrap()
            .1;
        assert_eq!(e1.window().lag, 0);
        assert_eq!(e1.window().height, 3);
        assert_eq!(e1.window().newest_row(), 2);
    }

    #[test]
    fn validation_errors() {
        let mut dag = Dag::new("v");
        assert_eq!(dag.validate().unwrap_err(), IrError::NoInput);
        let k0 = dag.add_input("K0");
        assert_eq!(dag.validate().unwrap_err(), IrError::NoOutput);
        let k1 = dag.add_stage("K1", &[k0], Expr::tap(0, 0, 0)).unwrap();
        dag.mark_output(k1);
        dag.validate().unwrap();
        // Dead stage: added but never consumed, not an output.
        let _dead = dag.add_stage("D", &[k0], Expr::tap(0, 0, 0)).unwrap();
        assert!(matches!(dag.validate(), Err(IrError::DeadStage { .. })));
    }

    #[test]
    fn bad_kernel_slots() {
        let mut dag = Dag::new("v");
        let k0 = dag.add_input("K0");
        let err = dag.add_stage("K1", &[k0], Expr::tap(1, 0, 0)).unwrap_err();
        assert!(matches!(err, IrError::UnknownSlot { slot: 1, .. }));
        let err = dag.add_stage("K1", &[k0], Expr::Const(5)).unwrap_err();
        assert!(matches!(err, IrError::UnreadProducer { slot: 0, .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut dag = Dag::new("v");
        let k0 = dag.add_input("K");
        let k1 = dag.add_stage("K", &[k0], Expr::tap(0, 0, 0)).unwrap();
        dag.mark_output(k1);
        assert!(matches!(dag.validate(), Err(IrError::DuplicateName { .. })));
    }

    #[test]
    fn reachability_partial_order() {
        let mut dag = Dag::new("r");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag.add_stage("K2", &[k0], box3(0)).unwrap();
        let k3 = dag
            .add_stage(
                "K3",
                &[k1, k2],
                Expr::bin(BinOp::Add, Expr::tap(0, 0, 0), Expr::tap(1, 0, 0)),
            )
            .unwrap();
        dag.mark_output(k3);
        let r = dag.reachability();
        assert!(r.le(k0, k3));
        assert!(r.le(k0, k0), "reflexive");
        assert!(r.le(k1, k3));
        assert!(!r.le(k1, k2), "siblings are incomparable");
        assert!(!r.le(k3, k0), "antisymmetric");
    }

    #[test]
    fn multi_consumer_detection() {
        let mut dag = Dag::new("mc");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(BinOp::Add, Expr::tap(0, 0, 0), Expr::tap(1, 0, 0)),
            )
            .unwrap();
        dag.mark_output(k2);
        assert_eq!(dag.multi_consumer_stages(), vec![k0]);
        assert!(dag.is_multi_consumer());
        assert_eq!(dag.consumers_of(k0), vec![k1, k2]);
        assert_eq!(dag.buffered_stages(), vec![k0, k1]);
    }

    #[test]
    fn sync_groups_merge() {
        let (mut dag, k0, k1, k2) = chain3();
        dag.synchronize(k0, k1);
        let g = dag.stage(k0).sync_group().unwrap();
        assert_eq!(dag.stage(k1).sync_group(), Some(g));
        dag.synchronize(k2, k1);
        assert_eq!(dag.stage(k2).sync_group(), Some(g));
    }

    #[test]
    fn edge_port_partition_enforced() {
        let (mut dag, k0, _, _) = chain3();
        let (eid, _) = dag.consumer_edges(k0).next().unwrap();
        dag.set_edge_ports(
            eid,
            vec![
                ReadPort {
                    row_offset: 0,
                    height: 2,
                },
                ReadPort {
                    row_offset: 2,
                    height: 1,
                },
            ],
        );
        assert_eq!(dag.edge(eid).ports().len(), 2);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn edge_port_partition_rejects_gaps() {
        let (mut dag, k0, _, _) = chain3();
        let (eid, _) = dag.consumer_edges(k0).next().unwrap();
        dag.set_edge_ports(
            eid,
            vec![ReadPort {
                row_offset: 0,
                height: 2,
            }],
        );
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let (a, ..) = chain3();
        let (b, ..) = chain3();
        assert_eq!(a.fingerprint(), b.fingerprint(), "deterministic");
        let (mut c, k0, _, _) = chain3();
        let (eid, _) = c.consumer_edges(k0).next().unwrap();
        c.set_edge_ports(
            eid,
            vec![
                ReadPort {
                    row_offset: 0,
                    height: 2,
                },
                ReadPort {
                    row_offset: 2,
                    height: 1,
                },
            ],
        );
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "port rewrite changes the fingerprint"
        );
        let mut d = Dag::new("other-name");
        let k0 = d.add_input("K0");
        let k1 = d.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = d.add_stage("K2", &[k1], box3(0)).unwrap();
        d.mark_output(k2);
        assert_ne!(a.fingerprint(), d.fingerprint(), "name is part of the key");
    }

    #[test]
    fn fingerprint_ignores_normalization_provenance() {
        // A centered window and its pre-normalized spelling are the same
        // hardware; the fingerprint must agree so compile caches and
        // round-trip tests treat them as one design.
        let mut a = Dag::new("p");
        let a0 = a.add_input("K0");
        let a1 = a.add_stage("K1", &[a0], box3(0)).unwrap();
        a.mark_output(a1);
        let mut b = Dag::new("p");
        let b0 = b.add_input("K0");
        // box3 normalized: dx in [-2, 0], dy in [0, 2].
        let normalized = Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 2, i / 3)));
        let b1 = b.add_stage("K1", &[b0], normalized).unwrap();
        b.mark_output(b1);
        assert_eq!(a.stage(a1).kernel(), b.stage(b1).kernel());
        assert_ne!(a.stage(a1).norm_shift(), b.stage(b1).norm_shift());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn absurd_window_spans_rejected() {
        let max = crate::MAX_WINDOW_SPAN;
        let mut dag = Dag::new("w");
        let k0 = dag.add_input("K0");
        // Exactly at the limit: accepted (span counts the 0 anchor).
        let wide = Expr::bin(
            BinOp::Add,
            Expr::tap(0, -(max as i32 - 1), 0),
            Expr::tap(0, 0, 0),
        );
        dag.add_stage("ok", &[k0], wide).unwrap();
        // One beyond: rejected, instead of risking i32 overflow later.
        let too_wide = Expr::bin(
            BinOp::Add,
            Expr::tap(0, -(max as i32), 0),
            Expr::tap(0, 0, 0),
        );
        let err = dag.add_stage("kx", &[k0], too_wide).unwrap_err();
        assert!(matches!(err, IrError::WindowTooLarge { span, .. } if span == max + 1));
        // Extreme offsets on both axes must error, not overflow.
        let err = dag
            .add_stage(
                "ky",
                &[k0],
                Expr::bin(
                    BinOp::Add,
                    Expr::tap(0, i32::MIN, i32::MIN),
                    Expr::tap(0, i32::MAX, i32::MAX),
                ),
            )
            .unwrap_err();
        assert!(matches!(err, IrError::WindowTooLarge { .. }));
    }

    #[test]
    fn rates_compose_and_validate() {
        let mut dag = Dag::new("pyr");
        let k0 = dag.add_input("K0");
        let d1 = dag
            .add_stage_rated("D1", &[k0], box3(0), Rate::Down { fx: 2, fy: 2 })
            .unwrap();
        let d2 = dag
            .add_stage_rated("D2", &[d1], box3(0), Rate::Down { fx: 2, fy: 2 })
            .unwrap();
        let u1 = dag
            .add_stage_rated("U1", &[d2], Expr::tap(0, 0, 0), Rate::Up { fx: 2, fy: 2 })
            .unwrap();
        dag.mark_output(u1);
        let scales = dag.stage_scales();
        assert_eq!(scales[k0.index()], (1, 1));
        assert_eq!(scales[d1.index()], (2, 2));
        assert_eq!(scales[d2.index()], (4, 4));
        assert_eq!(scales[u1.index()], (2, 2));
        assert!(dag.is_multirate());
        assert_eq!(dag.stage(d1).rate(), Rate::Down { fx: 2, fy: 2 });

        // Upsampling above the base grid is rejected.
        let err = dag
            .add_stage_rated("bad", &[k0], Expr::tap(0, 0, 0), Rate::Up { fx: 2, fy: 2 })
            .unwrap_err();
        assert!(matches!(err, IrError::UpsampleAboveBase { .. }));

        // Producers at different scales cannot be mixed.
        let err = dag
            .add_stage_rated(
                "mix",
                &[k0, d1],
                Expr::bin(BinOp::Add, Expr::tap(0, 0, 0), Expr::tap(1, 0, 0)),
                Rate::Unit,
            )
            .unwrap_err();
        assert!(matches!(err, IrError::RateMismatch { .. }));
    }

    #[test]
    fn hostile_rate_factors_rejected() {
        let mut dag = Dag::new("hostile");
        let k0 = dag.add_input("K0");
        for rate in [
            Rate::Down { fx: 0, fy: 2 },
            Rate::Up { fx: 2, fy: 0 },
            Rate::Down {
                fx: (MAX_RATE_FACTOR + 1) as u32,
                fy: 1,
            },
        ] {
            let err = dag
                .add_stage_rated("R", &[k0], Expr::tap(0, 0, 0), rate)
                .unwrap_err();
            assert!(matches!(err, IrError::RateOutOfRange { .. }), "{rate:?}");
        }
        // A down-chain whose cumulative scale overflows the bound errors
        // instead of wrapping.
        let big = Rate::Down {
            fx: 1 << 12,
            fy: 1,
        };
        let a = dag.add_stage_rated("A", &[k0], Expr::tap(0, 0, 0), big).unwrap();
        let err = dag
            .add_stage_rated("B", &[a], Expr::tap(0, 0, 0), big)
            .unwrap_err();
        assert!(matches!(err, IrError::RateOutOfRange { .. }));
    }

    #[test]
    fn unit_rate_fingerprint_untouched_and_rates_hash() {
        // Factor-1 modifiers normalize to `Unit` and fingerprint like a
        // plain stage; real factors change the fingerprint.
        let build = |rate: Rate| {
            let mut dag = Dag::new("fp");
            let k0 = dag.add_input("K0");
            let k1 = dag.add_stage_rated("K1", &[k0], box3(0), rate).unwrap();
            dag.mark_output(k1);
            dag
        };
        let plain = build(Rate::Unit);
        assert_eq!(
            plain.fingerprint(),
            build(Rate::Down { fx: 1, fy: 1 }).fingerprint()
        );
        assert_ne!(
            plain.fingerprint(),
            build(Rate::Down { fx: 2, fy: 2 }).fingerprint()
        );
        assert_ne!(
            build(Rate::Down { fx: 2, fy: 2 }).fingerprint(),
            build(Rate::Down { fx: 2, fy: 1 }).fingerprint()
        );
    }

    #[test]
    fn stats_and_dot() {
        let (dag, ..) = chain3();
        let st = dag.stats();
        assert_eq!(st.stages, 3);
        assert_eq!(st.max_stencil_height, 3);
        let dot = dag.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("3x3"));
    }
}
