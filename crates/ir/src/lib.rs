//! # imagen-ir
//!
//! The pipeline intermediate representation of the [ImaGen] accelerator
//! generator (ISCA 2023 reproduction).
//!
//! Image-processing algorithms are DAGs of stencil stages ([`Dag`],
//! [`Stage`], [`Edge`]). Each compute stage evaluates a [`Expr`] kernel
//! once per output pixel over windows of its producers' pixels; windows
//! are normalized at construction so the scheduler's constraints take the
//! paper's closed forms (see [`graph`] module docs).
//!
//! Two DAG transforms used throughout the evaluation live here:
//!
//! * [`linearize`] — Darkroom-style rewriting of multiple-consumer
//!   pipelines into single-consumer form via relay stages (Sec. 3.1);
//! * [`apply_line_coalescing`] — the Algo. 1 rewrite that splits consumer
//!   windows into per-block read ports ("virtual stages", Sec. 6).
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesce;
mod expr;
pub mod graph;
mod linearize;

pub use coalesce::{apply_line_coalescing, CoalesceFactor, CoalescedEdge};
pub use expr::{BinOp, CmpOp, Expr, OpCensus, TapExtent};
pub use graph::{
    Dag, DagStats, Edge, EdgeId, IrError, Origin, Rate, Reachability, ReadPort, Stage, StageId,
    StageKind, Window, MAX_RATE_FACTOR, MAX_WINDOW_SPAN,
};
pub use linearize::{linearize, Linearized};
