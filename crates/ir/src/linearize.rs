//! Darkroom-style algorithm linearization (paper Sec. 3.1, Fig. 3).
//!
//! Linearization rewrites a pipeline with multiple-consumer stages into a
//! functionally identical pipeline in which every line buffer is read by
//! (effectively) a single consumer. For a producer `p` with consumers
//! `c1, c2, …`, the first consumer keeps reading `p` directly and a dummy
//! *relay* stage is inserted that mirrors `c1`'s read pattern exactly
//! (same window, same start cycle); `c2` then reads from the relay instead
//! of from `p`. With more consumers the relays chain.
//!
//! Because the relay and its mirrored sibling read the same addresses on
//! every cycle, they share a physical read port — `p`'s buffer still serves
//! one write + one read per cycle. The cost is one extra line buffer per
//! relay, which is exactly the memory overhead the paper measures.
//!
//! # Coordinate shifts
//!
//! A relay forwards the *newest* tap of its mirrored window, so its output
//! stream leads the original image by the window reach; re-normalization
//! of retargeted consumers shifts their outputs the other way. The rewrite
//! tracks the net shift of every rebuilt stage and compensates downstream
//! taps, so every stage computes the original function up to a uniform
//! raster shift recorded in [`Linearized::shifts`] (interior-exact;
//! clamp-to-edge borders may differ within the window reach, the boundary
//! regime the paper scopes out in Sec. 5, footnote 2).

use crate::expr::Expr;
use crate::graph::{Dag, IrError, Origin, StageId, StageKind, Window};

/// Result of [`linearize`]: the rewritten DAG plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Linearized {
    /// The rewritten, single-consumer pipeline.
    pub dag: Dag,
    /// Mapping from original stage ids to ids in the new DAG.
    pub stage_map: Vec<StageId>,
    /// Ids (in the new DAG) of the inserted relay stages.
    pub relays: Vec<StageId>,
    /// Per-original-stage raster shift `(ax, ay)`:
    /// `new[y][x] == orig[y - ay][x - ax]` away from borders.
    pub shifts: Vec<(i32, i32)>,
}

/// Linearizes `dag` so that no line buffer is read by more than one
/// effective consumer.
///
/// # Errors
///
/// Propagates [`IrError`] from DAG reconstruction (cannot occur for DAGs
/// that passed [`Dag::validate`]).
///
/// # Examples
///
/// ```
/// use imagen_ir::{linearize, Dag, Expr, BinOp};
///
/// let mut dag = Dag::new("fig3");
/// let k0 = dag.add_input("K0");
/// let k1 = dag.add_stage("K1", &[k0],
///     Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1))))?;
/// let k2 = dag.add_stage("K2", &[k0, k1], Expr::bin(
///     BinOp::Add, Expr::tap(0, 0, 0), Expr::tap(1, 0, 0)))?;
/// dag.mark_output(k2);
/// let lin = linearize(&dag)?;
/// assert_eq!(lin.relays.len(), 1);           // the paper's K11
/// # Ok::<(), imagen_ir::IrError>(())
/// ```
pub fn linearize(dag: &Dag) -> Result<Linearized, IrError> {
    let mut out = Dag::new(format!("{}-linearized", dag.name()));
    let mut stage_map: Vec<StageId> = Vec::with_capacity(dag.num_stages());
    let mut shifts: Vec<(i32, i32)> = Vec::with_capacity(dag.num_stages());
    let mut relays = Vec::new();

    // For each original producer, the current tail of its relay chain in
    // the new DAG. `new_tail[y][x] == orig_producer[y - ay][x - ax]` and
    // `mirror` is the reader whose pattern the next relay must copy.
    struct Tail {
        source: StageId,
        ax: i32,
        ay: i32,
        mirror: Option<(StageId, Window)>,
    }
    let mut tails: Vec<Tail> = Vec::new();

    for (_sid, stage) in dag.stages() {
        match stage.kind() {
            StageKind::Input => {
                let nid = out.add_input(stage.name());
                stage_map.push(nid);
                shifts.push((0, 0));
                tails.push(Tail {
                    source: nid,
                    ax: 0,
                    ay: 0,
                    mirror: None,
                });
            }
            StageKind::Compute { kernel } => {
                // Re-target each slot through the producer's current tail,
                // inserting a relay first if the tail already has a reader.
                let mut new_producers = Vec::with_capacity(stage.producers().len());
                let mut tap_shifts = Vec::with_capacity(stage.producers().len());
                for p in stage.producers().iter() {
                    let t = &tails[p.index()];
                    if let Some((mirror_stage, pattern)) = t.mirror {
                        // Tail already read by `mirror_stage`: insert a relay
                        // that mirrors its pattern and move the tail.
                        let by = pattern.newest_row() as i32;
                        let bx = pattern.dx_max;
                        let relay_kernel = Expr::tap(0, bx, by);
                        let relay = out.add_stage_full(
                            format!("{}_relay{}", dag.stage(*p).name(), relays.len()),
                            &[t.source],
                            relay_kernel,
                            Origin::Relay {
                                mirrors: mirror_stage,
                            },
                            &[(0, pattern)],
                        )?;
                        out.synchronize(relay, mirror_stage);
                        relays.push(relay);
                        let t = &mut tails[p.index()];
                        // relay[y][x] = tail[y+by][x+bx] = orig[y - (ay-by)][…].
                        t.ax -= bx;
                        t.ay -= by;
                        t.source = relay;
                        t.mirror = None;
                    }
                    let t = &tails[p.index()];
                    new_producers.push(t.source);
                    tap_shifts.push((t.ax, t.ay));
                }
                // Author taps that reproduce the original function through
                // the shifted producers: orig tap (dx, dy) into p becomes
                // (dx + ax_p, dy + ay_p) into the tail.
                let new_kernel = kernel.map_taps(&|slot, dx, dy| {
                    let (ax, ay) = tap_shifts[slot];
                    Expr::tap(slot, dx + ax, dy + ay)
                });
                let nid = out.add_stage_full(
                    stage.name(),
                    &new_producers,
                    new_kernel,
                    stage.origin(),
                    &[],
                )?;
                if stage.is_output() {
                    out.mark_output(nid);
                }
                // Construction re-normalizes the authored taps by
                // (sxn, syn); the stage's output is the original shifted
                // by exactly that amount.
                let (sxn, syn) = out.stage(nid).norm_shift();
                stage_map.push(nid);
                shifts.push((sxn, syn));
                // Record this stage as the reader pattern of each tail it
                // consumed, so the *next* consumer triggers a relay.
                for (slot, p) in stage.producers().iter().enumerate() {
                    let win = out
                        .producer_edges(nid)
                        .find(|(_, e)| e.slot() == slot)
                        .map(|(_, e)| *e.window())
                        .expect("edge created just above");
                    let t = &mut tails[p.index()];
                    t.mirror = Some((nid, win));
                }
                tails.push(Tail {
                    source: nid,
                    ax: sxn,
                    ay: syn,
                    mirror: None,
                });
            }
        }
    }

    Ok(Linearized {
        dag: out,
        stage_map,
        relays,
        shifts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    /// The paper's Fig. 3 pipeline: K0 feeds K1 and K2; K2 also reads K1.
    fn fig3() -> Dag {
        let mut dag = Dag::new("fig3");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(
                    BinOp::Add,
                    Expr::sum((0..4).map(|i| Expr::tap(0, i % 2, i / 2))),
                    box3(1),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        dag
    }

    #[test]
    fn single_consumer_pipeline_unchanged() {
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        let lin = linearize(&dag).unwrap();
        assert!(lin.relays.is_empty());
        assert_eq!(lin.dag.num_stages(), 2);
        assert_eq!(lin.shifts, vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn fig3_inserts_one_relay() {
        let dag = fig3();
        let lin = linearize(&dag).unwrap();
        assert_eq!(lin.relays.len(), 1);
        assert_eq!(lin.dag.num_stages(), 4, "K0, K1, K11, K2");
        // The relay mirrors K1's pattern on K0's buffer.
        let relay = lin.relays[0];
        let (_, e) = lin.dag.producer_edges(relay).next().unwrap();
        assert_eq!(e.window().height, 3, "mirrors K1's 3-row window");
        // Relay and K1 are start-synchronized.
        let k1_new = lin.stage_map[1];
        assert!(lin.dag.stage(relay).sync_group().is_some());
        assert_eq!(
            lin.dag.stage(relay).sync_group(),
            lin.dag.stage(k1_new).sync_group()
        );
        // K2 no longer reads K0 directly.
        let k2_new = lin.stage_map[2];
        let k0_new = lin.stage_map[0];
        assert!(lin
            .dag
            .producer_edges(k2_new)
            .all(|(_, e)| e.producer() != k0_new));
    }

    #[test]
    fn relay_forwards_newest_tap() {
        let dag = fig3();
        let lin = linearize(&dag).unwrap();
        let relay = lin.dag.stage(lin.relays[0]);
        // Relay kernel is a single tap at the newest cell of the mirrored
        // 3-row window (dy = 2 in normalized coordinates).
        let kernel = relay.kernel().unwrap();
        let mut taps = Vec::new();
        kernel.for_each_tap(&mut |s, dx, dy| taps.push((s, dx, dy)));
        assert_eq!(taps.len(), 1);
        assert_eq!(
            taps[0].2, 2,
            "relay forwards the newest row of the 3-row window"
        );
        assert!(matches!(relay.origin(), Origin::Relay { .. }));
    }

    #[test]
    fn shifts_recorded_for_retargeted_consumers() {
        let dag = fig3();
        let lin = linearize(&dag).unwrap();
        // K2 reads through the relay (which leads by the window reach), so
        // its re-normalization shift is nonzero and recorded.
        let (ax, ay) = lin.shifts[2];
        assert!(ay <= 0 && ax <= 0, "retargeted consumer lags: ({ax},{ay})");
    }

    #[test]
    fn three_consumers_chain_two_relays() {
        let mut dag = Dag::new("tri");
        let k0 = dag.add_input("K0");
        let a = dag.add_stage("A", &[k0], box3(0)).unwrap();
        let b = dag.add_stage("B", &[k0], box3(0)).unwrap();
        let c = dag.add_stage("C", &[k0], box3(0)).unwrap();
        let d = dag
            .add_stage(
                "D",
                &[a, b, c],
                Expr::sum(vec![
                    Expr::tap(0, 0, 0),
                    Expr::tap(1, 0, 0),
                    Expr::tap(2, 0, 0),
                ]),
            )
            .unwrap();
        dag.mark_output(d);
        let lin = linearize(&dag).unwrap();
        assert_eq!(lin.relays.len(), 2);
        // Every buffer now has at most one effective reader group: each
        // producer's consumers either are a single stage or a synchronized
        // (stage, relay) pair with identical windows.
        for p in lin.dag.buffered_stages() {
            let consumers = lin.dag.consumers_of(p);
            if consumers.len() > 1 {
                assert_eq!(consumers.len(), 2);
                let g0 = lin.dag.stage(consumers[0]).sync_group();
                let g1 = lin.dag.stage(consumers[1]).sync_group();
                assert!(
                    g0.is_some() && g0 == g1,
                    "extra readers must be sync'd relays"
                );
            }
        }
        lin.dag.validate().unwrap();
    }

    #[test]
    fn linearized_dag_validates() {
        let lin = linearize(&fig3()).unwrap();
        lin.dag.validate().unwrap();
        assert_eq!(lin.dag.stats().relay_stages, 1);
    }
}
