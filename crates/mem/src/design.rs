//! The `Design` artifact: a fully planned accelerator memory system.
//!
//! Every generator in this repository — ImaGen's optimizer and the three
//! baselines (FixyNN, SODA, Darkroom) — produces a [`Design`]: the stage
//! schedule plus, per line buffer, the physical block inventory. The
//! cycle-level simulator replays a `Design` and fills in per-block access
//! counts; the pricing methods here turn the inventory + counts into the
//! paper's metrics (SRAM KB, BRAM blocks, mm², mW).

use crate::geometry::ImageGeometry;
use crate::spec::MemBackend;
use crate::tech::{pj_per_cycle_to_mw, BramModel, DffModel, SramConfig, SramModel, CLOCK_MHZ};

/// What a physical block stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockRole {
    /// One or more line-buffer rows (classic rotating line buffer).
    LineStore,
    /// A FIFO segment (SODA-style); always served at 2 accesses/cycle.
    FifoSegment,
}

/// One physical memory block (SRAM macro or BRAM).
#[derive(Clone, PartialEq, Debug)]
pub struct PhysBlock {
    /// Allocated macro capacity, bits (the fragmentation-aware size).
    pub capacity_bits: u64,
    /// Bits actually holding pixels.
    pub used_bits: u64,
    /// Port count.
    pub ports: u32,
    /// Contents.
    pub role: BlockRole,
    /// Average accesses per active cycle (filled by the simulator or by
    /// the generator's analytic model).
    pub avg_accesses_per_cycle: f64,
    /// Average *write* accesses per active cycle (a subset of
    /// `avg_accesses_per_cycle`; writes cost more energy than reads).
    pub avg_writes_per_cycle: f64,
    /// Peak accesses in any single cycle (must stay ≤ `ports`).
    pub peak_accesses: u32,
}

/// The planned line buffer of one producer stage.
#[derive(Clone, PartialEq, Debug)]
pub struct BufferPlan {
    /// Producer stage index (into the DAG's stage list).
    pub stage: usize,
    /// Rows required by the schedule: `ceil(max_delay / W)` (Equ. 2).
    pub logical_rows: u32,
    /// Rows physically allocated (logical + aliasing slack).
    pub phys_rows: u32,
    /// Rows sharing one block (`g`; 1 = no coalescing).
    pub rows_per_block: u32,
    /// Blocks a single row spans when a row exceeds block capacity.
    pub blocks_per_row: u32,
    /// The block inventory.
    pub blocks: Vec<PhysBlock>,
    /// Head-segment bits kept in DFFs instead of SRAM (SODA).
    pub dff_bits: u64,
}

impl BufferPlan {
    /// Maps an absolute image row (+ column for split rows) to the index
    /// of the physical block serving it.
    ///
    /// Returns `None` for buffers with no SRAM blocks (pure-DFF buffers).
    pub fn block_of(&self, abs_row: u64, x: u32, geom: &ImageGeometry) -> Option<usize> {
        if self.blocks.is_empty() || self.phys_rows == 0 {
            return None;
        }
        let phys_row = (abs_row % self.phys_rows as u64) as u32;
        let idx = if self.blocks_per_row > 1 {
            let seg = (x as u64 * geom.pixel_bits as u64) / self.segment_bits();
            phys_row as u64 * self.blocks_per_row as u64 + seg
        } else {
            (phys_row / self.rows_per_block) as u64
        };
        Some((idx as usize).min(self.blocks.len() - 1))
    }

    fn segment_bits(&self) -> u64 {
        // When rows split across blocks, each block holds an equal column
        // segment of ceil(row_bits / blocks_per_row).
        debug_assert!(self.blocks_per_row > 1);
        let cap = self.blocks[0].capacity_bits;
        cap.max(1)
    }

    /// Total allocated SRAM/BRAM capacity, bits.
    pub fn capacity_bits(&self) -> u64 {
        self.blocks.iter().map(|b| b.capacity_bits).sum()
    }
}

/// Which generator produced a design (labels for reports).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DesignStyle {
    /// ImaGen without line coalescing ("Ours").
    Ours,
    /// ImaGen with line coalescing ("Ours+LC").
    OursLc,
    /// FixyNN: single-port SRAMs, fully disjoint accesses.
    FixyNn,
    /// SODA: FIFO-based line buffers (dual-port), split per consumer.
    Soda,
    /// Darkroom: linearized algorithm on dual-port SRAMs.
    Darkroom,
}

impl DesignStyle {
    /// Human-readable label used in the figure harnesses.
    pub fn label(&self) -> &'static str {
        match self {
            DesignStyle::Ours => "Ours",
            DesignStyle::OursLc => "Ours+LC",
            DesignStyle::FixyNn => "FixyNN",
            DesignStyle::Soda => "SODA",
            DesignStyle::Darkroom => "Darkroom",
        }
    }
}

/// A fully planned accelerator memory system.
#[derive(Clone, PartialEq, Debug)]
pub struct Design {
    /// Pipeline name.
    pub name: String,
    /// Frame geometry the design was compiled for.
    pub geometry: ImageGeometry,
    /// Memory backend.
    pub backend: MemBackend,
    /// Generator that produced this design.
    pub style: DesignStyle,
    /// Start cycle of every stage (indexed by stage).
    pub start_cycles: Vec<u64>,
    /// Line-buffer plans (only stages that own a buffer appear).
    pub buffers: Vec<BufferPlan>,
    /// PE area of all stages, mm² (from kernel op censuses).
    pub pe_area_mm2: f64,
    /// PE power of all stages at the evaluation clock, mW.
    pub pe_power_mw: f64,
    /// Shift-register-array bits (stencil windows), stored in DFFs.
    pub sra_bits: u64,
}

impl Design {
    /// Total allocated SRAM/BRAM capacity in KB — the paper's Fig. 8a/9a
    /// metric. DFF storage is excluded (it is not SRAM), matching the
    /// paper's accounting where SODA's DFF head segments reduce its SRAM
    /// figure.
    pub fn sram_kb(&self) -> f64 {
        let bits: u64 = self.buffers.iter().map(|b| b.capacity_bits()).sum();
        bits as f64 / 8.0 / 1024.0
    }

    /// Number of memory blocks allocated (BRAM count on FPGA).
    pub fn block_count(&self) -> usize {
        self.buffers.iter().map(|b| b.blocks.len()).sum()
    }

    /// SRAM bits actually holding pixels, in KB. Unlike [`Design::sram_kb`]
    /// (the allocation-quantum metric), this scales with the frame width —
    /// a 1080p design stores 4× the bits of a 320p one.
    pub fn used_kb(&self) -> f64 {
        let bits: u64 = self
            .buffers
            .iter()
            .flat_map(|b| &b.blocks)
            .map(|blk| blk.used_bits)
            .sum();
        bits as f64 / 8.0 / 1024.0
    }

    /// Total DFF bits used for buffering (FIFO heads) — excludes SRA.
    pub fn buffer_dff_bits(&self) -> u64 {
        self.buffers.iter().map(|b| b.dff_bits).sum()
    }

    /// On-chip memory area, mm² (ASIC backend; includes buffer DFFs).
    ///
    /// Arrays are priced at their *compiled* size (OpenRAM right-sizes the
    /// cell array inside the macro footprint), so area scales with the
    /// stored rows — a 1080p design is physically larger than a 320p one
    /// even when both consume the same number of allocation blocks.
    pub fn memory_area_mm2(&self) -> f64 {
        let sram: f64 = self
            .buffers
            .iter()
            .flat_map(|b| &b.blocks)
            .map(|blk| {
                SramModel::area_mm2(SramConfig {
                    bits: blk.used_bits.max(1),
                    ports: blk.ports,
                    word_bits: self.geometry.pixel_bits,
                })
            })
            .sum();
        sram + DffModel::area_mm2(self.buffer_dff_bits())
    }

    /// On-chip memory power, mW, from per-block access statistics.
    ///
    /// ASIC: leakage + access energy × access rate. FPGA: the BRAM model
    /// (static + per-access, with the 35% two-access penalty built in).
    /// DFF buffers shift every cycle.
    pub fn memory_power_mw(&self) -> f64 {
        let mut total = 0.0;
        for b in &self.buffers {
            for blk in &b.blocks {
                total += match self.backend {
                    MemBackend::Asic { .. } => {
                        // Leakage follows the powered macro; dynamic energy
                        // follows the *active* array (rows actually stored),
                        // which is why coalesced blocks pay more per access
                        // — the Fig. 10 area-vs-power tension.
                        let leak_cfg = SramConfig {
                            bits: blk.used_bits.max(1),
                            ports: blk.ports,
                            word_bits: self.geometry.pixel_bits,
                        };
                        let dyn_cfg = SramConfig {
                            bits: blk.used_bits.max(1),
                            ports: blk.ports,
                            word_bits: self.geometry.pixel_bits,
                        };
                        let reads =
                            (blk.avg_accesses_per_cycle - blk.avg_writes_per_cycle).max(0.0);
                        SramModel::leakage_mw(leak_cfg)
                            + pj_per_cycle_to_mw(
                                SramModel::read_energy_pj(dyn_cfg) * reads
                                    + SramModel::write_energy_pj(dyn_cfg)
                                        * blk.avg_writes_per_cycle,
                                CLOCK_MHZ,
                            )
                    }
                    MemBackend::Fpga => BramModel::power_mw(blk.avg_accesses_per_cycle),
                };
            }
            total += DffModel::shift_power_mw(b.dff_bits, CLOCK_MHZ);
        }
        total
    }

    /// Total accelerator area: memory + PEs + shift-register arrays.
    pub fn total_area_mm2(&self) -> f64 {
        self.memory_area_mm2() + self.pe_area_mm2 + DffModel::area_mm2(self.sra_bits)
    }

    /// Total accelerator power: memory + PEs + shift-register arrays.
    pub fn total_power_mw(&self) -> f64 {
        self.memory_power_mw()
            + self.pe_power_mw
            + DffModel::shift_power_mw(self.sra_bits, CLOCK_MHZ)
    }

    /// Fraction of total area spent on memory (the paper reports ≈ 79.8%
    /// at 320p and 92.7% at 1080p).
    pub fn memory_area_fraction(&self) -> f64 {
        self.memory_area_mm2() / self.total_area_mm2()
    }

    /// Largest per-block peak access count vs. ports — `true` when no
    /// block is ever oversubscribed (the paper's requirement R3).
    pub fn ports_respected(&self) -> bool {
        self.buffers
            .iter()
            .flat_map(|b| &b.blocks)
            .all(|blk| blk.peak_accesses <= blk.ports)
    }
}

/// Allocates the physical blocks of one line buffer.
///
/// * `phys_rows` — rows to allocate (logical + aliasing slack);
/// * `rows_per_block` — the coalescing factor `g`;
/// * `dff_bits` — head bits held in DFFs instead of SRAM (SODA-style);
/// * `fifo` — allocate as FIFO segments (`BlockRole::FifoSegment`).
///
/// Handles both fragmentation regimes: rows that fit a block (possibly
/// several per block when coalescing) and rows that must split across
/// multiple blocks (1080p rows on small macros).
#[allow(clippy::too_many_arguments)] // a parameter struct would obscure the call sites
pub fn allocate_buffer(
    stage: usize,
    phys_rows: u32,
    logical_rows: u32,
    rows_per_block: u32,
    geom: &ImageGeometry,
    backend: MemBackend,
    ports: u32,
    dff_bits: u64,
    fifo: bool,
) -> BufferPlan {
    let row_bits = geom.row_bits();
    let block_bits = backend.block_bits();
    let role = if fifo {
        BlockRole::FifoSegment
    } else {
        BlockRole::LineStore
    };
    let mut blocks = Vec::new();
    let mut blocks_per_row = 1u32;

    if phys_rows > 0 {
        if row_bits > block_bits {
            // A row spans several blocks (e.g. 1080p rows on small macros).
            blocks_per_row = row_bits.div_ceil(block_bits) as u32;
            for _row in 0..phys_rows {
                let mut remaining = row_bits;
                for _ in 0..blocks_per_row {
                    let used = remaining.min(block_bits);
                    remaining -= used;
                    blocks.push(PhysBlock {
                        capacity_bits: block_bits,
                        used_bits: used,
                        ports,
                        role,
                        avg_accesses_per_cycle: 0.0,
                        avg_writes_per_cycle: 0.0,
                        peak_accesses: 0,
                    });
                }
            }
        } else {
            let g = rows_per_block.max(1);
            let nblocks = phys_rows.div_ceil(g);
            let mut rows_left = phys_rows;
            for _ in 0..nblocks {
                let rows_here = g.min(rows_left);
                rows_left -= rows_here;
                blocks.push(PhysBlock {
                    capacity_bits: block_bits,
                    used_bits: rows_here as u64 * row_bits,
                    ports,
                    role,
                    avg_accesses_per_cycle: 0.0,
                    avg_writes_per_cycle: 0.0,
                    peak_accesses: 0,
                });
            }
        }
    }

    BufferPlan {
        stage,
        logical_rows,
        phys_rows,
        rows_per_block: rows_per_block.max(1),
        blocks_per_row,
        blocks,
        dff_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom320() -> ImageGeometry {
        ImageGeometry::p320()
    }

    #[test]
    fn plain_allocation_one_row_per_block() {
        let plan = allocate_buffer(
            0,
            3,
            3,
            1,
            &geom320(),
            MemBackend::asic_default(),
            2,
            0,
            false,
        );
        assert_eq!(plan.blocks.len(), 3);
        assert_eq!(plan.blocks[0].used_bits, 7680);
        assert_eq!(plan.capacity_bits(), 3 * 32768);
        assert_eq!(plan.block_of(0, 0, &geom320()), Some(0));
        assert_eq!(plan.block_of(4, 0, &geom320()), Some(1), "rotation wraps");
    }

    #[test]
    fn coalesced_allocation_halves_blocks() {
        let plan = allocate_buffer(
            0,
            4,
            3,
            2,
            &geom320(),
            MemBackend::asic_default(),
            2,
            0,
            false,
        );
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.blocks[0].used_bits, 2 * 7680);
        // Rows 0,1 -> block 0; rows 2,3 -> block 1; row 4 wraps to block 0.
        assert_eq!(plan.block_of(0, 0, &geom320()), Some(0));
        assert_eq!(plan.block_of(2, 0, &geom320()), Some(1));
        assert_eq!(plan.block_of(4, 0, &geom320()), Some(0));
    }

    #[test]
    fn split_rows_1080p() {
        let geom = ImageGeometry::p1080();
        // 30720-bit rows on 32 Kbit blocks fit; force splitting with a
        // smaller macro.
        let plan = allocate_buffer(
            0,
            2,
            2,
            1,
            &geom,
            MemBackend::Asic { block_bits: 16384 },
            2,
            0,
            false,
        );
        assert_eq!(plan.blocks_per_row, 2);
        assert_eq!(plan.blocks.len(), 4);
        // Column 0 lands in the row's first block, column 1919 in the second.
        assert_eq!(plan.block_of(0, 0, &geom), Some(0));
        assert_eq!(plan.block_of(0, 1919, &geom), Some(1));
        assert_eq!(plan.block_of(1, 0, &geom), Some(2));
    }

    #[test]
    fn design_metrics() {
        let plan = allocate_buffer(
            0,
            3,
            3,
            1,
            &geom320(),
            MemBackend::asic_default(),
            2,
            0,
            false,
        );
        let mut design = Design {
            name: "t".into(),
            geometry: geom320(),
            backend: MemBackend::asic_default(),
            style: DesignStyle::Ours,
            start_cycles: vec![0, 961],
            buffers: vec![plan],
            pe_area_mm2: 0.01,
            pe_power_mw: 0.5,
            sra_bits: 9 * 16,
        };
        assert!((design.sram_kb() - 12.0).abs() < 1e-9, "3 x 4KB blocks");
        assert_eq!(design.block_count(), 3);
        assert!(design.memory_area_mm2() > 0.0);
        assert!(design.total_area_mm2() > design.memory_area_mm2());
        // Fill access stats and check power responds.
        let p0 = design.memory_power_mw();
        for b in &mut design.buffers {
            for blk in &mut b.blocks {
                blk.avg_accesses_per_cycle = 1.0;
                blk.peak_accesses = 2;
            }
        }
        assert!(design.memory_power_mw() > p0);
        assert!(design.ports_respected());
        design.buffers[0].blocks[0].peak_accesses = 3;
        assert!(!design.ports_respected());
    }

    #[test]
    fn fifo_role_allocates() {
        let plan = allocate_buffer(1, 2, 2, 1, &geom320(), MemBackend::Fpga, 2, 480 * 16, true);
        assert!(plan.blocks.iter().all(|b| b.role == BlockRole::FifoSegment));
        assert_eq!(plan.dff_bits, 7680);
        assert_eq!(plan.blocks[0].capacity_bits, BramModel::BLOCK_BITS);
    }

    #[test]
    fn empty_buffer_is_legal() {
        // SODA head-only buffers: everything in DFFs, no SRAM blocks.
        let plan = allocate_buffer(0, 0, 0, 1, &geom320(), MemBackend::Fpga, 2, 100, true);
        assert!(plan.blocks.is_empty());
        assert_eq!(plan.block_of(0, 0, &geom320()), None);
        assert_eq!(plan.capacity_bits(), 0);
    }
}
