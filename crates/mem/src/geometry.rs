//! Image geometry shared by the scheduler, simulator and cost models.

use std::fmt;

/// Frame dimensions and pixel width.
///
/// The paper evaluates 320p (480×320) and 1080p (1920×1080) frames with a
/// fixed pixel datapath; this reproduction uses 16-bit pixels (documented
/// in `DESIGN.md` §7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ImageGeometry {
    /// Frame width in pixels (the scheduler's `W`).
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Bits per pixel.
    pub pixel_bits: u32,
}

impl ImageGeometry {
    /// The paper's 320p resolution (480×320).
    pub fn p320() -> ImageGeometry {
        ImageGeometry {
            width: 480,
            height: 320,
            pixel_bits: 16,
        }
    }

    /// The paper's 1080p resolution (1920×1080).
    pub fn p1080() -> ImageGeometry {
        ImageGeometry {
            width: 1920,
            height: 1080,
            pixel_bits: 16,
        }
    }

    /// Pixels per frame.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Bits in one image row (one line-buffer line).
    pub fn row_bits(&self) -> u64 {
        self.width as u64 * self.pixel_bits as u64
    }
}

impl fmt::Display for ImageGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}@{}b", self.width, self.height, self.pixel_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let p = ImageGeometry::p320();
        assert_eq!((p.width, p.height), (480, 320));
        assert_eq!(p.pixels(), 153_600);
        assert_eq!(p.row_bits(), 7_680);
        let q = ImageGeometry::p1080();
        assert_eq!((q.width, q.height), (1920, 1080));
        assert_eq!(q.row_bits(), 30_720);
    }
}
