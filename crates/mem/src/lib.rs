//! # imagen-mem
//!
//! Hardware cost models and memory planning for the [ImaGen] accelerator
//! generator.
//!
//! * [`ImageGeometry`] — frame dimensions (the paper's 320p/1080p);
//! * [`MemorySpec`] / [`MemBackend`] — the compiler's hardware input:
//!   block sizes, port counts, per-stage DSE overrides (Sec. 4, 8.5);
//! * [`tech`] — analytical SRAM/BRAM/DFF/PE cost models substituting for
//!   OpenRAM+FreePDK45 and Vivado (DESIGN.md §5);
//! * [`Design`] / [`BufferPlan`] / [`allocate_buffer`] — the planned
//!   memory system every generator (ours + baselines) produces, priced
//!   into the paper's metrics (SRAM KB, block counts, mm², mW).
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod geometry;
mod spec;
pub mod tech;

pub use design::{allocate_buffer, BlockRole, BufferPlan, Design, DesignStyle, PhysBlock};
pub use geometry::ImageGeometry;
pub use spec::{MemBackend, MemorySpec, StageMemConfig};
pub use tech::{BramModel, DffModel, PeModel, SramConfig, SramModel, CLOCK_MHZ};
