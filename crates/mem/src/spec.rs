//! On-chip memory specifications — the compiler's hardware input.
//!
//! The ImaGen front end takes, besides the algorithm, a description of the
//! memory structures available (block sizes and port counts, Sec. 4). A
//! [`MemorySpec`] carries the backend (ASIC macro library or FPGA BRAM),
//! the default port count, and optional per-stage overrides used by the
//! design-space exploration (Sec. 8.5: DP vs. DPLC per stage).

use crate::geometry::ImageGeometry;
use crate::tech::BramModel;
use std::collections::HashMap;

/// Memory backend targeted by a compilation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemBackend {
    /// ASIC flow with a fixed-size SRAM macro library.
    Asic {
        /// Capacity of one SRAM macro, bits.
        block_bits: u64,
    },
    /// FPGA flow with 36 Kbit BRAM blocks (Spartan-7 style).
    Fpga,
}

impl MemBackend {
    /// The paper's ASIC line-buffer macro (32 Kbit; DESIGN.md §7 explains
    /// the calibration: a 320p row fits 4×, a 1080p row fits 1×).
    pub fn asic_default() -> MemBackend {
        MemBackend::Asic { block_bits: 32768 }
    }

    /// Capacity of one block, bits.
    pub fn block_bits(&self) -> u64 {
        match self {
            MemBackend::Asic { block_bits } => *block_bits,
            MemBackend::Fpga => BramModel::BLOCK_BITS,
        }
    }
}

/// Per-stage memory configuration override (DSE knob).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StageMemConfig {
    /// Port count of the blocks implementing this stage's line buffer.
    pub ports: u32,
    /// Whether line coalescing is enabled for this stage's line buffer.
    pub coalesce: bool,
}

/// Description of the on-chip memory available to the generator.
///
/// # Examples
///
/// ```
/// use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
///
/// let spec = MemorySpec::new(MemBackend::asic_default(), 2);
/// let geom = ImageGeometry::p320();
/// // Dual-port 32 Kbit blocks hold up to 4 rows of 480x16b, but the port
/// // count caps the coalescing factor at 2.
/// assert_eq!(spec.rows_fitting(&geom), 4);
/// assert_eq!(spec.coalesce_factor(0, &geom), 1); // coalescing off by default
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct MemorySpec {
    backend: MemBackend,
    default_ports: u32,
    default_coalesce: bool,
    overrides: HashMap<usize, StageMemConfig>,
}

impl MemorySpec {
    /// Creates a spec with uniform `ports`-ported blocks and coalescing off.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    #[track_caller]
    pub fn new(backend: MemBackend, ports: u32) -> MemorySpec {
        assert!(ports > 0, "memory blocks need at least one port");
        MemorySpec {
            backend,
            default_ports: ports,
            default_coalesce: false,
            overrides: HashMap::new(),
        }
    }

    /// Enables line coalescing for every stage (the paper's `Ours+LC`).
    pub fn with_coalescing(mut self) -> MemorySpec {
        self.default_coalesce = true;
        self
    }

    /// Overrides the configuration of one stage's line buffer (DSE knob).
    pub fn set_stage(&mut self, stage: usize, cfg: StageMemConfig) -> &mut MemorySpec {
        self.overrides.insert(stage, cfg);
        self
    }

    /// The memory backend.
    pub fn backend(&self) -> MemBackend {
        self.backend
    }

    /// Port count for a stage's buffer blocks.
    pub fn ports_for(&self, stage: usize) -> u32 {
        self.overrides
            .get(&stage)
            .map(|c| c.ports)
            .unwrap_or(self.default_ports)
    }

    /// Whether a stage's buffer uses line coalescing.
    pub fn coalesce_enabled(&self, stage: usize) -> bool {
        self.overrides
            .get(&stage)
            .map(|c| c.coalesce)
            .unwrap_or(self.default_coalesce)
    }

    /// How many rows of `geom` fit in one block (0 if a row must be split
    /// across blocks).
    pub fn rows_fitting(&self, geom: &ImageGeometry) -> u32 {
        (self.backend.block_bits() / geom.row_bits()) as u32
    }

    /// Whether any stage's buffer actually coalesces at this geometry —
    /// the rule labeling a design `Ours+LC` rather than `Ours`. Scans the
    /// per-stage overrides plus the default configuration.
    pub fn ever_coalesces(&self, geom: &ImageGeometry) -> bool {
        let default_factor = if self.default_coalesce {
            self.default_ports.min(self.rows_fitting(geom)).max(1)
        } else {
            1
        };
        default_factor > 1
            || self
                .overrides
                .keys()
                .any(|&stage| self.coalesce_factor(stage, geom) > 1)
    }

    /// The effective coalescing factor `g` for a stage: `min(P, rows that
    /// fit)` when enabled (Algo. 1's bound), otherwise 1.
    ///
    /// Matches the paper's setup: at 320p the blocks hold several rows so
    /// `g = P = 2`; at 1080p a block holds at most one row so `g = 1` and
    /// coalescing is unavailable (Sec. 7).
    pub fn coalesce_factor(&self, stage: usize, geom: &ImageGeometry) -> u32 {
        if !self.coalesce_enabled(stage) {
            return 1;
        }
        self.ports_for(stage).min(self.rows_fitting(geom)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_regimes_match_paper() {
        let spec = MemorySpec::new(MemBackend::asic_default(), 2).with_coalescing();
        // 320p: 32768 / 7680 = 4 rows fit; g = min(2, 4) = 2.
        assert_eq!(spec.coalesce_factor(0, &ImageGeometry::p320()), 2);
        // 1080p: 32768 / 30720 = 1 row fits; g = 1 (no coalescing).
        assert_eq!(spec.coalesce_factor(0, &ImageGeometry::p1080()), 1);
    }

    #[test]
    fn fpga_regimes() {
        let spec = MemorySpec::new(MemBackend::Fpga, 2).with_coalescing();
        // BRAM 36864 bits: 320p rows (7680b) -> 4 fit, g = 2.
        assert_eq!(spec.coalesce_factor(0, &ImageGeometry::p320()), 2);
        // 1080p rows (30720b) -> 1 fits, g = 1.
        assert_eq!(spec.coalesce_factor(0, &ImageGeometry::p1080()), 1);
    }

    #[test]
    fn per_stage_overrides() {
        let mut spec = MemorySpec::new(MemBackend::asic_default(), 2);
        spec.set_stage(
            3,
            StageMemConfig {
                ports: 1,
                coalesce: false,
            },
        );
        assert_eq!(spec.ports_for(3), 1);
        assert_eq!(spec.ports_for(0), 2);
        assert!(!spec.coalesce_enabled(3));
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = MemorySpec::new(MemBackend::Fpga, 0);
    }
}
