//! Analytical memory and compute cost models.
//!
//! The paper prices ASIC memories with OpenRAM + FreePDK45 and FPGA
//! memories with Vivado's power analyzer; neither tool exists in this
//! environment, so this module provides analytical substitutes calibrated
//! to reproduce the *relative* behaviours every comparison in the paper
//! depends on (DESIGN.md §5):
//!
//! * SRAM cell area grows **quadratically with the port count**
//!   (Weste–Harris, the paper's citation \[37\]): doubling ports roughly
//!   doubles a block's area.
//! * Per-access energy grows with block capacity (≈ √bits bitline/periphery
//!   scaling, CACTI-style) and with port loading.
//! * A dual-port FPGA BRAM serving two accesses per cycle consumes ≈ 35%
//!   more power than one access per cycle (the paper's own measurement,
//!   Sec. 3.1).
//! * DFF storage is an order of magnitude less dense than SRAM and toggles
//!   every cycle when used as a shift register (SODA's head segments).
//!
//! Absolute scales are calibrated so that the average ImaGen accelerator
//! lands near the paper's reported 0.65 mm² / 72.9 mW at 320p.

/// An SRAM macro configuration (ASIC backend).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SramConfig {
    /// Storage capacity in bits.
    pub bits: u64,
    /// Number of read/write ports (1 or 2 in the evaluation).
    pub ports: u32,
    /// Word width in bits (one pixel per word in line buffers).
    pub word_bits: u32,
}

/// FreePDK45-flavored constants for the SRAM model.
mod k {
    /// 6T cell area at 45 nm, mm² per bit (≈ 0.49 µm²/bit with overhead).
    pub const CELL_MM2_PER_BIT: f64 = 0.49e-6;
    /// Port scaling of cell area. Area grows superlinearly with port
    /// count ([37]); for the 1→2 port step the realistic cost is the
    /// 6T→8T cell plus a second wordline/bitline pair, ≈ 1.45×, with the
    /// quadratic term dominating beyond that.
    pub fn port_area_factor(ports: u32) -> f64 {
        let p = ports as f64;
        1.0 + 0.45 * (p - 1.0) + 0.15 * (p - 1.0) * (p - 1.0)
    }
    /// Fixed periphery area per macro, mm² (decoder, sense amps, control).
    pub const MACRO_OVERHEAD_MM2: f64 = 0.004;
    /// Periphery area scaling with √bits, mm².
    pub const PERIPHERY_MM2_PER_SQRT_BIT: f64 = 6.0e-5;
    /// Per-read energy: fixed part, pJ.
    pub const ACCESS_PJ_BASE: f64 = 0.8;
    /// Per-read energy: √bits part, pJ.
    pub const ACCESS_PJ_PER_SQRT_BIT: f64 = 0.026;
    /// Extra per-access energy per additional port (loading), ratio.
    pub const PORT_ENERGY_SLOPE: f64 = 0.15;
    /// Write energy relative to read energy (full bitline swing vs. sense
    /// amplification; the asymmetry that penalizes FIFO designs, which
    /// re-write every pixel at every segment).
    pub const WRITE_ENERGY_RATIO: f64 = 2.0;
    /// Leakage per macro (periphery, decoders, sense amps), mW — the
    /// block-count-driven static cost.
    pub const LEAK_MW_PER_MACRO: f64 = 0.45;
    /// Leakage, mW per Mbit of cells (scaled by the port area factor).
    pub const LEAK_MW_PER_MBIT: f64 = 0.35;

    /// DFF area per bit, mm² (≈ 12× the 6T cell).
    pub const DFF_MM2_PER_BIT: f64 = 6.0e-6;
    /// DFF energy per bit per cycle when shifting, pJ.
    pub const DFF_SHIFT_PJ_PER_BIT: f64 = 0.011;

    /// BRAM static power per used block, mW.
    pub const BRAM_STATIC_MW: f64 = 1.9;
    /// BRAM per-access power at the evaluation clock, mW per access/cycle.
    /// Chosen so two accesses/cycle ≈ 1.35× the one-access power.
    pub const BRAM_ACCESS_MW: f64 = 1.023;

    /// PE area: adder/comparator/mux, mm² (16-bit datapath with operand
    /// registers and control, 45 nm).
    pub const ADD_MM2: f64 = 1.1e-3;
    /// PE area: multiplier, mm².
    pub const MUL_MM2: f64 = 8.0e-3;
    /// PE area: divider, mm².
    pub const DIV_MM2: f64 = 2.0e-2;
    /// PE energy per op, pJ: adder-class.
    pub const ADD_PJ: f64 = 0.05;
    /// PE energy per op, pJ: multiplier.
    pub const MUL_PJ: f64 = 0.6;
    /// PE energy per op, pJ: divider.
    pub const DIV_PJ: f64 = 1.6;
}

/// ASIC SRAM macro model (OpenRAM/FreePDK45 substitute).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SramModel;

impl SramModel {
    /// Macro area in mm².
    pub fn area_mm2(cfg: SramConfig) -> f64 {
        let cells = cfg.bits as f64 * k::CELL_MM2_PER_BIT * k::port_area_factor(cfg.ports);
        let periphery = k::MACRO_OVERHEAD_MM2
            + k::PERIPHERY_MM2_PER_SQRT_BIT * (cfg.bits as f64).sqrt()
            + 0.0008 * (cfg.ports as f64 - 1.0);
        cells + periphery
    }

    /// Energy of one read access, pJ.
    pub fn read_energy_pj(cfg: SramConfig) -> f64 {
        let base = k::ACCESS_PJ_BASE + k::ACCESS_PJ_PER_SQRT_BIT * (cfg.bits as f64).sqrt();
        base * (1.0 + k::PORT_ENERGY_SLOPE * (cfg.ports as f64 - 1.0))
    }

    /// Energy of one write access, pJ (bitlines swing fully, so writes
    /// cost [`WRITE_ENERGY_RATIO`]× a read — the asymmetry behind the
    /// paper's FIFO power penalty).
    ///
    /// [`WRITE_ENERGY_RATIO`]: #
    pub fn write_energy_pj(cfg: SramConfig) -> f64 {
        Self::read_energy_pj(cfg) * k::WRITE_ENERGY_RATIO
    }

    /// Energy of one read or write access (average), pJ.
    pub fn access_energy_pj(cfg: SramConfig) -> f64 {
        0.5 * (Self::read_energy_pj(cfg) + Self::write_energy_pj(cfg))
    }

    /// Leakage power of the macro, mW: a per-macro periphery term (the
    /// block-count-driven cost that makes single-port FixyNN designs lose
    /// overall despite cheaper accesses) plus a per-bit cell term.
    pub fn leakage_mw(cfg: SramConfig) -> f64 {
        k::LEAK_MW_PER_MACRO
            + k::LEAK_MW_PER_MBIT * (cfg.bits as f64 / 1.0e6) * k::port_area_factor(cfg.ports)
    }
}

/// Xilinx-style 36 Kbit BRAM model (Spartan-7 substitute).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BramModel;

impl BramModel {
    /// Capacity of one BRAM block, bits.
    pub const BLOCK_BITS: u64 = 36 * 1024;

    /// Power of one used BRAM block given its average accesses per cycle.
    ///
    /// Two accesses/cycle ≈ 1.35× one access/cycle, matching the paper's
    /// FPGA measurement.
    pub fn power_mw(accesses_per_cycle: f64) -> f64 {
        k::BRAM_STATIC_MW + k::BRAM_ACCESS_MW * accesses_per_cycle
    }

    /// Static power of one used BRAM block, mW (the zero-access floor of
    /// [`BramModel::power_mw`]).
    pub fn static_mw() -> f64 {
        k::BRAM_STATIC_MW
    }

    /// Energy of one BRAM access at the evaluation clock, pJ — the
    /// per-event form of the dynamic term of [`BramModel::power_mw`]
    /// (`power_mw(r) == static_mw() + pj_per_cycle_to_mw(access_energy_pj()
    /// * r, CLOCK_MHZ)`), used by the activity-based energy meter.
    pub fn access_energy_pj() -> f64 {
        k::BRAM_ACCESS_MW / (CLOCK_MHZ * 1.0e-3)
    }
}

/// DFF / shift-register storage model.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DffModel;

impl DffModel {
    /// Area of `bits` of DFF storage, mm².
    pub fn area_mm2(bits: u64) -> f64 {
        bits as f64 * k::DFF_MM2_PER_BIT
    }

    /// Power of `bits` of DFF storage shifting every cycle at `mhz`, mW.
    pub fn shift_power_mw(bits: u64, mhz: f64) -> f64 {
        // pJ/cycle * cycles/s = pJ * MHz * 1e6 / 1e9 mW = pJ * MHz * 1e-3.
        bits as f64 * k::DFF_SHIFT_PJ_PER_BIT * mhz * 1.0e-3
    }

    /// Energy of shifting `bits` of DFF storage for one cycle, pJ — the
    /// per-event form of [`DffModel::shift_power_mw`], used when actual
    /// shift cycles are counted instead of assumed every-cycle.
    pub fn shift_energy_pj(bits: u64) -> f64 {
        bits as f64 * k::DFF_SHIFT_PJ_PER_BIT
    }
}

/// Functional-unit cost model for the stencil PEs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PeModel;

impl PeModel {
    /// Area of a PE with the given op counts, mm².
    pub fn area_mm2(adds: usize, muls: usize, divs: usize, cmps: usize, muxes: usize) -> f64 {
        (adds + cmps + muxes) as f64 * k::ADD_MM2
            + muls as f64 * k::MUL_MM2
            + divs as f64 * k::DIV_MM2
    }

    /// Energy of one activation of the PE, pJ.
    pub fn energy_pj(adds: usize, muls: usize, divs: usize, cmps: usize, muxes: usize) -> f64 {
        (adds + cmps + muxes) as f64 * k::ADD_PJ + muls as f64 * k::MUL_PJ + divs as f64 * k::DIV_PJ
    }
}

/// Converts energy-per-cycle (pJ) at a clock (MHz) into mW.
pub fn pj_per_cycle_to_mw(pj: f64, mhz: f64) -> f64 {
    pj * mhz * 1.0e-3
}

/// The evaluation clock frequency, MHz (paper Sec. 5.1 assumes 100 MHz).
pub const CLOCK_MHZ: f64 = 100.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bits: u64, ports: u32) -> SramConfig {
        SramConfig {
            bits,
            ports,
            word_bits: 16,
        }
    }

    #[test]
    fn port_scaling_superlinear() {
        // Dual-port ≈ 1.45x cells; quad-port grows faster than linearly.
        let a1 = SramModel::area_mm2(cfg(32768, 1));
        let a2 = SramModel::area_mm2(cfg(32768, 2));
        let ratio = a2 / a1;
        assert!(
            ratio > 1.2 && ratio < 1.6,
            "dual-port block should cost ~1.45x the area, got {ratio}"
        );
        let f2 = super::k::port_area_factor(2) - super::k::port_area_factor(1);
        let f4 = super::k::port_area_factor(4) - super::k::port_area_factor(3);
        assert!(f4 > f2, "marginal port cost grows");
    }

    #[test]
    fn bigger_blocks_amortize_overhead() {
        // One 32 Kbit block must be cheaper than two 16 Kbit blocks.
        let one = SramModel::area_mm2(cfg(32768, 2));
        let two = 2.0 * SramModel::area_mm2(cfg(16384, 2));
        assert!(one < two);
    }

    #[test]
    fn access_energy_grows_with_size_and_ports() {
        assert!(
            SramModel::access_energy_pj(cfg(65536, 1)) > SramModel::access_energy_pj(cfg(8192, 1))
        );
        assert!(
            SramModel::access_energy_pj(cfg(32768, 2)) > SramModel::access_energy_pj(cfg(32768, 1))
        );
    }

    #[test]
    fn bram_two_access_penalty_is_35_percent() {
        let one = BramModel::power_mw(1.0);
        let two = BramModel::power_mw(2.0);
        let ratio = two / one;
        assert!((ratio - 1.35).abs() < 0.01, "expected ~1.35x, got {ratio}");
    }

    #[test]
    fn dff_denser_in_power_than_area() {
        // A 480-pixel (7.7 Kbit) DFF line is much larger than its SRAM
        // equivalent but avoids SRAM port pressure.
        let bits = 480 * 16;
        assert!(DffModel::area_mm2(bits) > SramModel::area_mm2(cfg(bits, 2)) * 0.5);
        assert!(DffModel::shift_power_mw(bits, CLOCK_MHZ) > 0.0);
    }

    #[test]
    fn pe_model_orders_ops() {
        assert!(PeModel::area_mm2(0, 1, 0, 0, 0) > PeModel::area_mm2(7, 0, 0, 0, 0));
        assert!(PeModel::energy_pj(0, 0, 1, 0, 0) > PeModel::energy_pj(0, 1, 0, 0, 0));
    }

    #[test]
    fn unit_conversion() {
        // 10 pJ per cycle at 100 MHz = 1 mW.
        assert!((pj_per_cycle_to_mw(10.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_event_forms_match_rate_forms() {
        // The event-level accessors must integrate back to the rate-level
        // models they decompose.
        for rate in [0.0, 0.5, 1.0, 2.0] {
            let rebuilt = BramModel::static_mw()
                + pj_per_cycle_to_mw(BramModel::access_energy_pj() * rate, CLOCK_MHZ);
            assert!((rebuilt - BramModel::power_mw(rate)).abs() < 1e-12);
        }
        let bits = 480 * 16;
        assert!(
            (pj_per_cycle_to_mw(DffModel::shift_energy_pj(bits), CLOCK_MHZ)
                - DffModel::shift_power_mw(bits, CLOCK_MHZ))
            .abs()
                < 1e-12
        );
    }
}
