//! # imagen-obs
//!
//! Observability substrate for the ImaGen compile stack: a lock-cheap
//! [`Metrics`] registry (atomic counters, gauges, and log-scale
//! histograms with p50/p90/p99 extraction) plus a [`Collector`] of
//! hierarchical timed spans with text-timeline and Chrome
//! `trace_event` JSON export.
//!
//! The crate is std-only and sits at the bottom of the workspace
//! dependency graph so every layer (ILP, scheduler, RTL, core, DSE,
//! CLI, serve) can be instrumented without cycles.
//!
//! ## Design constraints
//!
//! * **Uninstrumented paths stay free.** [`span`] reads one
//!   thread-local; when no collector is installed it returns an inert
//!   guard without ever calling `Instant::now()`. The compile pipeline
//!   is instrumented unconditionally, and the regression gate pins the
//!   cost of the disabled probes at ≤ 1%.
//! * **Snapshots race live writers safely.** Every metric cell is an
//!   atomic; [`Metrics::snapshot`] reads them relaxed while other
//!   threads keep writing. A snapshot is a consistent-enough view for
//!   operational stats, not a linearizable cut.
//! * **Determinism is untouched.** Instrumentation only appends to
//!   side channels (atomics, per-thread span logs); compile results
//!   are byte-identical with and without a collector installed, pinned
//!   by proptests in `imagen-core`.
//!
//! ## Examples
//!
//! ```
//! use imagen_obs::{span, Collector, Metrics};
//! use std::sync::Arc;
//!
//! let metrics = Metrics::new();
//! let compiles = metrics.counter("requests.compile");
//! compiles.add(1);
//!
//! let collector = Arc::new(Collector::new());
//! imagen_obs::with_collector(&collector, || {
//!     let _outer = span("compile");
//!     {
//!         let _inner = span("ilp.solve");
//!     }
//! });
//! let phases = collector.phase_totals();
//! assert_eq!(phases[0].name, "compile");
//! assert_eq!(metrics.snapshot().counters[0].1, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    Counter, Gauge, HistSnapshot, Histogram, Metrics, MetricsSnapshot, SNAPSHOT_SCHEMA,
};
pub use trace::{
    collector_installed, span, with_collector, Collector, PhaseTotal, SpanGuard, SpanRecord,
};
