//! The metrics registry: named atomic counters, gauges, and log-scale
//! histograms, with racing-safe snapshots and a stable JSON export.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag of the JSON produced by [`MetricsSnapshot::to_json`].
pub const SNAPSHOT_SCHEMA: &str = "imagen-metrics/1";

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (all adds are kept but
    /// only visible through [`Counter::get`]).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. in-flight requests). Cloning
/// shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: values 0–3 exactly, then 4 linear
/// sub-buckets per power of two up to `u64::MAX` (relative bucket width
/// ≤ 25%, plenty for latency percentiles).
const HIST_BUCKETS: usize = 252;

fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let p = 63 - v.leading_zeros() as usize; // p >= 2
    let sub = ((v >> (p - 2)) & 3) as usize;
    4 + (p - 2) * 4 + sub
}

/// `[lower, upper]` value range covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 4 {
        return (idx as u64, idx as u64);
    }
    let p = 2 + (idx - 4) / 4;
    let sub = ((idx - 4) % 4) as u64;
    let lo = (1u64 << p) + (sub << (p - 2));
    let hi = lo + ((1u64 << (p - 2)) - 1);
    (lo, hi)
}

#[derive(Debug)]
struct HistCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// microseconds). Recording is wait-free; snapshots race writers
/// safely. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCells>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistCells {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// `[lower, upper]` bounds of the bucket holding the exact
    /// `q`-quantile (0 < q ≤ 1) of the samples recorded so far, or
    /// `None` when empty. The exact order statistic always lies within
    /// the returned range.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_from_buckets(&counts, q)
    }

    /// A consistent-enough summary of the histogram. Percentiles are
    /// the upper bound of the bucket holding the exact rank.
    pub fn snapshot(&self) -> HistSnapshot {
        let c = &self.0;
        let counts: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let q = |q: f64| quantile_from_buckets(&counts, q).map_or(0, |(_, hi)| hi);
        HistSnapshot {
            count: total,
            sum: c.sum.load(Ordering::Relaxed),
            min: if total == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
        }
    }
}

/// Walks the copied bucket counts to the bucket containing the exact
/// `q`-quantile rank and returns its value bounds.
fn quantile_from_buckets(counts: &[u64], q: f64) -> Option<(u64, u64)> {
    let total: u64 = counts.iter().sum();
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    // Rank of the order statistic: ceil(q * total), clamped to 1..=total.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (idx, &n) in counts.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Some(bucket_bounds(idx));
        }
    }
    None
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wraps only after ~585 years of microseconds).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Upper bound of the bucket holding the median.
    pub p50: u64,
    /// Upper bound of the bucket holding the 90th percentile.
    pub p90: u64,
    /// Upper bound of the bucket holding the 99th percentile.
    pub p99: u64,
}

impl HistSnapshot {
    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// The metrics registry. Registration (`counter`/`gauge`/`histogram`)
/// takes a short mutex and returns a shared handle; all subsequent
/// updates through the handle are lock-free atomics. Get-or-create
/// semantics: the same name always yields the same cell.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Registry>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.lock().unwrap();
        if let Some((_, c)) = reg.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        reg.counters.push((name.to_string(), c.clone()));
        c
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.inner.lock().unwrap();
        if let Some((_, g)) = reg.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        reg.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.inner.lock().unwrap();
        if let Some((_, h)) = reg.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::default();
        reg.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Reads every registered instrument. The registry mutex is held
    /// only while cloning the handle lists; the atomic reads race any
    /// live writers, which is safe (each cell is read independently).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (counters, gauges, histograms) = {
            let reg = self.inner.lock().unwrap();
            (
                reg.counters.clone(),
                reg.gauges.clone(),
                reg.histograms.clone(),
            )
        };
        let mut snap = MetricsSnapshot {
            counters: counters.into_iter().map(|(n, c)| (n, c.get())).collect(),
            gauges: gauges.into_iter().map(|(n, g)| (n, g.get())).collect(),
            histograms: histograms
                .into_iter()
                .map(|(n, h)| (n, h.snapshot()))
                .collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// Point-in-time view of a [`Metrics`] registry, sorted by name.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistSnapshot)>,
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    /// The value of counter `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Serializes to one deterministic `imagen-metrics/1` JSON line
    /// (objects sorted by name, integers only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(SNAPSHOT_SCHEMA);
        out.push_str("\",\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_cover() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            15,
            16,
            100,
            1000,
            1 << 20,
            (1 << 20) + 17,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
            assert!(idx < HIST_BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    /// Percentiles against exact reference quantiles: the true order
    /// statistic must lie within the reported bucket's bounds.
    #[test]
    fn percentiles_bracket_exact_quantiles() {
        let cases: Vec<Vec<u64>> = vec![
            (1..=100).collect(),
            (0..1000).map(|i| i * i).collect(),
            vec![42; 500],
            (0..257).map(|i| 1u64 << (i % 40)).collect(),
        ];
        for values in cases {
            let h = Histogram::detached();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let (lo, hi) = h.quantile_bounds(q).unwrap();
                assert!(
                    lo <= exact && exact <= hi,
                    "q={q}: exact {exact} outside [{lo}, {hi}] (n={})",
                    sorted.len()
                );
            }
        }
    }

    #[test]
    fn snapshot_summarizes() {
        let h = Histogram::detached();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!(s.p50 >= 50 && s.p50 <= 63, "p50={}", s.p50);
        assert!(s.p99 >= 99, "p99={}", s.p99);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn registry_get_or_create_shares_cells() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(m.counter("x").get(), 5);
        let g = m.gauge("inflight");
        g.add(4);
        g.sub(1);
        assert_eq!(m.gauge("inflight").get(), 3);
        let snap = m.snapshot();
        assert_eq!(snap.counter("x"), 5);
        assert_eq!(snap.gauges, vec![("inflight".to_string(), 3)]);
    }

    #[test]
    fn json_export_is_deterministic_and_sorted() {
        let m = Metrics::new();
        m.counter("b.second").add(2);
        m.counter("a.first").add(1);
        m.histogram("lat_us").record(7);
        let j = m.snapshot().to_json();
        assert!(j.starts_with("{\"schema\":\"imagen-metrics/1\""));
        assert!(j.find("a.first").unwrap() < j.find("b.second").unwrap());
        assert!(j.contains("\"lat_us\":{\"count\":1,\"sum\":7,\"min\":7,\"max\":7"));
        assert_eq!(j, m.snapshot().to_json());
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::detached();
        assert_eq!(h.quantile_bounds(0.5), None);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }
}
