//! Hierarchical span tracing with a thread-local collector.
//!
//! Instrumented code calls [`span("name")`](span) and holds the
//! returned guard for the duration of the phase. When no [`Collector`]
//! is installed on the current thread the guard is inert: the call is
//! one thread-local read and a branch — no clock read, no allocation —
//! so always-on instrumentation costs nothing on production paths.
//! [`with_collector`] installs a collector for the dynamic extent of a
//! closure (per-request in `serve`, per-invocation for `--profile`).

use crate::metrics::push_json_str;
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

thread_local! {
    static COLLECTOR: RefCell<Option<Arc<Collector>>> = const { RefCell::new(None) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// One completed span, relative to the collector's epoch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Phase name (e.g. `"ilp.solve"`).
    pub name: &'static str,
    /// Start offset from the collector's creation, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// Dense per-collector thread index (0 = first thread seen).
    pub tid: u64,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    threads: Vec<ThreadId>,
}

/// A sink for completed spans. Create one, install it with
/// [`with_collector`], then render with [`Collector::phase_totals`],
/// [`Collector::timeline_text`], or [`Collector::chrome_trace_json`].
pub struct Collector {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector; its epoch (timeline zero) is now.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn push(&self, name: &'static str, start: Instant, dur_ns: u64, depth: u32) {
        let start_ns = start.duration_since(self.epoch).as_nanos() as u64;
        let thread = std::thread::current().id();
        let mut inner = self.inner.lock().unwrap();
        let tid = match inner.threads.iter().position(|t| *t == thread) {
            Some(i) => i as u64,
            None => {
                inner.threads.push(thread);
                (inner.threads.len() - 1) as u64
            }
        };
        inner.spans.push(SpanRecord {
            name,
            start_ns,
            dur_ns,
            depth,
            tid,
        });
    }

    /// All completed spans, ordered by thread then start time (guards
    /// complete child-first; this restores timeline order).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans = self.inner.lock().unwrap().spans.clone();
        spans.sort_by_key(|s| (s.tid, s.start_ns, s.depth));
        spans
    }

    /// Wall time aggregated by span name, in order of first appearance
    /// on the timeline.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut totals: Vec<PhaseTotal> = Vec::new();
        for s in self.spans() {
            match totals.iter_mut().find(|t| t.name == s.name) {
                Some(t) => {
                    t.total_ns += s.dur_ns;
                    t.count += 1;
                }
                None => totals.push(PhaseTotal {
                    name: s.name,
                    total_ns: s.dur_ns,
                    count: 1,
                }),
            }
        }
        totals
    }

    /// An indented text timeline of every span.
    pub fn timeline_text(&self) -> String {
        let spans = self.spans();
        let mut out = String::new();
        let mut last_tid = None;
        for s in &spans {
            if spans.iter().any(|x| x.tid != 0) && last_tid != Some(s.tid) {
                out.push_str(&format!("thread {}\n", s.tid));
                last_tid = Some(s.tid);
            }
            out.push_str(&format!(
                "{:>10.1} us  {}{} ({:.1} us)\n",
                s.start_ns as f64 / 1e3,
                "  ".repeat(s.depth as usize),
                s.name,
                s.dur_ns as f64 / 1e3,
            ));
        }
        out
    }

    /// Chrome `trace_event` JSON (load in `chrome://tracing` or
    /// Perfetto): one complete (`"ph":"X"`) event per span,
    /// microsecond timestamps.
    pub fn chrome_trace_json(&self, process_name: &str) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":",
        );
        push_json_str(&mut out, process_name);
        out.push_str("}}");
        for s in self.spans() {
            out.push_str(",{\"name\":");
            push_json_str(&mut out, s.name);
            out.push_str(&format!(
                ",\"cat\":\"imagen\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                s.start_ns / 1_000,
                s.dur_ns.div_ceil(1_000),
                s.tid + 1,
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Wall time aggregated over all spans sharing a name.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhaseTotal {
    /// Span name.
    pub name: &'static str,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Number of spans.
    pub count: u64,
}

/// Runs `f` with `collector` installed as the current thread's span
/// sink, restoring the previous sink (and depth) afterwards. Nestable;
/// panics in `f` propagate after restoration (guard-based).
pub fn with_collector<R>(collector: &Arc<Collector>, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Option<Arc<Collector>>,
        prev_depth: u32,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            COLLECTOR.with(|c| *c.borrow_mut() = self.prev.take());
            DEPTH.with(|d| d.set(self.prev_depth));
        }
    }
    let _restore = Restore {
        prev: COLLECTOR.with(|c| c.borrow_mut().replace(Arc::clone(collector))),
        prev_depth: DEPTH.with(|d| {
            let p = d.get();
            d.set(0);
            p
        }),
    };
    f()
}

/// Whether a collector is installed on the current thread. Lets
/// callers skip building expensive span metadata when tracing is off.
pub fn collector_installed() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Opens a span named `name`; the span closes when the returned guard
/// drops. Inert (no clock read) when no collector is installed.
pub fn span(name: &'static str) -> SpanGuard {
    let collector = COLLECTOR.with(|c| c.borrow().clone());
    let active = collector.map(|collector| {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Active {
            collector,
            start: Instant::now(),
            depth,
        }
    });
    SpanGuard { name, active }
}

struct Active {
    collector: Arc<Collector>,
    start: Instant,
    depth: u32,
}

/// RAII guard returned by [`span`]; records the span on drop.
pub struct SpanGuard {
    name: &'static str,
    active: Option<Active>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur_ns = a.start.elapsed().as_nanos() as u64;
            DEPTH.with(|d| d.set(a.depth));
            a.collector.push(self.name, a.start, dur_ns, a.depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_collector_means_inert_guards() {
        assert!(!collector_installed());
        let g = span("free");
        drop(g);
        // Nothing to observe — the point is simply that this ran
        // without a collector and without panicking.
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let c = Arc::new(Collector::new());
        with_collector(&c, || {
            let _a = span("outer");
            for _ in 0..3 {
                let _b = span("inner");
            }
        });
        assert!(!collector_installed());
        let spans = c.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert!(spans[1..].iter().all(|s| s.name == "inner" && s.depth == 1));
        let totals = c.phase_totals();
        assert_eq!(totals[0].name, "outer");
        assert_eq!(totals[1].count, 3);
        // Children are fully contained in the parent.
        assert!(totals[0].total_ns >= totals[1].total_ns);
    }

    #[test]
    fn nested_install_restores_outer() {
        let outer = Arc::new(Collector::new());
        let inner = Arc::new(Collector::new());
        with_collector(&outer, || {
            let _a = span("a");
            with_collector(&inner, || {
                let _b = span("b");
            });
            let _c = span("c");
        });
        let names: Vec<_> = outer.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a", "c"]);
        assert_eq!(inner.spans()[0].name, "b");
        assert_eq!(inner.spans()[0].depth, 0);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let c = Arc::new(Collector::new());
        with_collector(&c, || {
            let _a = span("compile");
            let _b = span("ilp.solve");
        });
        let j = c.chrome_trace_json("imagen compile");
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"name\":\"ilp.solve\""));
        assert!(j.ends_with("\"displayTimeUnit\":\"ms\"}"));
        let text = c.timeline_text();
        assert!(text.contains("compile"));
        assert!(text.contains("  ilp.solve"));
    }

    #[test]
    fn collector_merges_spans_across_threads() {
        let c = Arc::new(Collector::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c2 = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                with_collector(&c2, || {
                    let _s = span("work");
                })
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let spans = c.spans();
        assert_eq!(spans.len(), 4);
        let mut tids: Vec<_> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }
}
