//! Converting an activity trace into measured energy.
//!
//! [`measure`] prices every counted event with the *same* technology
//! constants the analytic model uses (`imagen_mem::tech`): SRAM reads
//! and writes at the per-access energies of the macro actually holding
//! the data, register activity at the DFF shift energy, kernel
//! activations at the PE energy of the stage's operator census, and
//! leakage per instantiated macro. The difference from
//! `Design::total_power_mw` is therefore purely the *activity basis*:
//! scheduled rates there, interpreted events here — which is exactly
//! what makes the cross-check meaningful.
//!
//! Power normalization: energies are integrated over one interpreted
//! frame and converted to mW using the steady-state streaming period
//! (`frame` pixels = `frame` cycles at one pixel per cycle), matching
//! the analytic model's per-cycle-rate convention.

use imagen_mem::{BramModel, Design, DffModel, MemBackend, PeModel, SramConfig, SramModel};
use imagen_rtl::{ActivityTrace, ModuleKind, Netlist};

/// Measured energy of one line buffer (banks + FIFO head DFFs).
#[derive(Clone, Debug)]
pub struct BufferEnergy {
    /// Producer stage index owning the buffer.
    pub stage: usize,
    /// SRAM read accesses over the frame (same-address merged).
    pub reads: u64,
    /// SRAM write accesses over the frame.
    pub writes: u64,
    /// Enabled-but-unconsumed read-port cycles (each costs one read in
    /// the macro).
    pub idle_reads: u64,
    /// Dynamic energy of the buffer over the frame, pJ.
    pub dynamic_pj: f64,
    /// Leakage (ASIC) or BRAM static power (FPGA) of the buffer's
    /// macros, mW.
    pub static_mw: f64,
}

/// Measured energy/power of one interpreted frame.
#[derive(Clone, Debug)]
pub struct EnergyReport {
    /// Clock the mW figures are quoted at, MHz.
    pub clock_mhz: f64,
    /// Steady-state streaming period, cycles (= pixels per frame).
    pub frame_cycles: u64,
    /// Clock edges of the interpreted run (frame + schedule skew).
    pub run_cycles: u64,
    /// SRAM read energy, pJ per frame (consumed reads).
    pub sram_read_pj: f64,
    /// SRAM write energy, pJ per frame.
    pub sram_write_pj: f64,
    /// SRAM energy of enabled-but-unconsumed read-port cycles, pJ per
    /// frame — the component clock gating removes.
    pub sram_idle_pj: f64,
    /// FIFO-head DFF shift energy, pJ per frame (SODA designs).
    pub buffer_dff_pj: f64,
    /// Window shift-register-array energy, pJ per frame.
    pub sra_dff_pj: f64,
    /// Stage output-register energy, pJ per frame.
    pub outreg_dff_pj: f64,
    /// PE (kernel datapath) energy, pJ per frame.
    pub pe_pj: f64,
    /// Leakage / static power of all memory macros, mW.
    pub static_mw: f64,
    /// Read-port cycles the gating plan suppressed (0 when ungated).
    pub gated_off_cycles: u64,
    /// Per-buffer breakdown, in design buffer order.
    pub buffers: Vec<BufferEnergy>,
}

impl EnergyReport {
    /// Dynamic memory energy (banks + idle reads + FIFO head DFFs), pJ
    /// per frame.
    pub fn memory_dynamic_pj(&self) -> f64 {
        self.sram_read_pj + self.sram_write_pj + self.sram_idle_pj + self.buffer_dff_pj
    }

    /// Total dynamic energy, pJ per frame.
    pub fn dynamic_pj_per_frame(&self) -> f64 {
        self.memory_dynamic_pj() + self.sra_dff_pj + self.outreg_dff_pj + self.pe_pj
    }

    /// Static energy over one frame period, pJ.
    pub fn static_pj_per_frame(&self) -> f64 {
        // mW → pJ/cycle at the quoted clock, × cycles per frame.
        self.static_mw / (self.clock_mhz * 1.0e-3) * self.frame_cycles as f64
    }

    /// Total (dynamic + static) energy per frame, pJ.
    pub fn energy_pj_per_frame(&self) -> f64 {
        self.dynamic_pj_per_frame() + self.static_pj_per_frame()
    }

    fn to_mw(&self, pj_per_frame: f64) -> f64 {
        pj_per_frame / self.frame_cycles as f64 * self.clock_mhz * 1.0e-3
    }

    /// Dynamic power at the quoted clock, mW.
    pub fn dynamic_mw(&self) -> f64 {
        self.to_mw(self.dynamic_pj_per_frame())
    }

    /// Memory power (the analytic `Design::memory_power_mw` analogue):
    /// bank dynamic + FIFO DFFs + static, mW.
    pub fn memory_mw(&self) -> f64 {
        self.to_mw(self.memory_dynamic_pj()) + self.static_mw
    }

    /// Total accelerator power (the analytic `Design::total_power_mw`
    /// analogue), mW.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw() + self.static_mw
    }
}

/// Prices `trace` at the evaluation clock
/// ([`imagen_mem::CLOCK_MHZ`]) — see [`measure_at`].
pub fn measure(net: &Netlist, design: &Design, trace: &ActivityTrace) -> EnergyReport {
    measure_at(net, design, trace, imagen_mem::CLOCK_MHZ)
}

/// Prices an [`ActivityTrace`] into an [`EnergyReport`] at `clock_mhz`.
///
/// `design` supplies the physical block inventory (allocated macro
/// sizes, port counts — the same configurations the analytic model
/// prices); `net` supplies the datapath widths and stage kernels;
/// `trace` supplies the measured event counts.
pub fn measure_at(
    net: &Netlist,
    design: &Design,
    trace: &ActivityTrace,
    clock_mhz: f64,
) -> EnergyReport {
    let pixel = net.widths.pixel_bits as u64;
    let word_bits = design.geometry.pixel_bits;

    let mut sram_read_pj = 0.0;
    let mut sram_write_pj = 0.0;
    let mut sram_idle_pj = 0.0;
    let mut buffer_dff_pj = 0.0;
    let mut static_mw = 0.0;
    let mut buffers = Vec::with_capacity(design.buffers.len());

    for (bp, ba) in design.buffers.iter().zip(&trace.buffers) {
        debug_assert_eq!(bp.stage, ba.stage, "trace parallels the design");
        let mut dyn_pj = 0.0;
        let mut stat_mw = 0.0;
        for (blk, (reads, writes)) in bp
            .blocks
            .iter()
            .zip(ba.block_reads.iter().zip(&ba.block_writes))
        {
            match design.backend {
                MemBackend::Asic { .. } => {
                    let cfg = SramConfig {
                        bits: blk.used_bits.max(1),
                        ports: blk.ports,
                        word_bits,
                    };
                    dyn_pj += SramModel::read_energy_pj(cfg) * *reads as f64
                        + SramModel::write_energy_pj(cfg) * *writes as f64;
                    sram_read_pj += SramModel::read_energy_pj(cfg) * *reads as f64;
                    sram_write_pj += SramModel::write_energy_pj(cfg) * *writes as f64;
                    stat_mw += SramModel::leakage_mw(cfg);
                }
                MemBackend::Fpga => {
                    let e = BramModel::access_energy_pj();
                    dyn_pj += e * (*reads + *writes) as f64;
                    sram_read_pj += e * *reads as f64;
                    sram_write_pj += e * *writes as f64;
                    stat_mw += BramModel::static_mw();
                }
            }
        }
        // Enabled-but-unconsumed read cycles: the selected bank performs
        // a real read whose data is discarded. Priced at the buffer's
        // representative macro.
        if let Some(blk) = bp.blocks.first() {
            let idle = ba.idle_read_cycles as f64;
            let e = match design.backend {
                MemBackend::Asic { .. } => SramModel::read_energy_pj(SramConfig {
                    bits: blk.used_bits.max(1),
                    ports: blk.ports,
                    word_bits,
                }),
                MemBackend::Fpga => BramModel::access_energy_pj(),
            };
            dyn_pj += e * idle;
            sram_idle_pj += e * idle;
        }
        // FIFO head segments shift their DFF bits every live cycle.
        if bp.dff_bits > 0 {
            let pj = DffModel::shift_energy_pj(bp.dff_bits) * trace.frame as f64;
            dyn_pj += pj;
            buffer_dff_pj += pj;
        }
        static_mw += stat_mw;
        buffers.push(BufferEnergy {
            stage: bp.stage,
            reads: ba.reads(),
            writes: ba.writes(),
            idle_reads: ba.idle_read_cycles,
            dynamic_pj: dyn_pj,
            static_mw: stat_mw,
        });
    }

    // Window shift-register arrays: every shifted cell is a clocked
    // pixel-wide DFF load.
    let sra_dff_pj: f64 = trace
        .sras
        .iter()
        .map(|s| DffModel::shift_energy_pj(s.cell_writes * pixel))
        .sum();

    // Stage output registers and PE activations.
    let mut outreg_dff_pj = 0.0;
    let mut pe_pj = 0.0;
    for (stage, sa) in net.stages.iter().zip(&trace.stages) {
        outreg_dff_pj += DffModel::shift_energy_pj(sa.out_reg_writes * pixel);
        if let Some(m) = stage.module {
            if let ModuleKind::Stage(p) = &net.modules[m].kind {
                let c = p.kernel.op_census();
                pe_pj += sa.active_cycles as f64
                    * PeModel::energy_pj(c.adds, c.muls, c.divs, c.cmps, c.muxes);
            }
        }
    }

    EnergyReport {
        clock_mhz,
        frame_cycles: trace.frame,
        run_cycles: trace.run_cycles,
        sram_read_pj,
        sram_write_pj,
        sram_idle_pj,
        buffer_dff_pj,
        sra_dff_pj,
        outreg_dff_pj,
        pe_pj,
        static_mw,
        gated_off_cycles: trace.gated_off_cycles(),
        buffers,
    }
}
