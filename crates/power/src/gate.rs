//! The clock-gating transform: a netlist→netlist pass deriving gating
//! conditions from the ILP-scheduled enables.
//!
//! The ungated emitter holds every line buffer's read enable at `1'b1`,
//! so the bank selected by the rotation decode performs a real SRAM read
//! on *every* cycle of operation — including the schedule skew before
//! the first consumer starts and after the last one finishes, where the
//! data goes nowhere. Those are exactly the intervals the ILP schedule
//! makes static: a buffer's data is only ever loaded while one of its
//! consumers' enable windows `[start, start + frame)` is live.
//!
//! [`gate_clocks`] therefore gates each buffer's read port to the union
//! of its consumers' windows. The other candidate conditions the
//! schedule exposes are already structural or vacuous in this
//! architecture, and the pass documents rather than duplicates them:
//!
//! * **idle banks** — the per-bank enables (`en_b = ren && rblk == b`)
//!   already gate every bank the rotation decode is not pointing at;
//!   the pass narrows `ren` itself, which those decodes AND with;
//! * **stall intervals** — ImaGen schedules are stall-free by
//!   construction (requirements R1–R3), so within a consumer window
//!   there is no cycle to gate; all gateable time lives in the
//!   inter-stage skew the window derivation captures;
//! * **`dx_max < 0` window corners** — the left-edge clamp re-reads the
//!   current column rather than issuing extra reads, so corner cycles
//!   cost no additional bank enables to remove.
//!
//! The pass is semantics-preserving *by checked construction*: the
//! interpreter honors the gate (a gated-off read port supplies no
//! data), so the gated netlist is run through the same bit-exact
//! differential suite as the ungated one, and a wrong window corrupts
//! the output stream instead of silently under-reporting energy.

use imagen_rtl::{BufferGate, Conn, GatingPlan, Item, Net, Netlist};

/// Attaches a clock-gating plan to `net`: every line buffer's read port
/// is gated to the union of its consumers' ILP windows.
///
/// The returned netlist is a full copy with:
///
/// * `gating` set to the derived [`GatingPlan`];
/// * a 1-bit `ren_lb_<stage>` net, driven by a continuous assignment of
///   the window comparators, declared in the top module;
/// * the line-buffer instance's `ren` connection rewritten from the
///   constant `1'b1` to that net,
///
/// so emission, interpretation and structural verification all see the
/// same gated hardware. FIFO buffers (SODA) and pure-DFF buffers are
/// left ungated — their clocking is dataflow-driven, not scheduled.
///
/// Gating an already-gated netlist re-derives the same plan (the pass
/// is idempotent).
pub fn gate_clocks(net: &Netlist) -> Netlist {
    let mut out = net.clone();
    let frame = net.frame;

    let mut gates: Vec<BufferGate> = Vec::new();
    for (bi, buf) in net.buffers.iter().enumerate() {
        if buf.fifo || buf.phys_blocks == 0 {
            continue;
        }
        let windows: Vec<u64> = net
            .edges
            .iter()
            .filter(|e| e.producer == buf.stage)
            .map(|e| net.stages[e.consumer].start_cycle)
            .collect();
        if windows.is_empty() {
            continue;
        }
        gates.push(BufferGate {
            buffer: bi,
            read_start: *windows.iter().min().expect("non-empty"),
            read_end: windows.iter().max().expect("non-empty") + frame,
        });
    }

    let top = out.top;
    let module = &mut out.modules[top];
    for g in &gates {
        let pname = net.stages[net.buffers[g.buffer].stage].sanitized.clone();
        let gate_net = format!("ren_lb_{pname}");
        if module.net(&gate_net).is_none() {
            module.nets.push(Net {
                name: gate_net.clone(),
                width: 1,
                signed: false,
                array: None,
                is_reg: false,
                port: None,
            });
            module.items.push(Item::Assign {
                net: gate_net.clone(),
            });
        }
        for item in module.items.iter_mut() {
            if let Item::Inst(inst) = item {
                if inst.name == format!("u_lb_{pname}") {
                    for (port, conn) in inst.conns.iter_mut() {
                        if port == "ren" {
                            *conn = Conn::Net(gate_net.clone());
                        }
                    }
                }
            }
        }
    }

    out.gating = Some(GatingPlan { gates });
    out
}
