//! # imagen-power
//!
//! Activity-based power/energy measurement and clock gating for ImaGen
//! accelerators — the subsystem that turns the executable-netlist
//! interpreter (`imagen_rtl::interpret_with_trace`) into a power meter.
//!
//! "Power-efficient" is half the source paper's title, yet the analytic
//! model in `imagen_mem` prices every design from *scheduled* access
//! rates times calibrated pJ constants. This crate instead **measures**
//! the generated hardware:
//!
//! ```text
//! Netlist ──interpret_with_trace()──▶ ActivityTrace ──measure()──▶ EnergyReport
//!    │                                                                 ▲
//!    └──gate_clocks()──▶ gated Netlist ──interpret_with_trace()────────┘
//! ```
//!
//! * [`measure`] converts an [`ActivityTrace`](imagen_rtl::ActivityTrace)
//!   (per-bank SRAM reads and
//!   writes, register-array shift activity, enable duty cycles) plus the
//!   technology constants of `imagen_mem::tech` into an [`EnergyReport`]:
//!   pJ per frame, mW at a target clock, static vs dynamic split, and a
//!   per-buffer breakdown — cross-checkable against the analytic
//!   `Design::total_power_mw`;
//! * [`gate_clocks`] is a netlist→netlist pass deriving clock-gating
//!   conditions from the ILP-scheduled enables: each line buffer's read
//!   port, held at `1'b1` by the ungated emitter, is gated to the union
//!   of its consumers' schedule windows. The gated netlist emits real
//!   Verilog (`imagen_rtl::emit_verilog` renders the gate wires) and
//!   runs through the same differential suite as the ungated one — the
//!   interpreter counts the gated-off cycles, so the energy saving is
//!   measured, not asserted;
//! * [`measure_pipeline`] / [`measure_netlist`] run both netlists on one
//!   frame and return the paired reports ([`PowerMeasurement`]).
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod gate;

pub use energy::{measure, measure_at, BufferEnergy, EnergyReport};
pub use gate::gate_clocks;

use imagen_ir::Dag;
use imagen_mem::Design;
use imagen_rtl::{
    build_netlist, interpret_with_trace, BitWidths, InterpError, InterpReport, Netlist,
};
use imagen_sim::Image;

/// Paired ungated/gated measurements of one design on one frame.
#[derive(Clone, Debug)]
pub struct PowerMeasurement {
    /// Energy of the netlist as emitted today (read ports always on).
    pub ungated: EnergyReport,
    /// Energy of the clock-gated netlist ([`gate_clocks`]).
    pub gated: EnergyReport,
    /// Interpreter report of the ungated run.
    pub ungated_report: InterpReport,
    /// Interpreter report of the gated run (carries the measured
    /// gated-off cycle count).
    pub gated_report: InterpReport,
}

impl PowerMeasurement {
    /// Dynamic-energy saving of gating, percent of the ungated dynamic
    /// energy per frame.
    pub fn gating_saving_pct(&self) -> f64 {
        let base = self.ungated.dynamic_pj_per_frame();
        if base <= 0.0 {
            0.0
        } else {
            100.0 * (base - self.gated.dynamic_pj_per_frame()) / base
        }
    }

    /// Read-port cycles the gating pass removed, as measured by the
    /// interpreter on the gated netlist.
    pub fn gated_off_cycles(&self) -> u64 {
        self.gated_report.gated_off_cycles
    }
}

/// Measures `net` (which must be ungated) and its clock-gated variant on
/// `inputs`, panicking if gating changes any output pixel — semantics
/// preservation is enforced at every call site, not only in the
/// differential suite.
///
/// # Errors
///
/// [`InterpError`] for structural interpretation problems.
///
/// # Panics
///
/// If the gated netlist's streamed outputs differ from the ungated
/// netlist's (a gating-pass bug).
pub fn measure_netlist(
    net: &Netlist,
    design: &Design,
    inputs: &[Image],
) -> Result<PowerMeasurement, InterpError> {
    let gated = gate_clocks(net);
    let (ungated_report, ungated_trace) = interpret_with_trace(net, inputs)?;
    let (gated_report, gated_trace) = interpret_with_trace(&gated, inputs)?;
    for ((sa, ia), (sb, ib)) in ungated_report
        .output_images
        .iter()
        .zip(&gated_report.output_images)
    {
        assert_eq!(sa, sb, "gating reordered output streams");
        assert_eq!(ia, ib, "clock gating changed the output of stage {sa}");
    }
    Ok(PowerMeasurement {
        ungated: measure(net, design, &ungated_trace),
        gated: measure(&gated, design, &gated_trace),
        ungated_report,
        gated_report,
    })
}

/// Builds the netlist for `(dag, design)` at `widths` and measures it —
/// the one-call entry used by the experiment binaries.
///
/// # Errors
///
/// See [`measure_netlist`].
pub fn measure_pipeline(
    dag: &Dag,
    design: &Design,
    widths: &BitWidths,
    inputs: &[Image],
) -> Result<PowerMeasurement, InterpError> {
    let net = build_netlist(dag, design, widths);
    measure_netlist(&net, design, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_algos::Algorithm;
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_rtl::{emit_verilog, interpret};
    use imagen_schedule::{plan_design, ScheduleOptions};
    use imagen_sim::simulate_and_annotate;

    fn geom() -> ImageGeometry {
        ImageGeometry {
            width: 36,
            height: 26,
            pixel_bits: 16,
        }
    }

    fn plan_for(alg: Algorithm) -> imagen_schedule::Plan {
        let g = geom();
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * g.row_bits(),
            },
            2,
        );
        plan_design(
            &alg.build(),
            &g,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap()
    }

    fn frame(seed: u64) -> Image {
        let g = geom();
        Image::from_fn(g.width, g.height, |x, y| {
            ((x as u64 * 31 + y as u64 * 17 + seed) % 251) as i64
        })
    }

    #[test]
    fn gated_netlist_verifies_emits_and_preserves_outputs() {
        let p = plan_for(Algorithm::UnsharpM);
        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        let gated = gate_clocks(&net);
        assert!(gated.is_gated());
        let report = imagen_rtl::verify_all(&gated);
        assert!(
            report.is_clean(),
            "gated netlist is structurally sound: {:?}",
            report.errors
        );

        let v = emit_verilog(&gated);
        assert!(v.contains("wire ren_lb_"), "gate wires are emitted");
        assert!(v.contains("Clock gating:"), "header marks the variant");
        assert!(!emit_verilog(&net).contains("ren_lb_"), "ungated unchanged");

        let input = frame(3);
        let a = interpret(&net, std::slice::from_ref(&input)).unwrap();
        let b = interpret(&gated, std::slice::from_ref(&input)).unwrap();
        assert_eq!(a.output_images, b.output_images, "bit-exact under gating");
        assert_eq!(a.gated_off_cycles, 0);
        assert!(
            b.gated_off_cycles > 0,
            "the schedule skew leaves gateable cycles"
        );
    }

    #[test]
    fn gating_windows_cover_exactly_the_consumer_spans() {
        let p = plan_for(Algorithm::CannyM);
        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        let gated = gate_clocks(&net);
        let plan = gated.gating.as_ref().unwrap();
        assert!(!plan.gates.is_empty());
        for g in &plan.gates {
            let stage = gated.buffers[g.buffer].stage;
            let consumers: Vec<_> = gated
                .edges
                .iter()
                .filter(|e| e.producer == stage)
                .map(|e| gated.stages[e.consumer].start_cycle)
                .collect();
            assert!(!consumers.is_empty());
            assert_eq!(g.read_start, *consumers.iter().min().unwrap());
            assert_eq!(
                g.read_end,
                consumers.iter().max().unwrap() + gated.frame,
                "window ends after the last consumer's frame"
            );
        }
    }

    #[test]
    fn wrong_gating_plan_corrupts_outputs() {
        // The interpreter honors gating semantically: a window that cuts
        // into a live consumer must corrupt the stream, which is what
        // makes the differential suite a real proof.
        let p = plan_for(Algorithm::UnsharpM);
        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        let mut gated = gate_clocks(&net);
        let gates = &mut gated.gating.as_mut().unwrap().gates;
        gates[0].read_end = gates[0].read_end.saturating_sub(gated.frame / 2);
        let input = frame(9);
        let a = interpret(&net, std::slice::from_ref(&input)).unwrap();
        let b = interpret(&gated, std::slice::from_ref(&input)).unwrap();
        assert_ne!(
            a.output_images, b.output_images,
            "truncated window must be observable"
        );
    }

    #[test]
    fn measured_power_within_documented_factor_of_analytic() {
        // The analytic model integrates scheduled access rates; the
        // measured report integrates interpreted events through the same
        // pJ constants. They use different activity bases (the analytic
        // model assumes every-cycle DFF shifting and rate-spread
        // accesses), so agreement is bounded, not exact: within 3× both
        // ways, documented in EXPERIMENTS.md.
        for alg in [Algorithm::UnsharpM, Algorithm::DenoiseM] {
            let mut p = plan_for(alg);
            let input = frame(11);
            let sim =
                simulate_and_annotate(&p.dag, &mut p.design, std::slice::from_ref(&input)).unwrap();
            assert!(sim.is_clean());
            let analytic = p.design.total_power_mw();
            let m = measure_pipeline(
                &p.dag,
                &p.design,
                &BitWidths::default(),
                std::slice::from_ref(&input),
            )
            .unwrap();
            let measured = m.ungated.total_mw();
            let ratio = measured / analytic;
            assert!(
                (1.0 / 3.0..=3.0).contains(&ratio),
                "{}: measured {measured:.2} mW vs analytic {analytic:.2} mW (ratio {ratio:.2})",
                alg.name()
            );
        }
    }

    #[test]
    fn gating_reduces_measured_dynamic_energy_on_m_pipelines() {
        for alg in [Algorithm::DenoiseM, Algorithm::CannyM, Algorithm::UnsharpM] {
            let p = plan_for(alg);
            let input = frame(5);
            let m = measure_pipeline(
                &p.dag,
                &p.design,
                &BitWidths::default(),
                std::slice::from_ref(&input),
            )
            .unwrap();
            assert!(
                m.gated.dynamic_pj_per_frame() < m.ungated.dynamic_pj_per_frame(),
                "{}: gating must remove idle read energy",
                alg.name()
            );
            assert!(m.gating_saving_pct() > 0.0);
            assert!(m.gated_off_cycles() > 0);
            // Static power is untouched by gating.
            assert_eq!(m.ungated.static_mw, m.gated.static_mw);
            // The saving is exactly the idle reads that disappeared —
            // measured on both runs, not asserted from the plan.
            assert!(
                m.gated.sram_idle_pj < m.ungated.sram_idle_pj,
                "{}: idle read energy must shrink",
                alg.name()
            );
        }
    }

    #[test]
    fn report_breakdown_is_consistent() {
        let p = plan_for(Algorithm::HarrisS);
        let input = frame(1);
        let m = measure_pipeline(
            &p.dag,
            &p.design,
            &BitWidths::default(),
            std::slice::from_ref(&input),
        )
        .unwrap();
        let r = &m.ungated;
        let sum: f64 = r.buffers.iter().map(|b| b.dynamic_pj).sum();
        assert!(
            (sum - (r.sram_read_pj + r.sram_write_pj + r.sram_idle_pj + r.buffer_dff_pj)).abs()
                < 1e-6,
            "per-buffer breakdown sums to the memory total"
        );
        assert!(r.pe_pj > 0.0 && r.sra_dff_pj > 0.0 && r.outreg_dff_pj > 0.0);
        assert!(r.static_mw > 0.0);
        assert!(r.total_mw() > r.dynamic_mw());
        assert!(r.memory_mw() < r.total_mw());
        assert!(r.energy_pj_per_frame() > r.dynamic_pj_per_frame());
    }

    #[test]
    fn fpga_backend_measures() {
        let g = geom();
        let spec = MemorySpec::new(MemBackend::Fpga, 2);
        let p = plan_design(
            &Algorithm::UnsharpM.build(),
            &g,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let input = frame(2);
        let m = measure_pipeline(
            &p.dag,
            &p.design,
            &BitWidths::default(),
            std::slice::from_ref(&input),
        )
        .unwrap();
        assert!(m.ungated.total_mw() > 0.0);
        assert!(m.gated.dynamic_pj_per_frame() < m.ungated.dynamic_pj_per_frame());
    }
}
