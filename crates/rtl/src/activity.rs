//! Activity collection for the executable-netlist interpreter.
//!
//! [`ActivityTrace`] is an optional sink
//! ([`interpret_with_trace`](crate::interpret_with_trace)) that counts,
//! over one interpreted frame, the events the analytic power model only
//! *assumes*:
//!
//! * per-SRAM-bank read and write accesses, attributed through the same
//!   bank mapping and same-address read merging as the cycle-level
//!   simulator (`imagen_sim::simulate`), so the two independent
//!   access-counting paths can be cross-checked against each other;
//! * per-buffer read-port enable duty: the emitted hardware holds the
//!   line-buffer read enable high on *every* cycle (`.ren(1'b1)`), so
//!   cycles where the enabled port serves no consumer are wasted reads —
//!   the quantity the clock-gating pass (`imagen_power::gate_clocks`)
//!   eliminates, and the interpreter *measures* under both netlists;
//! * per-register-array shift activity (cycles shifted, cell loads, data
//!   bit toggles) and per-stage enable duty and output-register toggles.
//!
//! The trace never changes interpretation results: the interpreter's
//! outputs, latency and legacy access totals are identical with and
//! without a sink (pinned by test and by the `activity_interp` bench).
//!
//! `imagen_power` converts a trace plus the technology constants in
//! `imagen_mem::tech` into an `EnergyReport` — measured pJ/frame and mW
//! instead of the scheduled-rate analytic estimate.

use crate::netlist::Netlist;

/// Per-line-buffer activity over one interpreted frame.
#[derive(Clone, Debug, Default)]
pub struct BufferActivity {
    /// Producer stage index owning the buffer.
    pub stage: usize,
    /// Read accesses per allocated SRAM block, merged on identical
    /// `(block, row, column)` within a cycle — the cycle simulator's
    /// convention, so these totals cross-check against
    /// `simulate_and_annotate`.
    pub block_reads: Vec<u64>,
    /// Write accesses per allocated SRAM block.
    pub block_writes: Vec<u64>,
    /// Peak accesses (reads + writes) of any block in a single cycle.
    pub block_peaks: Vec<u32>,
    /// Cycles the buffer's read port was enabled (ungated: the whole
    /// run; gated: the consumer window).
    pub read_enabled_cycles: u64,
    /// Enabled read-port cycles in which no consumer actually loaded
    /// data — the wasted reads clock gating removes.
    pub idle_read_cycles: u64,
    /// Cycles the read port was gated off (0 for ungated netlists).
    pub gated_off_cycles: u64,
    /// Whether the buffer is a FIFO chain (SODA). FIFO access totals
    /// follow the simulator's convention: one push and one pop per
    /// segment per live cycle.
    pub fifo: bool,
}

impl BufferActivity {
    /// Average accesses (reads + writes) per streaming cycle per block,
    /// the quantity `simulate_and_annotate` writes into
    /// `PhysBlock::avg_accesses_per_cycle`.
    pub fn avg_accesses_per_cycle(&self, block: usize, frame: u64) -> f64 {
        (self.block_reads[block] + self.block_writes[block]) as f64 / frame as f64
    }

    /// Average writes per streaming cycle per block.
    pub fn avg_writes_per_cycle(&self, block: usize, frame: u64) -> f64 {
        self.block_writes[block] as f64 / frame as f64
    }

    /// Total read accesses over all blocks.
    pub fn reads(&self) -> u64 {
        self.block_reads.iter().sum()
    }

    /// Total write accesses over all blocks.
    pub fn writes(&self) -> u64 {
        self.block_writes.iter().sum()
    }
}

/// Per-stage activity over one interpreted frame.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageActivity {
    /// Cycles the stage enable was asserted (= frame pixels for a
    /// stall-free schedule).
    pub active_cycles: u64,
    /// Output-register load events (one per active cycle).
    pub out_reg_writes: u64,
    /// Bits that flipped on the output register across the frame.
    pub out_reg_toggles: u64,
}

impl StageActivity {
    /// Enable duty cycle over the whole run.
    pub fn duty(&self, run_cycles: u64) -> f64 {
        if run_cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / run_cycles as f64
        }
    }
}

/// Per-window-register-array (SRA) activity over one interpreted frame.
#[derive(Clone, Copy, Debug, Default)]
pub struct SraActivity {
    /// Cycles the array shifted (= the consumer's active cycles).
    pub shift_cycles: u64,
    /// Cell load events (`cells × shift_cycles`).
    pub cell_writes: u64,
    /// Bits that flipped across all cells over the frame (data
    /// activity, a subset of the clocked-cell energy).
    pub bit_toggles: u64,
}

/// Activity collected over one interpreted frame, structurally parallel
/// to the interpreted [`Netlist`]: `buffers[i]` ↔ `net.buffers[i]`,
/// `stages[i]` ↔ `net.stages[i]`, `sras[i]` ↔ `net.edges[i]`.
#[derive(Clone, Debug, Default)]
pub struct ActivityTrace {
    /// Clock edges of the run.
    pub run_cycles: u64,
    /// Pixels per frame (the steady-state streaming period).
    pub frame: u64,
    /// Per-buffer activity, in netlist buffer order.
    pub buffers: Vec<BufferActivity>,
    /// Per-stage activity, in stage order.
    pub stages: Vec<StageActivity>,
    /// Per-edge window-register-array activity, in edge order.
    pub sras: Vec<SraActivity>,
}

impl ActivityTrace {
    /// An empty trace shaped for `net`, ready to be filled by
    /// [`interpret_with_trace`](crate::interpret_with_trace).
    pub fn for_netlist(net: &Netlist) -> ActivityTrace {
        ActivityTrace {
            run_cycles: 0,
            frame: net.frame,
            buffers: net
                .buffers
                .iter()
                .map(|b| BufferActivity {
                    stage: b.stage,
                    block_reads: vec![0; b.phys_blocks],
                    block_writes: vec![0; b.phys_blocks],
                    block_peaks: vec![0; b.phys_blocks],
                    fifo: b.fifo,
                    ..BufferActivity::default()
                })
                .collect(),
            stages: vec![StageActivity::default(); net.stages.len()],
            sras: vec![SraActivity::default(); net.edges.len()],
        }
    }

    /// Total gated-off read-port cycles over all buffers.
    pub fn gated_off_cycles(&self) -> u64 {
        self.buffers.iter().map(|b| b.gated_off_cycles).sum()
    }

    /// Total idle (enabled-but-unconsumed) read-port cycles.
    pub fn idle_read_cycles(&self) -> u64 {
        self.buffers.iter().map(|b| b.idle_read_cycles).sum()
    }
}
